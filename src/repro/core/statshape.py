"""A common dict/repr shape for work-accounting dataclasses.

Several subsystems report how much work an operation touched --
:class:`repro.core.incremental.ReplaceStats` counts re-summarised
ancestors, :class:`repro.store.StoreStats` counts cache hits and
rehashed nodes.  Benchmarks and tests want to assert on these uniformly
("how many nodes did this touch?") without knowing which subsystem
produced the numbers, so every such dataclass mixes in
:class:`StatsDictMixin`:

* ``as_dict()`` returns a plain ``{field: number}`` dict covering the
  dataclass fields plus any derived properties the class lists in
  ``_stats_properties`` (by convention this includes ``touched_nodes``);
* ``__repr__`` renders exactly that dict, so two stats objects with the
  same numbers print the same way.
"""

from __future__ import annotations

from dataclasses import fields

__all__ = ["StatsDictMixin"]


class StatsDictMixin:
    """Uniform ``as_dict()`` / ``repr`` for stats dataclasses.

    Subclasses must be dataclasses; derived values exposed as properties
    are included by naming them in the class attribute
    ``_stats_properties``.
    """

    _stats_properties: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, float]:
        out: dict[str, float] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        for name in self._stats_properties:
            out[name] = getattr(self, name)
        return out

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"{type(self).__name__}({body})"
