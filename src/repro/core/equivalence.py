"""Finding all alpha-equivalence classes of subexpressions (Section 1, 3).

With an alpha-invariant hash for every node, "the equivalence classes can
be generated in the cost of a single sort" -- here, a single dict
grouping pass.  :func:`equivalence_classes` is the library's main entry
point for CSE-style clients.

Because any hash can collide, the function optionally *verifies* each
candidate class by exact comparison (splitting classes on the canonical
de Bruijn key), so callers that rewrite programs can be sound even with
small hash widths.  With the default 64-bit space, Theorem 6.8 puts the
probability that verification ever fires below ~n^3/2^61 -- negligible --
but it is cheap insurance and makes the tiny-width configurations of
Appendix B safe to play with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.combiners import HashCombiners
from repro.core.hashed import AlphaHashes, alpha_hash_all
from repro.lang.debruijn import canonical_key
from repro.lang.expr import Expr

__all__ = ["EquivalenceClass", "equivalence_classes", "group_by_hash"]


@dataclass
class EquivalenceClass:
    """One class of mutually alpha-equivalent subexpression occurrences.

    ``occurrences`` lists ``(path, node)`` pairs in preorder; the first
    occurrence is the representative.  ``verified`` is True when the
    class was confirmed by exact comparison rather than hash alone.
    """

    hash_value: int
    occurrences: list[tuple[tuple[int, ...], Expr]]
    verified: bool = False

    @property
    def representative(self) -> Expr:
        return self.occurrences[0][1]

    @property
    def count(self) -> int:
        return len(self.occurrences)

    @property
    def node_size(self) -> int:
        return self.representative.size

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"EquivalenceClass(count={self.count}, node_size={self.node_size}, "
            f"hash=0x{self.hash_value:x})"
        )


def group_by_hash(hashes: AlphaHashes) -> dict[int, list[tuple[tuple[int, ...], Expr]]]:
    """Group every subexpression occurrence by its alpha-hash."""
    groups: dict[int, list[tuple[tuple[int, ...], Expr]]] = {}
    for path, node, value in hashes.items():
        groups.setdefault(value, []).append((path, node))
    return groups


def equivalence_classes(
    expr: Expr,
    combiners: Optional[HashCombiners] = None,
    min_count: int = 2,
    min_size: int = 1,
    verify: bool = False,
    hashes: Optional[AlphaHashes] = None,
) -> list[EquivalenceClass]:
    """All alpha-equivalence classes of subexpressions of ``expr``.

    Parameters
    ----------
    min_count:
        Keep only classes with at least this many occurrences (default 2:
        singleton classes are rarely interesting downstream).
    min_size:
        Keep only classes whose members have at least this many AST nodes
        (CSE clients typically skip bare variables, ``min_size >= 2``).
    verify:
        Split any hash-colliding class by exact (canonical de Bruijn)
        comparison; the returned classes are then guaranteed correct.
    hashes:
        Reuse an existing :class:`AlphaHashes` (e.g. from an incremental
        pass) instead of re-hashing.

    Classes are sorted largest-representative-first, then by descending
    occurrence count, then by hash for determinism.
    """
    if hashes is None:
        hashes = alpha_hash_all(expr, combiners)

    classes: list[EquivalenceClass] = []
    for value, occurrences in group_by_hash(hashes).items():
        if len(occurrences) < min_count:
            continue
        if occurrences[0][1].size < min_size:
            continue
        if verify:
            classes.extend(
                _split_by_exact_key(value, occurrences, min_count)
            )
        else:
            classes.append(EquivalenceClass(value, occurrences))

    classes.sort(key=lambda c: (-c.node_size, -c.count, c.hash_value))
    return classes


def _split_by_exact_key(
    hash_value: int,
    occurrences: list[tuple[tuple[int, ...], Expr]],
    min_count: int,
) -> list[EquivalenceClass]:
    """Split a candidate class by the exact alpha-equivalence oracle."""
    by_key: dict[tuple, list[tuple[tuple[int, ...], Expr]]] = {}
    for path, node in occurrences:
        by_key.setdefault(canonical_key(node), []).append((path, node))
    return [
        EquivalenceClass(hash_value, group, verified=True)
        for group in by_key.values()
        if len(group) >= min_count
    ]
