"""Free-variable maps (Section 4.4), in both flavours.

* :class:`VarMapTree` -- the Step-1 reference flavour: a plain mapping
  from free-variable name to a materialised
  :class:`~repro.core.position_tree.PosTree`.  Operations copy, so every
  node of an expression can keep its own summary alive (the quadratic
  reference algorithm and ``rebuild`` need that).

* :class:`HashedVarMap` -- the Step-2 flavour (Section 5.2): maps names to
  position-tree *hash codes* and maintains the map hash incrementally as
  the **XOR of its entry hashes**, where an entry hash is
  ``hash(name, pos)``.  Because XOR is commutative, associative and
  self-inverse, insertion, removal and alteration each update the map
  hash in O(1) -- this is the paper's key trick, and Lemma 6.5/Theorem
  6.7 prove it costs nothing in collision strength.

The fast summariser merges the smaller map into the bigger one
*destructively* (each map is consumed exactly once on the way up the
tree), which is what makes the amortised Lemma 6.1 bound real.  The
incremental hasher (Section 6.3) instead uses ``snapshot()`` copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.core.combiners import HashCombiners
from repro.core.position_tree import PosTree, pt_join_hash

__all__ = [
    "VarMapTree",
    "HashedVarMap",
    "MapOpStats",
    "entry_hash",
    "merge_tagged",
]


# ---------------------------------------------------------------------------
# Step 1: materialised variable maps
# ---------------------------------------------------------------------------


class VarMapTree:
    """Reference variable map: free name -> position tree.

    Thin wrapper over a dict; mutating ops return *new* maps so that
    summaries of different nodes never alias.  This is deliberately the
    simple-but-quadratic flavour; see :class:`HashedVarMap` for the fast
    one.
    """

    __slots__ = ("entries",)

    def __init__(self, entries: Optional[dict[str, PosTree]] = None):
        self.entries = entries if entries is not None else {}

    # -- constructors -------------------------------------------------------

    @staticmethod
    def empty() -> "VarMapTree":
        return VarMapTree()

    @staticmethod
    def singleton(name: str, pos: PosTree) -> "VarMapTree":
        return VarMapTree({name: pos})

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def get(self, name: str) -> Optional[PosTree]:
        return self.entries.get(name)

    def to_list(self) -> list[tuple[str, PosTree]]:
        """``toListVM``: the entries as (name, postree) pairs."""
        return list(self.entries.items())

    def find_singleton(self) -> str:
        """``findSingletonVM``: the unique key of a one-entry map."""
        if len(self.entries) != 1:
            raise ValueError(
                f"expected a singleton variable map, got {len(self.entries)} entries"
            )
        return next(iter(self.entries))

    # -- functional updates --------------------------------------------------

    def removed(self, name: str) -> tuple["VarMapTree", Optional[PosTree]]:
        """``removeFromVM``: drop ``name``, returning its position tree."""
        if name not in self.entries:
            return self, None
        entries = dict(self.entries)
        pos = entries.pop(name)
        return VarMapTree(entries), pos

    def extended(self, name: str, pos: PosTree) -> "VarMapTree":
        """``extendVM``: add/overwrite one entry."""
        entries = dict(self.entries)
        entries[name] = pos
        return VarMapTree(entries)

    def altered(
        self, name: str, update: Callable[[Optional[PosTree]], PosTree]
    ) -> "VarMapTree":
        """``alterVM``: replace the entry at ``name`` via ``update``, which
        receives the old position tree or ``None``."""
        entries = dict(self.entries)
        entries[name] = update(entries.get(name))
        return VarMapTree(entries)

    def map_maybe(
        self, update: Callable[[PosTree], Optional[PosTree]]
    ) -> "VarMapTree":
        """``mapMaybeVM``: apply ``update`` everywhere, dropping Nones."""
        entries: dict[str, PosTree] = {}
        for name, pos in self.entries.items():
            new_pos = update(pos)
            if new_pos is not None:
                entries[name] = new_pos
        return VarMapTree(entries)

    @staticmethod
    def merged(
        left: "VarMapTree",
        right: "VarMapTree",
        left_only: Callable[[PosTree], PosTree],
        right_only: Callable[[PosTree], PosTree],
        both: Callable[[PosTree, PosTree], PosTree],
    ) -> "VarMapTree":
        """``mergeVM``: the naive two-sided merge of Section 4.6.

        Touches every entry of both maps, which is what makes the
        reference algorithm quadratic.
        """
        entries: dict[str, PosTree] = {}
        for name, pos in left.entries.items():
            other = right.entries.get(name)
            if other is None:
                entries[name] = left_only(pos)
            else:
                entries[name] = both(pos, other)
        for name, pos in right.entries.items():
            if name not in left.entries:
                entries[name] = right_only(pos)
        return VarMapTree(entries)

    def __repr__(self) -> str:  # pragma: no cover
        return f"VarMapTree({sorted(self.entries)})"


# ---------------------------------------------------------------------------
# Step 2: hashed variable maps with XOR-maintained hash
# ---------------------------------------------------------------------------


def entry_hash(combiners: HashCombiners, name: str, pos_hash: int) -> int:
    """``entryHash``: the strong hash of one (variable, position) entry.

    This is the *strong* combiner applied before the weak XOR aggregation;
    the strength of the pair hash is what Lemma 6.5 relies on.
    """
    return combiners.combine("entry", combiners.hash_name(name), pos_hash)


@dataclass
class MapOpStats:
    """Counters for the map operations bounded by Lemmas 6.1 and 6.2.

    ``merge_entries`` counts the per-entry work at App/Let nodes (the
    quantity Lemma 6.1 bounds by O(n log n)); ``singleton`` and ``remove``
    count the per-Var and per-binder operations of Lemma 6.2.
    """

    singleton: int = 0
    remove: int = 0
    merge_entries: int = 0

    @property
    def total(self) -> int:
        return self.singleton + self.remove + self.merge_entries


class HashedVarMap:
    """Variable map whose hash is the XOR of its entry hashes.

    Invariant: ``self.hash == XOR over entries of
    entry_hash(combiners, name, pos_hash)`` -- checked from scratch by
    :meth:`recomputed_hash` in the test-suite.
    """

    __slots__ = ("entries", "hash")

    def __init__(self, entries: Optional[dict[str, int]] = None, hash_value: int = 0):
        self.entries = entries if entries is not None else {}
        self.hash = hash_value

    # -- constructors -------------------------------------------------------

    @staticmethod
    def empty() -> "HashedVarMap":
        return HashedVarMap()

    @staticmethod
    def singleton(
        combiners: HashCombiners, name: str, pos_hash: int
    ) -> "HashedVarMap":
        return HashedVarMap({name: pos_hash}, entry_hash(combiners, name, pos_hash))

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def get(self, name: str) -> Optional[int]:
        return self.entries.get(name)

    def items(self) -> Iterator[tuple[str, int]]:
        return iter(self.entries.items())

    # -- destructive updates (O(1) hash maintenance) --------------------------

    def remove(self, combiners: HashCombiners, name: str) -> Optional[int]:
        """``removeFromVM``: drop ``name`` in place; return its pos hash.

        The map hash is fixed up by XORing the removed entry's hash back
        out: ``(a XOR b) XOR a == b``.
        """
        pos_hash = self.entries.pop(name, None)
        if pos_hash is not None:
            self.hash ^= entry_hash(combiners, name, pos_hash)
        return pos_hash

    def set(self, combiners: HashCombiners, name: str, pos_hash: int) -> None:
        """``alterVM`` specialised to "store this new position hash":
        XOR out the old entry (if any), XOR in the new one."""
        old = self.entries.get(name)
        if old is not None:
            self.hash ^= entry_hash(combiners, name, old)
        self.entries[name] = pos_hash
        self.hash ^= entry_hash(combiners, name, pos_hash)

    # -- snapshots (for the incremental hasher) -------------------------------

    def snapshot(self) -> "HashedVarMap":
        """An independent copy (O(len)); the batch summariser never needs
        this, the incremental one (Section 6.3) does."""
        return HashedVarMap(dict(self.entries), self.hash)

    # -- validation -----------------------------------------------------------

    def recomputed_hash(self, combiners: HashCombiners) -> int:
        """Recompute the XOR aggregate from scratch (test oracle)."""
        acc = 0
        for name, pos_hash in self.entries.items():
            acc ^= entry_hash(combiners, name, pos_hash)
        return acc

    def __repr__(self) -> str:  # pragma: no cover
        return f"HashedVarMap(n={len(self.entries)}, hash=0x{self.hash:x})"


def merge_tagged(
    combiners: HashCombiners, big: HashedVarMap, small: HashedVarMap, tag: int
) -> HashedVarMap:
    """Fold ``small`` into ``big`` destructively with tagged joins.

    The Section 4.8 smaller-subtree merge in hashed form, shared by the
    batch summariser, the incremental hasher and the expression store --
    the bit-for-bit agreement of their hashes depends on there being
    exactly one copy of this recipe.  O(len(small)) map operations, each
    updating ``big``'s XOR hash in O(1); ``small`` is left untouched and
    ``big`` is returned.
    """
    big_entries = big.entries
    big_hash = big.hash
    for name, small_pos in small.entries.items():
        old_pos = big_entries.get(name)
        new_pos = pt_join_hash(combiners, tag, old_pos, small_pos)
        if old_pos is not None:
            big_hash ^= entry_hash(combiners, name, old_pos)
        big_entries[name] = new_pos
        big_hash ^= entry_hash(combiners, name, new_pos)
    big.hash = big_hash
    return big
