"""Expression structures: the shape of an expression, variables anonymised.

Section 4.3 of the paper::

    data Structure = SVar
                   | SLam (Maybe PosTree) Structure
                   | SApp Bool Structure Structure   -- Section 4.8 adds Bool

We extend the datatype to our two extra node kinds, following the paper's
remark that the language "can readily be extended":

* ``SLet (Maybe PosTree) Bool Structure Structure`` -- a let binder, like
  a lambda, stores the positions of its bound variable (in the *body*
  child only); like an application it has two children and therefore
  carries the smaller-subtree merge flag.
* ``SLit value`` -- literal constants are part of the shape.

Each structure carries its node-count ``size``; the **structure tag** of
Section 4.8 is that size, which satisfies the required property ("a
structure must have a different tag to the tag of any of its
sub-structures") because a structure is strictly larger than every proper
substructure.

As with position trees, the hash recipes here are shared between the
Step-1 materialised trees and the Step-2 fast path, so the test-suite can
check bit-identical agreement.
"""

from __future__ import annotations

from typing import Optional

from repro.core.combiners import HashCombiners
from repro.core.position_tree import PosTree, hash_postree, postree_equal

__all__ = [
    "Structure",
    "SVar",
    "SLam",
    "SApp",
    "SLet",
    "SLit",
    "structure_tag",
    "structure_equal",
    "hash_structure",
    "svar_hash",
    "slam_hash",
    "sapp_hash",
    "slet_hash",
    "slit_hash",
    "top_hash",
]


class Structure:
    """Base class of structure nodes.  ``size`` counts structure nodes.

    ``hash_cache`` memoises :func:`hash_structure` results per node as a
    ``((bits, seed), value)`` pair -- structures are immutable, so the
    hash of a subtree under one combiner family never changes.  The key
    is the combiner family's identity ``(bits, seed)`` (two families with
    equal keys compute equal hashes), so re-hashing under a different
    seed never serves a stale value.  The cache is metadata only: it
    participates in neither equality nor hashing.
    """

    __slots__ = ("size", "hash_cache")
    kind: str = "?"

    size: int


class _SVarSingleton(Structure):
    """An anonymous variable occurrence (the identity of the variable
    lives in the e-summary's variable map, or in an enclosing SLam/SLet
    position tree)."""

    __slots__ = ()
    kind = "SVar"

    def __init__(self):
        self.size = 1
        self.hash_cache = None

    def __repr__(self) -> str:
        return "SVar"


SVar = _SVarSingleton()


class SLit(Structure):
    """A literal constant; its value is part of the shape."""

    __slots__ = ("value",)
    kind = "SLit"

    def __init__(self, value):
        self.value = value
        self.size = 1
        self.hash_cache = None


class SLam(Structure):
    """A lambda: no binder name, just the positions where the bound
    variable occurs in the body (``None`` when it does not occur).

    ``name_hint`` optionally records the original binder name (footnote
    1 of Section 4.7): it lets ``rebuild`` recover the *exact* original
    expression.  It is metadata only -- excluded from both structural
    equality and hashing, so alpha-equivalence semantics are unchanged.
    """

    __slots__ = ("pos", "body", "name_hint")
    kind = "SLam"

    def __init__(
        self,
        pos: Optional[PosTree],
        body: Structure,
        name_hint: Optional[str] = None,
    ):
        self.pos = pos
        self.body = body
        self.name_hint = name_hint
        self.size = 1 + body.size
        self.hash_cache = None


class SApp(Structure):
    """An application.  ``left_bigger`` records which child had the larger
    free-variable map (Section 4.8) so that rebuild can undo the
    one-sided merge."""

    __slots__ = ("left_bigger", "fn", "arg")
    kind = "SApp"

    def __init__(self, left_bigger: bool, fn: Structure, arg: Structure):
        self.left_bigger = left_bigger
        self.fn = fn
        self.arg = arg
        self.size = 1 + fn.size + arg.size
        self.hash_cache = None


class SLet(Structure):
    """A let binding: bound-variable positions (within the body child)
    plus the merge flag and the two children.  ``name_hint`` is the
    optional recorded binder name (see :class:`SLam`)."""

    __slots__ = ("pos", "left_bigger", "bound", "body", "name_hint")
    kind = "SLet"

    def __init__(
        self,
        pos: Optional[PosTree],
        left_bigger: bool,
        bound: Structure,
        body: Structure,
        name_hint: Optional[str] = None,
    ):
        self.pos = pos
        self.left_bigger = left_bigger
        self.bound = bound
        self.body = body
        self.name_hint = name_hint
        self.size = 1 + bound.size + body.size
        self.hash_cache = None


def structure_tag(size: int) -> int:
    """The StructureTag for a structure of ``size`` nodes.

    The paper abstracts the implementation and suggests depth; we use the
    node count, which is equally O(1) to maintain and satisfies the same
    "differs from every substructure's tag" property (sizes strictly
    decrease into substructures).
    """
    return size


def structure_equal(a: Structure, b: Structure) -> bool:
    """Structural equality of structures (iterative)."""
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x is y:
            continue
        if x.kind != y.kind or x.size != y.size:
            return False
        if isinstance(x, SLit):
            yv = y.value  # type: ignore[union-attr]
            if x.value != yv or type(x.value) is not type(yv):
                return False
        elif isinstance(x, SLam):
            assert isinstance(y, SLam)
            if not postree_equal(x.pos, y.pos):
                return False
            stack.append((x.body, y.body))
        elif isinstance(x, SApp):
            assert isinstance(y, SApp)
            if x.left_bigger != y.left_bigger:
                return False
            stack.append((x.fn, y.fn))
            stack.append((x.arg, y.arg))
        elif isinstance(x, SLet):
            assert isinstance(y, SLet)
            if x.left_bigger != y.left_bigger or not postree_equal(x.pos, y.pos):
                return False
            stack.append((x.bound, y.bound))
            stack.append((x.body, y.body))
        # SVar: nothing further.
    return True


# ---------------------------------------------------------------------------
# Hash recipes (shared by Step 1 tree hashing and the Step 2 fast path).
# Every recipe is salted with the constructor and the structure size,
# mirroring the Lemma 6.6 construction.
# ---------------------------------------------------------------------------


def svar_hash(combiners: HashCombiners) -> int:
    """Hash of SVar (size is always 1, folded into the salt stream)."""
    return combiners.combine("svar", 1)


def slit_hash(combiners: HashCombiners, value) -> int:
    """Hash of ``SLit value``."""
    return combiners.combine("slit", 1, combiners.hash_lit(value))


def slam_hash(
    combiners: HashCombiners, size: int, pos_hash: Optional[int], body_hash: int
) -> int:
    """Hash of ``SLam pos body`` for a structure of ``size`` nodes."""
    return combiners.combine("slam", size, combiners.maybe(pos_hash), body_hash)


def sapp_hash(
    combiners: HashCombiners,
    size: int,
    left_bigger: bool,
    fn_hash: int,
    arg_hash: int,
) -> int:
    """Hash of ``SApp left_bigger fn arg``."""
    return combiners.combine(
        "sapp", size, combiners.flag(left_bigger), fn_hash, arg_hash
    )


def slet_hash(
    combiners: HashCombiners,
    size: int,
    pos_hash: Optional[int],
    left_bigger: bool,
    bound_hash: int,
    body_hash: int,
) -> int:
    """Hash of ``SLet pos left_bigger bound body``."""
    return combiners.combine(
        "slet",
        size,
        combiners.maybe(pos_hash),
        combiners.flag(left_bigger),
        bound_hash,
        body_hash,
    )


def top_hash(combiners: HashCombiners, structure_hash: int, varmap_hash: int) -> int:
    """The final e-summary hash: ``hash (hashStructure s, hashVM m)``."""
    return combiners.combine("top", structure_hash, varmap_hash)


def hash_structure(combiners: HashCombiners, structure: Structure) -> int:
    """Hash a materialised structure tree (iterative postorder fold).

    Position trees hanging off SLam/SLet nodes are hashed with
    :func:`repro.core.position_tree.hash_postree`.  Produces exactly the
    hash the fast Step-2 algorithm maintains incrementally.

    Per-node results are memoised in ``Structure.hash_cache`` (keyed by
    the combiner family's ``(bits, seed)``), so re-hashing a structure --
    or a larger structure sharing subtrees with one hashed before --
    skips every previously-hashed subtree.
    """
    key = (combiners.bits, combiners.seed)
    cached = structure.hash_cache
    if cached is not None and cached[0] == key:
        return cached[1]
    results: list[int] = []
    stack: list[tuple[Structure, bool]] = [(structure, False)]
    while stack:
        node, visited = stack.pop()
        if not visited:
            cached = node.hash_cache
            if cached is not None and cached[0] == key:
                results.append(cached[1])
                continue
            stack.append((node, True))
            if isinstance(node, SLam):
                stack.append((node.body, False))
            elif isinstance(node, SApp):
                stack.append((node.arg, False))
                stack.append((node.fn, False))
            elif isinstance(node, SLet):
                stack.append((node.body, False))
                stack.append((node.bound, False))
        else:
            if node.kind == "SVar":
                value = svar_hash(combiners)
            elif isinstance(node, SLit):
                value = slit_hash(combiners, node.value)
            elif isinstance(node, SLam):
                body_hash = results.pop()
                pos_hash = hash_postree(combiners, node.pos)
                value = slam_hash(combiners, node.size, pos_hash, body_hash)
            elif isinstance(node, SApp):
                arg_hash = results.pop()
                fn_hash = results.pop()
                value = sapp_hash(
                    combiners, node.size, node.left_bigger, fn_hash, arg_hash
                )
            elif isinstance(node, SLet):
                body_hash = results.pop()
                bound_hash = results.pop()
                pos_hash = hash_postree(combiners, node.pos)
                value = slet_hash(
                    combiners,
                    node.size,
                    pos_hash,
                    node.left_bigger,
                    bound_hash,
                    body_hash,
                )
            else:  # pragma: no cover
                raise TypeError(f"unknown structure kind {node.kind}")
            node.hash_cache = (key, value)
            results.append(value)
    assert len(results) == 1
    return results[0]
