"""Step 1: compositional, invertible e-summaries (Section 4).

An e-summary is a pair of a :class:`~repro.core.structure.Structure` and
a :class:`~repro.core.varmap.VarMapTree`::

    data ESummary = ESummary Structure VarMap

Two subexpressions are alpha-equivalent **iff** their e-summaries are
equal, and :func:`rebuild` reconstructs an expression alpha-equivalent to
the original from its summary -- the existence of ``rebuild`` is the
paper's correctness argument (Section 4.7: the e-summary "loses no
information", so hashing it is as collision-resistant as the hash
combiners themselves).

Two summarisers are provided:

* :func:`summarise_naive` -- Section 4.6: the two-sided ``mergeVM`` that
  touches every entry of both maps at each App/Let node.  Quadratic, but
  transparently correct.
* :func:`summarise_tagged` -- Section 4.8: only the *smaller* child map
  is transformed, each moved entry being wrapped in a ``PTJoin`` carrying
  the parent's structure tag so the merge stays invertible.  Map
  operations drop to O(n log n).

Each has a matching ``rebuild`` inverse.  Everything is iterative:
summarising, rebuilding and hashing all drive explicit work stacks, so
expression depth is bounded by the heap, never by CPython's recursion
limit -- ``tests/test_degenerate.py`` pins this at depth 5000 (~5x the
default limit) as a regression wall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.combiners import HashCombiners
from repro.core.position_tree import (
    PosTree,
    PTBoth,
    PTHere,
    PTJoin,
    PTLeftOnly,
    PTRightOnly,
    hash_postree,
    postree_equal,
)
from repro.core.structure import (
    SApp,
    SLam,
    SLet,
    SLit,
    Structure,
    SVar,
    hash_structure,
    structure_equal,
    structure_tag,
    top_hash,
)
from repro.core.varmap import VarMapTree, entry_hash
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var
from repro.lang.names import NameSupply

__all__ = [
    "ESummary",
    "summarise_naive",
    "summarise_tagged",
    "summarise_all_naive",
    "summarise_all_tagged",
    "esummary_equal",
    "rebuild_naive",
    "rebuild_tagged",
    "hash_esummary_tree",
]


@dataclass(frozen=True)
class ESummary:
    """A Structure plus a free-variable map: the complete, invertible
    description of an expression modulo alpha-equivalence."""

    structure: Structure
    varmap: VarMapTree


def esummary_equal(a: ESummary, b: ESummary) -> bool:
    """Equality of e-summaries (== alpha-equivalence of the originals)."""
    if not structure_equal(a.structure, b.structure):
        return False
    if len(a.varmap) != len(b.varmap):
        return False
    for name, pos in a.varmap.entries.items():
        other = b.varmap.get(name)
        if other is None or not postree_equal(pos, other):
            return False
    return True


# ---------------------------------------------------------------------------
# Summarising: shared postorder driver
# ---------------------------------------------------------------------------


def _summarise(
    expr: Expr, combine_app, combine_let, record=None, keep_names: bool = False
) -> ESummary:
    """Postorder fold computing e-summaries.

    ``combine_app(node, s1, s2, keep_names)`` and ``combine_let(...)``
    build the parent summary from child summaries; the Var/Lit/Lam cases
    are common to both variants.  ``record(node, summary)`` is called for
    every node when supplied.  ``keep_names=True`` records original
    binder names as hash-neutral hints (footnote 1, Section 4.7), letting
    rebuild recover the exact original expression.
    """
    results: list[ESummary] = []
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, visited = stack.pop()
        if not visited:
            stack.append((node, True))
            for child in reversed(node.children()):
                stack.append((child, False))
            continue
        if isinstance(node, Var):
            summary = ESummary(SVar, VarMapTree.singleton(node.name, PTHere))
        elif isinstance(node, Lit):
            summary = ESummary(SLit(node.value), VarMapTree.empty())
        elif isinstance(node, Lam):
            body = results.pop()
            varmap, pos = body.varmap.removed(node.binder)
            hint = node.binder if keep_names else None
            summary = ESummary(SLam(pos, body.structure, hint), varmap)
        elif isinstance(node, App):
            arg = results.pop()
            fn = results.pop()
            summary = combine_app(node, fn, arg)
        elif isinstance(node, Let):
            body = results.pop()
            bound = results.pop()
            summary = combine_let(node, bound, body, keep_names)
        else:  # pragma: no cover
            raise TypeError(f"unknown node kind {node.kind}")
        results.append(summary)
        if record is not None:
            record(node, summary)
    assert len(results) == 1
    return results[0]


# -- naive variant (Section 4.6) --------------------------------------------


def _naive_app(node: App, fn: ESummary, arg: ESummary) -> ESummary:
    varmap = VarMapTree.merged(
        fn.varmap,
        arg.varmap,
        left_only=PTLeftOnly,
        right_only=PTRightOnly,
        both=PTBoth,
    )
    return ESummary(SApp(False, fn.structure, arg.structure), varmap)


def _naive_let(
    node: Let, bound: ESummary, body: ESummary, keep_names: bool = False
) -> ESummary:
    body_vm, pos_x = body.varmap.removed(node.binder)
    varmap = VarMapTree.merged(
        bound.varmap,
        body_vm,
        left_only=PTLeftOnly,
        right_only=PTRightOnly,
        both=PTBoth,
    )
    hint = node.binder if keep_names else None
    return ESummary(
        SLet(pos_x, False, bound.structure, body.structure, hint), varmap
    )


def summarise_naive(expr: Expr, keep_names: bool = False) -> ESummary:
    """The quadratic reference summariser of Section 4.6 (root summary).

    ``keep_names=True`` records binder names as hash-neutral hints so
    :func:`rebuild_naive` reproduces the original expression exactly.
    """
    return _summarise(expr, _naive_app, _naive_let, keep_names=keep_names)


def summarise_all_naive(expr: Expr) -> dict[int, ESummary]:
    """Naive summaries for *every* node, keyed by ``id(node)``."""
    out: dict[int, ESummary] = {}
    _summarise(expr, _naive_app, _naive_let, record=lambda n, s: out.__setitem__(id(n), s))
    return out


# -- tagged smaller-subtree variant (Section 4.8) ----------------------------


def _merge_smaller_tree(
    big: VarMapTree, small: VarMapTree, tag: int
) -> VarMapTree:
    """Fold the smaller map into (a copy of) the bigger one, wrapping each
    moved entry in a tagged PTJoin.  Entries only in the bigger map stay
    untouched -- that asymmetry is what the tag lets ``rebuild`` undo."""
    entries = dict(big.entries)
    for name, pos in small.entries.items():
        entries[name] = PTJoin(tag, entries.get(name), pos)
    return VarMapTree(entries)


def _tagged_app(node: App, fn: ESummary, arg: ESummary) -> ESummary:
    left_bigger = len(fn.varmap) >= len(arg.varmap)
    structure = SApp(left_bigger, fn.structure, arg.structure)
    tag = structure_tag(structure.size)
    if left_bigger:
        varmap = _merge_smaller_tree(fn.varmap, arg.varmap, tag)
    else:
        varmap = _merge_smaller_tree(arg.varmap, fn.varmap, tag)
    return ESummary(structure, varmap)


def _tagged_let(
    node: Let, bound: ESummary, body: ESummary, keep_names: bool = False
) -> ESummary:
    body_vm, pos_x = body.varmap.removed(node.binder)
    left_bigger = len(bound.varmap) >= len(body_vm)
    hint = node.binder if keep_names else None
    structure = SLet(pos_x, left_bigger, bound.structure, body.structure, hint)
    tag = structure_tag(structure.size)
    if left_bigger:
        varmap = _merge_smaller_tree(bound.varmap, body_vm, tag)
    else:
        varmap = _merge_smaller_tree(body_vm, bound.varmap, tag)
    return ESummary(structure, varmap)


def summarise_tagged(expr: Expr, keep_names: bool = False) -> ESummary:
    """The smaller-subtree summariser of Section 4.8 (root summary).

    This materialised version exists to (a) prove invertibility via
    :func:`rebuild_tagged` and (b) cross-check the fast hashed algorithm:
    hashing its output with :func:`hash_esummary_tree` must agree
    bit-for-bit with :func:`repro.core.hashed.alpha_hash_root`
    (``name_hint`` metadata never participates in hashing).
    """
    return _summarise(expr, _tagged_app, _tagged_let, keep_names=keep_names)


def summarise_all_tagged(expr: Expr) -> dict[int, ESummary]:
    """Tagged summaries for every node, keyed by ``id(node)``."""
    out: dict[int, ESummary] = {}
    _summarise(
        expr, _tagged_app, _tagged_let, record=lambda n, s: out.__setitem__(id(n), s)
    )
    return out


# ---------------------------------------------------------------------------
# Rebuilding (Section 4.7): ESummary -> Expression, up to alpha
# ---------------------------------------------------------------------------


def _fresh_supply(summary: ESummary, supply: Optional[NameSupply]) -> NameSupply:
    if supply is not None:
        return supply
    # Invented binder names must not capture the summary's free variables.
    return NameSupply(reserved=summary.varmap.entries.keys())


def _pick_left(pos: PosTree) -> Optional[PosTree]:
    if isinstance(pos, PTLeftOnly):
        return pos.child
    if isinstance(pos, PTBoth):
        return pos.left
    return None


def _pick_right(pos: PosTree) -> Optional[PosTree]:
    if isinstance(pos, PTRightOnly):
        return pos.child
    if isinstance(pos, PTBoth):
        return pos.right
    return None


def rebuild_naive(summary: ESummary, supply: Optional[NameSupply] = None) -> Expr:
    """Invert :func:`summarise_naive`: produce an expression whose
    summary equals ``summary`` (alpha-equivalent to the original).

    Explicit-stack: safe far past the recursion limit (depth-5000
    regression in ``tests/test_degenerate.py``)."""
    supply = _fresh_supply(summary, supply)
    results: list[Expr] = []
    # ops: ("visit", (structure, varmap)) | ("build", (kind, binder))
    stack: list[tuple[str, object]] = [("visit", (summary.structure, summary.varmap))]
    while stack:
        op, payload = stack.pop()
        if op == "build":
            kind, binder = payload  # type: ignore[misc]
            if kind == "Lam":
                results.append(Lam(binder, results.pop()))
            elif kind == "App":
                arg = results.pop()
                fn = results.pop()
                results.append(App(fn, arg))
            else:
                body = results.pop()
                bound = results.pop()
                results.append(Let(binder, bound, body))
            continue
        structure, varmap = payload  # type: ignore[misc]
        if structure.kind == "SVar":
            results.append(Var(varmap.find_singleton()))
        elif isinstance(structure, SLit):
            results.append(Lit(structure.value))
        elif isinstance(structure, SLam):
            binder = structure.name_hint or supply.fresh()
            if structure.pos is not None:
                varmap = varmap.extended(binder, structure.pos)
            stack.append(("build", ("Lam", binder)))
            stack.append(("visit", (structure.body, varmap)))
        elif isinstance(structure, SApp):
            vm_fn = varmap.map_maybe(_pick_left)
            vm_arg = varmap.map_maybe(_pick_right)
            stack.append(("build", ("App", None)))
            stack.append(("visit", (structure.arg, vm_arg)))
            stack.append(("visit", (structure.fn, vm_fn)))
        elif isinstance(structure, SLet):
            binder = structure.name_hint or supply.fresh()
            vm_bound = varmap.map_maybe(_pick_left)
            vm_body = varmap.map_maybe(_pick_right)
            if structure.pos is not None:
                vm_body = vm_body.extended(binder, structure.pos)
            stack.append(("build", ("Let", binder)))
            stack.append(("visit", (structure.body, vm_body)))
            stack.append(("visit", (structure.bound, vm_bound)))
        else:  # pragma: no cover
            raise TypeError(f"unknown structure kind {structure.kind}")
    assert len(results) == 1
    return results[0]


def rebuild_tagged(summary: ESummary, supply: Optional[NameSupply] = None) -> Expr:
    """Invert :func:`summarise_tagged` (the Section 4.8 rebuild).

    The structure tag distinguishes PTJoins made at *this* node from
    PTJoins made deeper inside: matching-tag joins are split between the
    two children; everything else belongs wholly to the bigger child.

    Explicit-stack: safe far past the recursion limit (depth-5000
    regression in ``tests/test_degenerate.py``).
    """
    supply = _fresh_supply(summary, supply)

    def split(varmap: VarMapTree, tag: int) -> tuple[VarMapTree, VarMapTree]:
        def upd_small(pos: PosTree) -> Optional[PosTree]:
            if isinstance(pos, PTJoin) and pos.tag == tag:
                return pos.small
            return None

        def upd_big(pos: PosTree) -> Optional[PosTree]:
            if isinstance(pos, PTJoin) and pos.tag == tag:
                return pos.big
            return pos

        return varmap.map_maybe(upd_big), varmap.map_maybe(upd_small)

    results: list[Expr] = []
    stack: list[tuple[str, object]] = [("visit", (summary.structure, summary.varmap))]
    while stack:
        op, payload = stack.pop()
        if op == "build":
            kind, binder = payload  # type: ignore[misc]
            if kind == "Lam":
                results.append(Lam(binder, results.pop()))
            elif kind == "App":
                arg = results.pop()
                fn = results.pop()
                results.append(App(fn, arg))
            else:
                body = results.pop()
                bound = results.pop()
                results.append(Let(binder, bound, body))
            continue
        structure, varmap = payload  # type: ignore[misc]
        if structure.kind == "SVar":
            results.append(Var(varmap.find_singleton()))
        elif isinstance(structure, SLit):
            results.append(Lit(structure.value))
        elif isinstance(structure, SLam):
            binder = structure.name_hint or supply.fresh()
            if structure.pos is not None:
                varmap = varmap.extended(binder, structure.pos)
            stack.append(("build", ("Lam", binder)))
            stack.append(("visit", (structure.body, varmap)))
        elif isinstance(structure, SApp):
            tag = structure_tag(structure.size)
            big_vm, small_vm = split(varmap, tag)
            if structure.left_bigger:
                vm_fn, vm_arg = big_vm, small_vm
            else:
                vm_fn, vm_arg = small_vm, big_vm
            stack.append(("build", ("App", None)))
            stack.append(("visit", (structure.arg, vm_arg)))
            stack.append(("visit", (structure.fn, vm_fn)))
        elif isinstance(structure, SLet):
            tag = structure_tag(structure.size)
            big_vm, small_vm = split(varmap, tag)
            if structure.left_bigger:
                vm_bound, vm_body = big_vm, small_vm
            else:
                vm_bound, vm_body = small_vm, big_vm
            binder = structure.name_hint or supply.fresh()
            if structure.pos is not None:
                vm_body = vm_body.extended(binder, structure.pos)
            stack.append(("build", ("Let", binder)))
            stack.append(("visit", (structure.body, vm_body)))
            stack.append(("visit", (structure.bound, vm_bound)))
        else:  # pragma: no cover
            raise TypeError(f"unknown structure kind {structure.kind}")
    assert len(results) == 1
    return results[0]


# ---------------------------------------------------------------------------
# Hashing a materialised (tagged-form) e-summary
# ---------------------------------------------------------------------------


def hash_esummary_tree(combiners: HashCombiners, summary: ESummary) -> int:
    """Hash a tagged-form e-summary by folding its trees.

    Definitionally: ``hash (hashStructure s, hashVM m)`` where ``hashVM``
    is the XOR over entries of ``entryHash``.  The fast Step-2 algorithm
    must produce exactly this value while never materialising the trees;
    the test-suite asserts that agreement on every subexpression.
    """
    s_hash = hash_structure(combiners, summary.structure)
    vm_hash = 0
    for name, pos in summary.varmap.entries.items():
        pos_hash = hash_postree(combiners, pos)
        assert pos_hash is not None
        vm_hash ^= entry_hash(combiners, name, pos_hash)
    return top_hash(combiners, s_hash, vm_hash)
