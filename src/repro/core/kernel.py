"""The one tree-summarising kernel behind every alpha-hashing fast path.

PR 3 left two near-identical copies of the hot type-dispatch loop --
:func:`repro.core.hashed.alpha_hash_all` and
``ExprStore._hash_tree`` -- that had to be kept bit-for-bit in sync by
hand.  This module hosts the single shared loop
(:func:`summarise_tree`) plus the pieces the arena kernel
(:mod:`repro.core.arena`) also consumes:

* :class:`MemoRecord` -- the cached hashed e-summary of one subtree
  object (previously private to the store);
* :func:`combine_chain` -- fixed-arity specialisations of
  :meth:`~repro.core.combiners.HashCombiners.combine` with the
  splitmix64 steps inlined, bit-identical to the generic method.

``summarise_tree`` is one loop with optional hooks instead of N copies:
``memo``/``store_stats`` give the store's resume-above-cached-roots
behaviour, ``by_id``/``summaries``/``map_stats`` give the
:class:`~repro.core.hashed.AlphaHashes` outputs.  The per-node cost of
the disabled hooks is a handful of ``is not None`` checks -- cheap next
to the map work -- and in exchange there is exactly one place where the
merge order, the cache discipline and the combiner recipes live.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.combiners import _GOLDEN, _M0, _M1, _MASK64, HashCombiners
from repro.core.structure import (
    sapp_hash,
    slam_hash,
    slet_hash,
    slit_hash,
    top_hash,
)
from repro.core.varmap import HashedVarMap, entry_hash, merge_tagged
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = ["MemoRecord", "summarise_tree", "combine_chain"]



class MemoRecord:
    """Cached hashed e-summary of one subtree object.

    ``node`` pins the expression object so its ``id()`` stays valid for
    as long as the record lives.  ``vm_entries``/``vm_hash`` are a frozen
    snapshot of the free-variable map, sufficient to resume hashing in
    any parent context (summaries are context-free, Section 3).
    """

    __slots__ = ("node", "s_hash", "vm_entries", "vm_hash", "top", "node_id")

    def __init__(
        self,
        node: Expr,
        s_hash: int,
        vm_entries: dict[str, int],
        vm_hash: int,
        top: int,
    ):
        self.node = node
        self.s_hash = s_hash
        self.vm_entries = vm_entries
        self.vm_hash = vm_hash
        self.top = top
        self.node_id: Optional[int] = None


def combine_chain(
    combiners: HashCombiners, salt_name: str, arity: int
) -> Callable[..., int]:
    """A fixed-arity specialisation of ``combiners.combine(salt_name, ...)``.

    For the single-lane family (``bits <= 64``) the returned closure
    inlines the splitmix64 absorb steps -- no ``*values`` unpacking, no
    salt-table lookup, no method call -- which is where the arena
    kernel's per-node win over the generic combiner comes from.  The
    inlined arithmetic is the same as
    :meth:`HashCombiners.combine`'s single-lane path, so the outputs are
    bit-identical (the arena differential wall checks this at several
    widths).  Multi-lane families (``bits > 64``) fall back to the
    generic method.
    """
    if combiners._lanes != 1:
        if arity == 2:
            return lambda a, b: combiners.combine(salt_name, a, b)
        if arity == 3:
            return lambda a, b, c: combiners.combine(salt_name, a, b, c)
        if arity == 4:
            return lambda a, b, c, d: combiners.combine(salt_name, a, b, c, d)
        return lambda *values: combiners.combine(salt_name, *values)

    seed = combiners._salts[salt_name][0]
    mask = combiners.mask

    if arity == 2:

        def chain2(a: int, b: int) -> int:
            x = ((seed ^ a) + _GOLDEN) & _MASK64
            x = ((x ^ (x >> 30)) * _M0) & _MASK64
            x = ((x ^ (x >> 27)) * _M1) & _MASK64
            h = x ^ (x >> 31)
            x = ((h ^ b) + _GOLDEN) & _MASK64
            x = ((x ^ (x >> 30)) * _M0) & _MASK64
            x = ((x ^ (x >> 27)) * _M1) & _MASK64
            return (x ^ (x >> 31)) & mask

        return chain2

    if arity == 3:

        def chain3(a: int, b: int, c: int) -> int:
            x = ((seed ^ a) + _GOLDEN) & _MASK64
            x = ((x ^ (x >> 30)) * _M0) & _MASK64
            x = ((x ^ (x >> 27)) * _M1) & _MASK64
            h = x ^ (x >> 31)
            x = ((h ^ b) + _GOLDEN) & _MASK64
            x = ((x ^ (x >> 30)) * _M0) & _MASK64
            x = ((x ^ (x >> 27)) * _M1) & _MASK64
            h = x ^ (x >> 31)
            x = ((h ^ c) + _GOLDEN) & _MASK64
            x = ((x ^ (x >> 30)) * _M0) & _MASK64
            x = ((x ^ (x >> 27)) * _M1) & _MASK64
            return (x ^ (x >> 31)) & mask

        return chain3

    if arity == 4:

        def chain4(a: int, b: int, c: int, d: int) -> int:
            h = seed
            for v in (a, b, c, d):
                x = ((h ^ v) + _GOLDEN) & _MASK64
                x = ((x ^ (x >> 30)) * _M0) & _MASK64
                x = ((x ^ (x >> 27)) * _M1) & _MASK64
                h = x ^ (x >> 31)
            return h & mask

        return chain4

    def chain_n(*values: int) -> int:
        h = seed
        for v in values:
            x = ((h ^ v) + _GOLDEN) & _MASK64
            x = ((x ^ (x >> 30)) * _M0) & _MASK64
            x = ((x ^ (x >> 27)) * _M1) & _MASK64
            h = x ^ (x >> 31)
        return h & mask

    return chain_n


def summarise_tree(
    expr: Expr,
    combiners: HashCombiners,
    *,
    here: int,
    svar: int,
    var_entry_cache: dict[str, int],
    lit_cache: dict[tuple, int],
    memo: Optional[dict[int, MemoRecord]] = None,
    store_stats=None,
    by_id: Optional[dict[int, int]] = None,
    summaries: Optional[dict] = None,
    map_stats=None,
) -> tuple[int, HashedVarMap]:
    """Summarise ``expr`` bottom-up; the one shared hot loop.

    Dispatches on ``type(node) is ...`` (the node kinds are final) and
    pushes children by attribute, avoiding one method call and one tuple
    allocation per node.  Each ``results`` entry is ``(s_hash, varmap)``
    with the varmap owned by this call -- parents consume child maps
    destructively, which is what makes the amortised Lemma 6.1 bound
    real.

    Hooks (all optional; a disabled hook costs one ``is not None`` test
    per node):

    ``memo`` + ``store_stats``
        The store flavour: resume above cached subtree roots, snapshot
        every fresh node's summary into ``memo`` as a
        :class:`MemoRecord`, and count
        ``memo_hits``/``memo_skipped_nodes``/``hashed_nodes``.
    ``by_id`` / ``summaries``
        The :func:`~repro.core.hashed.alpha_hash_all` flavour: record
        every node's top hash (and optionally its
        :class:`~repro.core.hashed.NodeSummary`).
    ``map_stats``
        A :class:`~repro.core.varmap.MapOpStats` receiving the
        operation counts bounded by Lemmas 6.1/6.2.

    Returns the root's ``(s_hash, varmap)``; when ``memo`` is given the
    root's record is ``memo[id(expr)]``.
    """
    from repro.core.hashed import NodeSummary, lit_cache_key

    count_ops = map_stats is not None

    results: list[tuple[int, HashedVarMap]] = []
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    push = stack.append
    while stack:
        node, visited = stack.pop()
        cls = type(node)
        if not visited:
            if memo is not None:
                rec = memo.get(id(node))
                if rec is not None:
                    store_stats.memo_hits += 1
                    store_stats.memo_skipped_nodes += node.size
                    results.append(
                        (rec.s_hash, HashedVarMap(dict(rec.vm_entries), rec.vm_hash))
                    )
                    continue
            if cls is Var or cls is Lit:
                pass  # leaves fall through to the summarise phase
            elif cls is Lam:
                push((node, True))
                push((node.body, False))
                continue
            elif cls is App:
                push((node, True))
                push((node.arg, False))
                push((node.fn, False))
                continue
            elif cls is Let:
                push((node, True))
                push((node.body, False))
                push((node.bound, False))
                continue
            else:  # pragma: no cover
                raise TypeError(f"unknown node kind {node.kind}")

        if cls is Var:
            s_hash = svar
            name = node.name
            cached = var_entry_cache.get(name)
            if cached is None:
                cached = entry_hash(combiners, name, here)
                var_entry_cache[name] = cached
            varmap = HashedVarMap({name: here}, cached)
            if count_ops:
                map_stats.singleton += 1
        elif cls is Lit:
            value = node.value
            lit_key = lit_cache_key(value)
            s_hash = lit_cache.get(lit_key)
            if s_hash is None:
                s_hash = slit_hash(combiners, value)
                lit_cache[lit_key] = s_hash
            varmap = HashedVarMap.empty()
        elif cls is Lam:
            s_body, varmap = results.pop()
            pos = varmap.remove(combiners, node.binder)
            if count_ops:
                map_stats.remove += 1
            s_hash = slam_hash(combiners, node.size, pos, s_body)
        elif cls is App:
            s_arg, vm_arg = results.pop()
            s_fn, vm_fn = results.pop()
            left_bigger = len(vm_fn.entries) >= len(vm_arg.entries)
            s_hash = sapp_hash(combiners, node.size, left_bigger, s_fn, s_arg)
            big, small = (vm_fn, vm_arg) if left_bigger else (vm_arg, vm_fn)
            if count_ops:
                map_stats.merge_entries += len(small)
            varmap = merge_tagged(combiners, big, small, node.size)
        else:  # cls is Let (the scheduling phase rejected everything else)
            s_body, vm_body = results.pop()
            s_bound, vm_bound = results.pop()
            pos_x = vm_body.remove(combiners, node.binder)
            if count_ops:
                map_stats.remove += 1
            left_bigger = len(vm_bound.entries) >= len(vm_body.entries)
            s_hash = slet_hash(
                combiners, node.size, pos_x, left_bigger, s_bound, s_body
            )
            big, small = (vm_bound, vm_body) if left_bigger else (vm_body, vm_bound)
            if count_ops:
                map_stats.merge_entries += len(small)
            varmap = merge_tagged(combiners, big, small, node.size)

        top = top_hash(combiners, s_hash, varmap.hash)
        if by_id is not None:
            by_id[id(node)] = top
        if summaries is not None:
            summaries[id(node)] = NodeSummary(
                s_hash, varmap.hash, len(varmap), top
            )
        if memo is not None:
            memo[id(node)] = MemoRecord(
                node, s_hash, dict(varmap.entries), varmap.hash, top
            )
            store_stats.hashed_nodes += 1
        results.append((s_hash, varmap))

    assert len(results) == 1
    return results[0]
