"""Zero-copy arena fan-out over ``multiprocessing.shared_memory``.

Pool-based parallel hashing used to pickle the whole :class:`ExprArena`
into every worker task: O(arena bytes x workers) of serialisation that
BENCH_PR3/PR4 showed eating the entire parallel win.  This module ships
the arena's flat columns through one POSIX shared-memory segment
instead -- the parent copies the columns in once, workers *attach* and
wrap the same pages in zero-copy views, and the per-task payload shrinks
to a small metadata dict plus the chunk's root indices.

Lifecycle discipline (the part that keeps ``/dev/shm`` clean):

* The parent creates the segment via :class:`SharedArenaHandle` and is
  the **only** unlinker.  Fan-out call sites hold the handle in a
  ``try/finally`` so the segment is unlinked even when a worker dies
  mid-batch (the pool raises, the ``finally`` still runs).
* Workers attach read-only views and never unlink.  On Python < 3.13
  the ``resource_tracker`` would "helpfully" register every attachment
  and unlink it again at worker exit (racing other workers and the
  parent); :func:`attach_arena` suppresses the registration instead --
  un-registering after the fact is not enough, because sibling workers
  share one tracker process whose name *set* dedups their registrations,
  so the second un-register dies with a ``KeyError`` inside the tracker.
* Workers cache one attachment keyed by segment name
  (:func:`attach_arena_cached`): tasks from the same batch reuse it,
  and a new batch's first task drops the stale entry.

The attached views are NumPy arrays when NumPy is importable and
``memoryview.cast`` slices otherwise -- both satisfy what the kernels
need (``len``, indexing, ``tolist``, the buffer protocol), so the
zero-copy path works for the scalar fallback too.
"""

from __future__ import annotations

import atexit
import threading
from multiprocessing import shared_memory
from typing import Optional

from repro.core.arena import ExprArena

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the no-numpy CI leg
    _np = None

__all__ = [
    "SharedArenaHandle",
    "share_arena",
    "attach_arena",
    "attach_arena_cached",
    "drop_attachments",
]

# One int64 column is 8 bytes per node; the segment packs the five int
# columns first (8-aligned by construction) and the opcode bytes last.
_I64_COLUMNS = ("left", "right", "aux", "sizes", "depths")


class SharedArenaHandle:
    """Parent-side owner of one arena's shared-memory segment.

    ``meta()`` is the picklable task payload; :meth:`close` detaches,
    :meth:`unlink` removes the segment from the system.  ``close_unlink``
    is the one-call ``finally`` form.  Unlinking twice is harmless --
    the second call is a no-op -- so crash paths can be generous.
    """

    __slots__ = ("shm", "_n", "_names", "_literals", "_unlinked")

    def __init__(self, arena: ExprArena):
        n = len(arena.op)
        size = max(1, n * (8 * len(_I64_COLUMNS) + 1))
        self.shm = shared_memory.SharedMemory(create=True, size=size)
        buf = self.shm.buf
        offset = 0
        for column in _I64_COLUMNS:
            view = memoryview(getattr(arena, column))
            raw = view.tobytes() if view.format != "B" else bytes(view)
            buf[offset : offset + 8 * n] = raw
            offset += 8 * n
        buf[offset : offset + n] = bytes(arena.op)
        self._n = n
        self._names = arena.names
        self._literals = arena.literals
        self._unlinked = False

    def meta(self) -> dict:
        """The picklable attach recipe for workers."""
        return {
            "shm_name": self.shm.name,
            "nodes": self._n,
            "names": self._names,
            "literals": self._literals,
        }

    def close(self) -> None:
        try:
            self.shm.close()
        except (BufferError, OSError):  # pragma: no cover - defensive
            pass

    def unlink(self) -> None:
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def close_unlink(self) -> None:
        """The ``finally`` clause: detach and remove, idempotently."""
        self.close()
        self.unlink()


def share_arena(arena: ExprArena) -> SharedArenaHandle:
    """Copy ``arena``'s columns into a fresh shared-memory segment."""
    return SharedArenaHandle(arena)


_ATTACH_LOCK = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach without handing the segment to the resource tracker.

    Before Python 3.13 (which grew ``track=False``) every attachment is
    auto-registered and unlinked at process exit; for segments owned by
    the parent that is a use-after-free against the other workers, and
    un-registering afterwards double-removes in the tracker shared by
    sibling workers.  Suppress the registration at the source instead.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - minimal builds
        return shared_memory.SharedMemory(name=name, create=False)
    with _ATTACH_LOCK:
        registered = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = registered


def attach_arena(meta: dict) -> tuple[ExprArena, shared_memory.SharedMemory]:
    """Worker-side attach: rebuild an :class:`ExprArena` over the segment.

    The returned arena's columns are zero-copy views of the shared
    pages; the caller (or :func:`attach_arena_cached`) keeps the
    ``SharedMemory`` object alive for as long as the arena is used.
    """
    shm = _attach_untracked(meta["shm_name"])
    n = meta["nodes"]
    arena = ExprArena.__new__(ExprArena)
    buf = shm.buf
    offset = 0
    for column in _I64_COLUMNS:
        chunk = buf[offset : offset + 8 * n]
        if _np is not None:
            view = _np.frombuffer(chunk, dtype=_np.int64)
        else:
            view = chunk.cast("q")
        setattr(arena, column, view)
        offset += 8 * n
    op_view = buf[offset : offset + n]
    arena.op = _np.frombuffer(op_view, dtype=_np.uint8) if _np is not None else op_view
    arena.names = meta["names"]
    arena.literals = meta["literals"]
    arena._name_ids = {}
    arena._lit_ids = {}
    arena._struct = None
    return arena, shm


_ATTACHED: dict[str, tuple[ExprArena, shared_memory.SharedMemory]] = {}


def attach_arena_cached(meta: dict) -> ExprArena:
    """Attach with a one-segment per-worker cache.

    Tasks of one batch share the attachment; a task naming a different
    segment evicts the old one first (batches are sequential per pool).
    """
    key = meta["shm_name"]
    cached = _ATTACHED.get(key)
    if cached is not None:
        return cached[0]
    drop_attachments()
    arena, shm = attach_arena(meta)
    _ATTACHED[key] = (arena, shm)
    return arena


def drop_attachments() -> None:
    """Release every cached attachment (views first, then the mapping)."""
    for key in list(_ATTACHED):
        arena, shm = _ATTACHED.pop(key)
        # Drop the exported views so close() can release the mapping;
        # memoryview slices must be released explicitly, numpy views
        # just need their references gone.
        for column in _I64_COLUMNS + ("op",):
            view = getattr(arena, column, None)
            if isinstance(view, memoryview):
                view.release()
            setattr(arena, column, None)
        view = None  # the loop variable still pins the last column
        try:
            shm.close()
        except (BufferError, OSError):  # pragma: no cover - views still held
            pass


# Workers that die with a cached attachment would otherwise hit a
# BufferError in SharedMemory.__del__ (the numpy views still pin the
# buffer during interpreter teardown); draining the cache first keeps
# exits quiet.  A no-op in processes that never attached.
atexit.register(drop_attachments)
