"""Incremental re-hashing after local rewrites (Section 6.3).

Compositionality means the summary of a node depends only on its
children's summaries.  So when a subtree at depth ``h`` is replaced, only
(a) the new subtree and (b) the ``h`` ancestors on the path to the root
need new summaries; everything else is untouched.  The paper bounds the
path-recompute cost by ``O(h^2 + h*f)`` (``f`` = number of never-bound
free variables), and by ``O((log n)^2)`` for balanced trees.

:class:`IncrementalHasher` realises this.  Unlike the batch summariser
(which consumes child variable maps destructively), it keeps a *snapshot*
of every node's variable map so ancestors can be re-merged later; the
copy made at each ancestor is exactly the "work proportional to the size
of the free variable map" the paper's analysis charges for.

The replace operation reports a :class:`ReplaceStats` with the touched
node and map-entry counts, which the Section 6.3 experiment harness uses
to show incremental updates touch ``O(h^2 + h*f)`` work, not ``O(n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from repro.core.combiners import HashCombiners, default_combiners
from repro.core.hashed import AlphaHashes
from repro.core.position_tree import pt_here_hash
from repro.core.statshape import StatsDictMixin
from repro.core.structure import (
    sapp_hash,
    slam_hash,
    slet_hash,
    slit_hash,
    svar_hash,
    top_hash,
)
from repro.core.varmap import HashedVarMap, merge_tagged
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var
from repro.lang.traversal import preorder, replace_at

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store uses core)
    from repro.store import ExprStore

__all__ = ["IncrementalHasher", "PathError", "ReplaceStats"]


class PathError(IndexError):
    """A position path does not address a node of the current expression.

    Subclasses ``IndexError`` (what navigation historically raised) so
    existing callers keep working; service layers map it to a client
    error (HTTP 400) instead of a server fault.
    """


@dataclass(repr=False)
class ReplaceStats(StatsDictMixin):
    """Work accounting for one ``replace`` call.

    ``path_nodes`` ancestors were re-summarised, costing
    ``path_map_entries`` map-entry copies/merges; the new subtree of
    ``subtree_nodes`` nodes was summarised from scratch -- except for
    ``store_memo_nodes`` of them, served from the attached
    :class:`~repro.store.ExprStore` summary memo.  The rest of the
    expression -- ``unchanged_nodes`` of it -- was not touched at all.

    Shares the :meth:`as_dict` / ``repr`` shape of
    :class:`repro.store.StoreStats` (both report ``touched_nodes``).
    """

    path_nodes: int
    path_map_entries: int
    subtree_nodes: int
    unchanged_nodes: int
    store_memo_nodes: int = 0

    _stats_properties = ("touched_nodes", "spine_depth")

    @property
    def touched_nodes(self) -> int:
        return self.path_nodes + self.subtree_nodes - self.store_memo_nodes

    @property
    def spine_depth(self) -> int:
        """Depth of the replaced position (the dirty spine's length)."""
        return self.path_nodes


class _Ann:
    """Annotation-tree node mirroring one expression node.

    ``children is None`` marks a *collapsed* annotation: the node's
    summary came from an :class:`~repro.store.ExprStore` cache, so its
    descendants were never annotated.  Navigation into a collapsed
    subtree expands it lazily (one level at a time), which keeps the
    cache win for the common case of replacements that are consulted
    only at the root.
    """

    __slots__ = ("expr", "s_hash", "varmap", "top", "children")

    def __init__(
        self,
        expr: Expr,
        s_hash: int,
        varmap: HashedVarMap,
        top: int,
        children: Optional[tuple["_Ann", ...]],
    ):
        self.expr = expr
        self.s_hash = s_hash
        self.varmap = varmap
        self.top = top
        self.children = children


class IncrementalHasher:
    """Maintains alpha-hashes for every subexpression across rewrites.

    >>> inc = IncrementalHasher(expr)
    >>> inc.root_hash
    >>> stats = inc.replace((0, 1), new_subtree)   # rewrite in place
    >>> inc.root_hash                               # updated
    """

    def __init__(
        self,
        expr: Expr,
        combiners: Optional[HashCombiners] = None,
        store: Optional["ExprStore"] = None,
    ):
        if store is not None:
            combiners = store.resolve_combiners(combiners)
        self.combiners = combiners if combiners is not None else default_combiners()
        self.store = store
        self._here = pt_here_hash(self.combiners)
        self._svar = svar_hash(self.combiners)
        self._root = self._build(expr)

    # -- queries --------------------------------------------------------------

    @property
    def expr(self) -> Expr:
        """The current expression (a new tree after each replace)."""
        return self._root.expr

    @property
    def root_hash(self) -> int:
        return self._root.top

    def hash_at(self, path: Sequence[int]) -> int:
        """Alpha-hash of the subexpression at ``path``."""
        ann = self._root
        for index in path:
            self._expand(ann)
            if not 0 <= index < len(ann.children):
                raise PathError(
                    f"invalid path {tuple(path)} at {ann.expr.kind}"
                )
            ann = ann.children[index]
        return ann.top

    def hashes(self) -> AlphaHashes:
        """An :class:`AlphaHashes` view over the current expression."""
        by_id = {id(node): value for node, value in self.iter_hashes()}
        return AlphaHashes(self.expr, self.combiners, by_id)

    def iter_hashes(self) -> Iterator[tuple[Expr, int]]:
        """Yield (node, hash) for every node of the current expression."""
        stack = [self._root]
        while stack:
            ann = stack.pop()
            if ann.children is None:
                collapsed = self._collapsed_items(ann)
                if collapsed is not None:
                    yield from collapsed
                    continue
                self._expand(ann)
            yield ann.expr, ann.top
            stack.extend(ann.children)

    def _collapsed_items(
        self, ann: _Ann
    ) -> Optional[list[tuple[Expr, int]]]:
        """Per-node hashes of a collapsed subtree, straight from the store
        memo -- or ``None`` if the memo no longer covers it (flushed)."""
        assert self.store is not None
        items: list[tuple[Expr, int]] = []
        for node in preorder(ann.expr):
            top = self.store.cached_top(node)
            if top is None:
                return None
            items.append((node, top))
        return items

    def _expand(self, ann: _Ann) -> None:
        """Materialise the children annotations of a collapsed node."""
        if ann.children is not None:
            return
        ann.children = tuple(self._build(child) for child in ann.expr.children())

    # -- updates ---------------------------------------------------------------

    def replace(self, path: Sequence[int], new_subexpr: Expr) -> ReplaceStats:
        """Replace the subtree at ``path`` with ``new_subexpr`` and
        recompute exactly the affected summaries.

        The caller is responsible for keeping binders unique across the
        whole expression (rewrites in a real compiler maintain this
        invariant anyway; :class:`repro.lang.names.NameSupply` helps).
        """
        spine: list[_Ann] = []
        ann = self._root
        for index in path:
            spine.append(ann)
            self._expand(ann)
            if not 0 <= index < len(ann.children):
                raise PathError(f"invalid path {tuple(path)} at {ann.expr.kind}")
            ann = ann.children[index]

        skip_counter = [0]
        new_ann = self._build(new_subexpr, skip_counter)

        merge_counter = [0]
        current = new_ann
        for index, parent in zip(reversed(path), reversed(spine)):
            children = list(parent.children)
            children[index] = current
            new_expr = _rebuild_parent(parent.expr, index, current.expr)
            current = self._combine(new_expr, tuple(children), merge_counter)
        self._root = current

        total = self._root.expr.size
        return ReplaceStats(
            path_nodes=len(spine),
            path_map_entries=merge_counter[0],
            subtree_nodes=new_subexpr.size,
            unchanged_nodes=total - len(spine) - new_subexpr.size,
            store_memo_nodes=skip_counter[0],
        )

    # -- construction -----------------------------------------------------------

    def _build(
        self, expr: Expr, skip_counter: Optional[list[int]] = None
    ) -> _Ann:
        """Summarise ``expr`` bottom-up with snapshot (non-destructive)
        variable maps, producing an annotation tree.

        When a store is attached, subtrees whose summaries the store has
        already computed are taken from its cache as collapsed
        annotations instead of being re-summarised; ``skip_counter[0]``
        accumulates the node count so saved."""
        store = self.store
        results: list[_Ann] = []
        stack: list[tuple[Expr, bool]] = [(expr, False)]
        while stack:
            node, visited = stack.pop()
            if not visited:
                if store is not None:
                    cached = store.cached_summary(node)
                    if cached is not None:
                        s_hash, varmap, top = cached
                        results.append(_Ann(node, s_hash, varmap, top, None))
                        if skip_counter is not None:
                            skip_counter[0] += node.size
                        continue
                stack.append((node, True))
                for child in reversed(node.children()):
                    stack.append((child, False))
                continue
            arity = len(node.children())
            if arity == 0:
                children: tuple[_Ann, ...] = ()
            else:
                children = tuple(results[len(results) - arity :])
                del results[len(results) - arity :]
            results.append(self._combine(node, children, None))
        assert len(results) == 1
        return results[0]

    def _combine(
        self,
        node: Expr,
        children: tuple[_Ann, ...],
        merge_counter: Optional[list[int]],
    ) -> _Ann:
        """Summarise one node from its children's (retained) summaries.

        Mirrors the recipes in :mod:`repro.core.hashed` but never mutates
        a child's map: the bigger child's map is snapshotted before the
        merge.  That snapshot is the O(map size) cost the Section 6.3
        analysis accounts for.
        """
        combiners = self.combiners
        if isinstance(node, Var):
            s_hash = self._svar
            varmap = HashedVarMap.singleton(combiners, node.name, self._here)
        elif isinstance(node, Lit):
            s_hash = slit_hash(combiners, node.value)
            varmap = HashedVarMap.empty()
        elif isinstance(node, Lam):
            (body,) = children
            varmap = body.varmap.snapshot()
            pos = varmap.remove(combiners, node.binder)
            s_hash = slam_hash(combiners, node.size, pos, body.s_hash)
            if merge_counter is not None:
                merge_counter[0] += len(varmap) + 1
        elif isinstance(node, App):
            fn, arg = children
            left_bigger = len(fn.varmap) >= len(arg.varmap)
            s_hash = sapp_hash(combiners, node.size, left_bigger, fn.s_hash, arg.s_hash)
            big, small = (fn, arg) if left_bigger else (arg, fn)
            varmap = self._merge(big.varmap, small.varmap, node.size)
            if merge_counter is not None:
                merge_counter[0] += len(big.varmap) + len(small.varmap)
        elif isinstance(node, Let):
            bound, body = children
            body_vm = body.varmap.snapshot()
            pos_x = body_vm.remove(combiners, node.binder)
            left_bigger = len(bound.varmap) >= len(body_vm)
            s_hash = slet_hash(
                combiners, node.size, pos_x, left_bigger, bound.s_hash, body.s_hash
            )
            if left_bigger:
                varmap = self._merge(bound.varmap, body_vm, node.size, big_owned=False)
            else:
                varmap = self._merge_into(body_vm, bound.varmap, node.size)
            if merge_counter is not None:
                merge_counter[0] += len(bound.varmap) + len(body_vm)
        else:  # pragma: no cover
            raise TypeError(f"unknown node kind {node.kind}")

        top = top_hash(combiners, s_hash, varmap.hash)
        return _Ann(node, s_hash, varmap, top, children)

    def _merge(
        self,
        big: HashedVarMap,
        small: HashedVarMap,
        tag: int,
        big_owned: bool = False,
    ) -> HashedVarMap:
        """Non-destructive tagged merge: copy ``big`` (unless owned), fold
        ``small`` in."""
        target = big if big_owned else big.snapshot()
        return merge_tagged(self.combiners, target, small, tag)

    def _merge_into(
        self, target: HashedVarMap, small: HashedVarMap, tag: int
    ) -> HashedVarMap:
        return merge_tagged(self.combiners, target, small, tag)


def _rebuild_parent(parent: Expr, index: int, new_child: Expr) -> Expr:
    """A copy of ``parent`` with child ``index`` swapped for ``new_child``."""
    return replace_at(parent, (index,), new_child)
