"""Step 2: the fast alpha-hashing algorithm (Section 5).

This is the paper's final algorithm.  Structures and position trees are
never materialised: each is represented by its hash code, and the "smart
constructors" become O(1) hash combiners (Section 5.1).  Variable maps
keep their entries in a dict and maintain their hash incrementally as the
XOR of entry hashes (Section 5.2).

Per node the work is:

* ``Var``   -- one singleton-map creation,
* ``Lit``   -- O(1),
* ``Lam``   -- one map removal,
* ``App``/``Let`` -- fold the *smaller* child map into the bigger one,
  wrapping each moved entry with a tagged-join combiner (Section 4.8).

Lemma 6.1 bounds the total number of merge operations by O(n log n); with
Python dicts each operation is expected O(1), so the whole pass is
expected O(n log n) (the paper's balanced-BST maps give O(n (log n)^2)).

The result annotates **every** subexpression with a hash that is equal
for alpha-equivalent subexpressions and, with probability
``1 - 5(|e1|+|e2|)/2^b`` per pair (Theorem 6.7), different otherwise.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from repro.core.combiners import HashCombiners, default_combiners
from repro.core.kernel import summarise_tree
from repro.core.position_tree import pt_here_hash
from repro.core.structure import svar_hash
from repro.core.varmap import MapOpStats
from repro.lang.expr import Expr
from repro.lang.traversal import preorder_with_paths

__all__ = [
    "AlphaHashes",
    "NodeSummary",
    "alpha_hash_all",
    "alpha_hash_root",
    "summarise_node",
    "lit_cache_key",
]


def lit_cache_key(value) -> tuple:
    """Dict key under which a literal's structure hash may be cached.

    Floats key on their IEEE-754 bit pattern, not their value:
    ``hash_lit`` deliberately distinguishes ``-0.0`` from ``0.0`` (and
    every NaN payload), while ``-0.0 == 0.0`` as a dict key -- a
    value-keyed cache would make a literal's hash depend on which
    spelling was hashed first, breaking bit-reproducibility.  All other
    literal types compare exactly, so ``(type, value)`` suffices.
    """
    if type(value) is float:
        return (float, struct.pack("<d", value))
    return (type(value), value)


class NodeSummary:
    """The hashed e-summary of one node: structure hash, variable-map
    hash and size, and the combined top-level hash."""

    __slots__ = ("structure_hash", "varmap_hash", "varmap_len", "top")

    def __init__(self, structure_hash: int, varmap_hash: int, varmap_len: int, top: int):
        self.structure_hash = structure_hash
        self.varmap_hash = varmap_hash
        self.varmap_len = varmap_len
        self.top = top

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"NodeSummary(top=0x{self.top:x}, s=0x{self.structure_hash:x}, "
            f"vm=0x{self.varmap_hash:x}, |vm|={self.varmap_len})"
        )


class AlphaHashes:
    """Alpha-invariant hashes for every subexpression of ``expr``.

    ``hashes[node]`` (or :meth:`hash_of`) looks up the hash of a subtree
    *object*; because the hash of a subexpression depends only on the
    subtree itself (compositionality, Section 3), shared subtree objects
    are safe: every occurrence has the same hash.

    Iterate with :meth:`items` to enumerate ``(path, node, hash)`` for
    every occurrence.
    """

    __slots__ = ("expr", "combiners", "_by_id", "_summaries")

    def __init__(
        self,
        expr: Expr,
        combiners: HashCombiners,
        by_id: dict[int, int],
        summaries: Optional[dict[int, NodeSummary]] = None,
    ):
        self.expr = expr
        self.combiners = combiners
        self._by_id = by_id
        self._summaries = summaries

    def hash_of(self, node: Expr) -> int:
        """The alpha-hash of ``node`` (must be a subtree of ``expr``)."""
        try:
            return self._by_id[id(node)]
        except KeyError:
            raise KeyError(
                "node is not a subexpression of the hashed expression"
            ) from None

    __getitem__ = hash_of

    def summary_of(self, node: Expr) -> NodeSummary:
        """Full hashed e-summary of ``node`` (needs ``keep_summaries``)."""
        if self._summaries is None:
            raise ValueError("hashes were computed without keep_summaries=True")
        return self._summaries[id(node)]

    @property
    def root_hash(self) -> int:
        return self._by_id[id(self.expr)]

    def items(self) -> Iterator[tuple[tuple[int, ...], Expr, int]]:
        """Yield ``(path, node, hash)`` for every subexpression occurrence."""
        by_id = self._by_id
        for path, node in preorder_with_paths(self.expr):
            yield path, node, by_id[id(node)]

    def __len__(self) -> int:
        return self.expr.size


def alpha_hash_all(
    expr: Expr,
    combiners: HashCombiners | None = None,
    stats: MapOpStats | None = None,
    keep_summaries: bool = False,
) -> AlphaHashes:
    """Annotate every subexpression of ``expr`` with its alpha-hash.

    Parameters
    ----------
    expr:
        The expression; binders should be unique (preprocess with
        :func:`repro.lang.names.uniquify_binders` if unsure -- with
        shadowed binders hashes remain alpha-correct, but downstream
        CSE-style rewrites would be unsound, cf. Section 2.2).
    combiners:
        The hash-combiner family (width + seed); defaults to the shared
        64-bit fixed-seed family.
    stats:
        Optional :class:`~repro.core.varmap.MapOpStats` that receives the
        operation counts bounded by Lemmas 6.1/6.2.
    keep_summaries:
        Retain per-node structure/varmap hashes (used by tests and the
        incremental hasher's cross-checks).

    Complexity: expected O(n log n) time, O(n) space.
    """
    if combiners is None:
        combiners = default_combiners()

    # Var nodes all map their name to PTHere, so the entry hash (and the
    # resulting singleton map hash) depends only on the name: memoise it.
    # Literal structure hashes likewise depend only on the (type, value)
    # pair -- both caches turn repeated leaves into dict hits.
    var_entry_cache: dict[str, int] = {}
    lit_cache: dict[tuple, int] = {}

    by_id: dict[int, int] = {}
    summaries: Optional[dict[int, NodeSummary]] = {} if keep_summaries else None

    # The hot loop itself lives in repro.core.kernel.summarise_tree,
    # shared with the store's memoised summariser and (through the same
    # recipe helpers) the arena kernel.
    summarise_tree(
        expr,
        combiners,
        here=pt_here_hash(combiners),
        svar=svar_hash(combiners),
        var_entry_cache=var_entry_cache,
        lit_cache=lit_cache,
        by_id=by_id,
        summaries=summaries,
        map_stats=stats,
    )
    return AlphaHashes(expr, combiners, by_id, summaries)





def alpha_hash_root(expr: Expr, combiners: HashCombiners | None = None) -> int:
    """The alpha-hash of ``expr`` itself (still visits every node once)."""
    return alpha_hash_all(expr, combiners).root_hash


def summarise_node(
    expr: Expr, combiners: HashCombiners | None = None
) -> NodeSummary:
    """The full hashed e-summary of ``expr``'s root."""
    hashes = alpha_hash_all(expr, combiners, keep_summaries=True)
    return hashes.summary_of(expr)
