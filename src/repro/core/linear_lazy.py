"""Appendix C: the tag-free variant using lazy linear transformations.

Instead of wrapping the *smaller* map's entries in tagged joins, this
variant conceptually transforms the position codes of **both** children
at every App/Let node -- entries coming from the left child through a
fixed bijection ``f_L``, from the right child through ``f_R``, and
variables present in both through a strong binary combiner ``f_both``.
Applying ``f_L``/``f_R`` to *every* entry of the bigger map would be as
expensive as the naive algorithm, so the transformation is stored
**lazily**: each map carries a pending linear function ``f(x) = a*x + b``
over Z_{2^b} (with ``a`` odd, hence invertible), and

* transforming the whole map is one function composition, O(1);
* looking an entry up applies the pending function, O(1);
* inserting pre-images the value through ``f^{-1}``, O(1).

The appendix leaves the *map hash* unspecified; we complete the design
with a multiplier hash that commutes with linear maps: each name ``v``
gets an odd multiplier ``c_v``, and the map hash over actual position
codes ``p_v`` is ``sum_v c_v * p_v  (mod 2^b)``.  Maintaining the pair
``(S1, S0) = (sum c_v * stored_v, sum c_v)`` makes the actual hash
``a*S1 + b*S0`` available in O(1) *through* any pending ``(a, b)`` --
insertion, removal and whole-map transformation all stay O(1).  Like
XOR, the sum is commutative and invertible; unlike XOR it distributes
over the linear transforms.

The appendix notes this variant also "produces strong hashes" in
practice but lacks the Theorem 6.7 proof; our collision benchmarks
(Appendix B harness) exercise it alongside the tagged algorithm.
"""

from __future__ import annotations

from typing import Optional

from repro.core.combiners import HashCombiners, default_combiners
from repro.core.hashed import AlphaHashes
from repro.core.varmap import MapOpStats
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = ["alpha_hash_all_lazy", "LazyVarMap", "LinearFn"]


class LinearFn:
    """An invertible linear function ``x -> a*x + b (mod 2^bits)``.

    ``a`` must be odd, which makes it a unit of Z_{2^bits}; composition
    and inversion are O(1) (Appendix C: "composing, evaluating, and
    inverting takes constant time").
    """

    __slots__ = ("a", "b", "mask")

    def __init__(self, a: int, b: int, mask: int):
        if a % 2 == 0:
            raise ValueError("linear coefficient must be odd (invertible mod 2^b)")
        self.a = a & mask
        self.b = b & mask
        self.mask = mask

    @staticmethod
    def identity(mask: int) -> "LinearFn":
        return LinearFn(1, 0, mask)

    def __call__(self, x: int) -> int:
        return (self.a * x + self.b) & self.mask

    def compose_after(self, outer_a: int, outer_b: int) -> "LinearFn":
        """The composition ``outer . self`` for outer ``x -> a'x + b'``."""
        mask = self.mask
        return LinearFn((outer_a * self.a) & mask, (outer_a * self.b + outer_b) & mask, mask)

    def inverse_apply(self, y: int) -> int:
        """``f^{-1}(y)``: the stored value whose actual value is ``y``."""
        mask = self.mask
        a_inv = pow(self.a, -1, mask + 1)
        return (a_inv * (y - self.b)) & mask

    def __repr__(self) -> str:  # pragma: no cover
        return f"LinearFn(a=0x{self.a:x}, b=0x{self.b:x})"


class LazyVarMap:
    """Variable map with lazily transformed values and an O(1) hash.

    Invariants (checked by the test-suite's ``materialise``):

    * actual position of ``v``  ==  ``pending(entries[v])``
    * ``S1 == sum over entries of multiplier(v) * entries[v]``
    * ``S0 == sum over entries of multiplier(v)``
    * actual map hash  ==  ``pending.a * S1 + pending.b * S0``
    """

    __slots__ = ("entries", "pending", "s1", "s0", "mask")

    def __init__(self, mask: int):
        self.entries: dict[str, int] = {}
        self.pending = LinearFn.identity(mask)
        self.s1 = 0
        self.s0 = 0
        self.mask = mask

    # -- hashing ---------------------------------------------------------------

    def hash_value(self) -> int:
        """The map hash over *actual* values, in O(1)."""
        p = self.pending
        return (p.a * self.s1 + p.b * self.s0) & self.mask

    def __len__(self) -> int:
        return len(self.entries)

    # -- operations --------------------------------------------------------------

    def insert_actual(self, name: str, multiplier: int, actual: int) -> None:
        """Insert ``name`` with actual position code ``actual``."""
        stored = self.pending.inverse_apply(actual)
        old = self.entries.get(name)
        if old is not None:
            self.s1 = (self.s1 - multiplier * old) & self.mask
            self.s0 = (self.s0 - multiplier) & self.mask
        self.entries[name] = stored
        self.s1 = (self.s1 + multiplier * stored) & self.mask
        self.s0 = (self.s0 + multiplier) & self.mask

    def remove(self, name: str, multiplier: int) -> Optional[int]:
        """Remove ``name``; return its *actual* position code, or None."""
        stored = self.entries.pop(name, None)
        if stored is None:
            return None
        self.s1 = (self.s1 - multiplier * stored) & self.mask
        self.s0 = (self.s0 - multiplier) & self.mask
        return self.pending(stored)

    def get_actual(self, name: str) -> Optional[int]:
        stored = self.entries.get(name)
        return None if stored is None else self.pending(stored)

    def transform_all(self, fn: LinearFn) -> None:
        """Apply ``fn`` to every actual value -- lazily, in O(1)."""
        self.pending = self.pending.compose_after(fn.a, fn.b)

    def materialise(self) -> dict[str, int]:
        """Actual name -> position mapping (test oracle; O(len))."""
        pending = self.pending
        return {name: pending(stored) for name, stored in self.entries.items()}


def alpha_hash_all_lazy(
    expr: Expr,
    combiners: Optional[HashCombiners] = None,
    stats: Optional[MapOpStats] = None,
) -> AlphaHashes:
    """Alpha-hash every subexpression using the Appendix C scheme.

    Same complexity and interface as
    :func:`repro.core.hashed.alpha_hash_all`; only the position-code and
    map-hash machinery differ (no structure tags, no left-bigger flag --
    both children are transformed, so the result is independent of which
    map was materialised).
    """
    if combiners is None:
        combiners = default_combiners()
    mask = combiners.mask

    # The fixed random bijections of Appendix C, drawn from the seed
    # stream.  Forcing `a` odd keeps them invertible.
    def _linear(salt: str, index: int) -> LinearFn:
        a = combiners.combine(salt, 2 * index + 1) | 1
        b = combiners.combine(salt, 2 * index + 2)
        return LinearFn(a, b, mask)

    f_left = _linear("lazy_fl", 0)
    f_right = _linear("lazy_fr", 0)
    f_let_left = _linear("lazy_flet", 0)
    f_let_right = _linear("lazy_flet", 1)

    here = combiners.combine("pt_here")
    svar = combiners.combine("svar", 1)
    count_ops = stats is not None

    def multiplier(name: str) -> int:
        return (2 * combiners.hash_name(name) + 1) & mask

    def merge(
        big: LazyVarMap,
        small: LazyVarMap,
        f_big: LinearFn,
        f_small: LinearFn,
        salt: str,
    ) -> LazyVarMap:
        """Transform ``big`` lazily by ``f_big``; materialise ``small``'s
        entries through ``f_small`` (or the strong pair combiner when
        present in both) and fold them into ``big``."""
        big.transform_all(f_big)
        for name, stored in small.entries.items():
            actual_small = small.pending(stored)
            mult = multiplier(name)
            old = big.remove(name, mult)
            if old is None:
                new_actual = f_small(actual_small)
            else:
                # `old` was already transformed by f_big (it passed
                # through the lazy pending), exactly as Appendix C's
                # f_both receives both transformed children.
                new_actual = combiners.combine(salt, old, actual_small)
            big.insert_actual(name, mult, new_actual)
        return big

    by_id: dict[int, int] = {}
    results: list[tuple[int, LazyVarMap]] = []
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, visited = stack.pop()
        if not visited:
            stack.append((node, True))
            for child in reversed(node.children()):
                stack.append((child, False))
            continue

        if isinstance(node, Var):
            varmap = LazyVarMap(mask)
            varmap.insert_actual(node.name, multiplier(node.name), here)
            s_hash = svar
            if count_ops:
                stats.singleton += 1
        elif isinstance(node, Lit):
            varmap = LazyVarMap(mask)
            s_hash = combiners.combine("slit", 1, combiners.hash_lit(node.value))
        elif isinstance(node, Lam):
            s_body, varmap = results.pop()
            pos = varmap.remove(node.binder, multiplier(node.binder))
            if count_ops:
                stats.remove += 1
            s_hash = combiners.combine(
                "slam", node.size, combiners.maybe(pos), s_body
            )
        elif isinstance(node, App):
            s_arg, vm_arg = results.pop()
            s_fn, vm_fn = results.pop()
            # No left_bigger flag: the merged map is the same either way.
            s_hash = combiners.combine("sapp", node.size, s_fn, s_arg)
            if count_ops:
                stats.merge_entries += min(len(vm_fn), len(vm_arg))
            if len(vm_fn) >= len(vm_arg):
                varmap = merge(vm_fn, vm_arg, f_left, f_right, "lazy_fboth")
            else:
                varmap = merge(vm_arg, vm_fn, f_right, f_left, "lazy_fboth")
        elif isinstance(node, Let):
            s_body, vm_body = results.pop()
            s_bound, vm_bound = results.pop()
            pos_x = vm_body.remove(node.binder, multiplier(node.binder))
            if count_ops:
                stats.remove += 1
            s_hash = combiners.combine(
                "slet", node.size, combiners.maybe(pos_x), s_bound, s_body
            )
            if count_ops:
                stats.merge_entries += min(len(vm_bound), len(vm_body))
            if len(vm_bound) >= len(vm_body):
                varmap = merge(vm_bound, vm_body, f_let_left, f_let_right, "lazy_fboth")
            else:
                varmap = merge(vm_body, vm_bound, f_let_right, f_let_left, "lazy_fboth")
        else:  # pragma: no cover
            raise TypeError(f"unknown node kind {node.kind}")

        by_id[id(node)] = combiners.combine("top", s_hash, varmap.hash_value())
        results.append((s_hash, varmap))

    assert len(results) == 1
    return AlphaHashes(expr, combiners, by_id)
