"""Text rendering of e-summaries (structures, position trees, maps).

Figure 1 of the paper walks through the e-summaries of
``\\x. (\\b. x b) x`` subexpression by subexpression, showing each
node's Structure (with names erased) and VarMap (names only here).
This module renders those data structures compactly so the
``python -m repro fig1`` harness can reproduce the figure as text, and
so debugging sessions can *see* summaries:

* structures print like expressions with anonymised variables::

      (lam {L} (app (lam {R} (app <v> <v>)) <v>))

  where ``{...}`` is the binder's position tree;
* naive position trees print as paths (``L``, ``LR``, ``{L,R}``...);
* tagged position trees print their joins explicitly
  (``join@5(big=_, small=*)``).
"""

from __future__ import annotations

from typing import Optional

from repro.core.esummary import ESummary
from repro.core.position_tree import (
    PosTree,
    PTBoth,
    PTJoin,
    PTLeftOnly,
    PTRightOnly,
)
from repro.core.structure import SApp, SLam, SLet, SLit, Structure

__all__ = ["render_postree", "render_structure", "render_esummary"]


def render_postree(pos: Optional[PosTree]) -> str:
    """Render a position tree.

    Naive-form trees render as the *set of occurrence paths* the tree
    denotes (the ``{L,LLRL,RRL}`` notation of Section 4.5); tagged trees
    render structurally since their meaning depends on merge tags.
    """
    if pos is None:
        return "(absent)"
    if _is_naive(pos):
        paths = sorted(_naive_paths(pos))
        if paths == [""]:
            return "{here}"
        return "{" + ",".join(paths) + "}"
    return _render_tagged(pos)


def _is_naive(pos: PosTree) -> bool:
    stack = [pos]
    while stack:
        node = stack.pop()
        if isinstance(node, PTJoin):
            return False
        if isinstance(node, PTBoth):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, (PTLeftOnly, PTRightOnly)):
            stack.append(node.child)
    return True


def _naive_paths(pos: PosTree) -> list[str]:
    """All occurrence paths denoted by a naive position tree."""
    out: list[str] = []
    stack: list[tuple[PosTree, str]] = [(pos, "")]
    while stack:
        node, prefix = stack.pop()
        if node.kind == "PTHere":
            out.append(prefix)
        elif isinstance(node, PTLeftOnly):
            stack.append((node.child, prefix + "L"))
        elif isinstance(node, PTRightOnly):
            stack.append((node.child, prefix + "R"))
        elif isinstance(node, PTBoth):
            stack.append((node.left, prefix + "L"))
            stack.append((node.right, prefix + "R"))
    return out


def _render_tagged(pos: PosTree) -> str:
    pieces: list[str] = []
    # stack of strings and nodes (strings are emitted verbatim)
    stack: list[object] = [pos]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            pieces.append(item)
            continue
        assert isinstance(item, PosTree)
        if item.kind == "PTHere":
            pieces.append("*")
        elif isinstance(item, PTJoin):
            pieces.append(f"join@{item.tag}(big=")
            stack.append(")")
            stack.append(item.small)
            stack.append(", small=")
            stack.append(item.big if item.big is not None else "_")
        elif isinstance(item, PTLeftOnly):
            pieces.append("L(")
            stack.append(")")
            stack.append(item.child)
        elif isinstance(item, PTRightOnly):
            pieces.append("R(")
            stack.append(")")
            stack.append(item.child)
        else:
            assert isinstance(item, PTBoth)
            pieces.append("B(")
            stack.append(")")
            stack.append(item.right)
            stack.append(", ")
            stack.append(item.left)
    return "".join(pieces)


def render_structure(structure: Structure) -> str:
    """Render a structure with anonymised variables."""
    pieces: list[str] = []
    stack: list[object] = [structure]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            pieces.append(item)
            continue
        assert isinstance(item, Structure)
        if item.kind == "SVar":
            pieces.append("<v>")
        elif isinstance(item, SLit):
            pieces.append(f"<{item.value!r}>")
        elif isinstance(item, SLam):
            pieces.append(f"(lam {render_postree(item.pos)} ")
            stack.append(")")
            stack.append(item.body)
        elif isinstance(item, SApp):
            pieces.append("(app ")
            stack.append(")")
            stack.append(item.arg)
            stack.append(" ")
            stack.append(item.fn)
        else:
            assert isinstance(item, SLet)
            pieces.append(f"(let {render_postree(item.pos)} ")
            stack.append(")")
            stack.append(item.body)
            stack.append(" ")
            stack.append(item.bound)
    return "".join(pieces)


def render_esummary(summary: ESummary) -> str:
    """Render an e-summary as ``Structure: ... / VarMap: name -> paths``."""
    lines = [f"Structure: {render_structure(summary.structure)}"]
    if len(summary.varmap) == 0:
        lines.append("VarMap:    (empty)")
    else:
        for name in sorted(summary.varmap.entries):
            pos = summary.varmap.entries[name]
            lines.append(f"VarMap:    {name} -> {render_postree(pos)}")
    return "\n".join(lines)
