"""CPU accounting that respects cgroup and affinity limits.

``os.cpu_count()`` reports the *machine's* logical CPUs, which
over-subscribes worker pools inside containers and batch schedulers
that pin the process to a subset (cgroup cpusets, ``taskset``,
Kubernetes CPU limits expressed as affinity).  Everything in this
repository that sizes a pool, clamps a client's ``workers`` request or
decides whether a benchmark is CPU-starved goes through
:func:`available_cpus` instead, so the policy lives in exactly one
place.
"""

from __future__ import annotations

import os

__all__ = ["available_cpus"]


def available_cpus() -> int:
    """Number of CPUs this process may actually run on (always >= 1).

    Prefers the scheduling affinity mask (``os.sched_getaffinity``,
    available on Linux) over the raw logical-CPU count; falls back to
    ``os.cpu_count()`` on platforms without affinity support.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            affinity = getaffinity(0)
        except OSError:  # pragma: no cover - exotic kernels only
            affinity = None
        if affinity:
            return len(affinity)
    return os.cpu_count() or 1
