"""Randomised hash combiners over a ``b``-bit hash space.

Section 6.2 of the paper analyses the algorithm under the assumption that
every primitive hash function and hash combiner is a *random function*
(Definition 6.4): chosen uniformly at random once, then deterministic.
This module provides a practical stand-in: a family of keyed mixing
functions derived from a seed.  Instantiating :class:`HashCombiners` with
a fresh seed corresponds to redrawing all the random functions, which is
exactly what the Appendix B collision experiment requires ("there is no
pair of expressions that would collide reliably across many seeds").

The mixer is splitmix64 (Steele et al.), a well-tested 64-bit finaliser
with full avalanche.  For hash widths above 64 bits we run several
independently-salted 64-bit lanes and concatenate; for widths below 64 we
truncate each combiner *output* to ``bits`` (matching the theory, where
every combiner maps into H = {0,1}^b -- Appendix B runs with b=16).

All combiners are salted with a per-constructor salt and, following the
construction in the proof of Lemma 6.6, with the *size* of the object
being hashed ("we combine the hashes of children and the constructor,
and salt it with the size |d|").
"""

from __future__ import annotations

import struct

__all__ = ["HashCombiners", "DEFAULT_SEED", "splitmix64"]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
# The splitmix64 finalising multipliers.  The inlined combiner chains in
# repro.core.kernel / repro.core.arena import these -- one definition
# keeps their bit-identity with combine() from drifting.
_M0 = 0xBF58476D1CE4E5B9
_M1 = 0x94D049BB133111EB

#: Default seed: fixed so that hashes are reproducible run-to-run, as the
#: paper notes "one may prefer to fix the seed and make the hashing
#: algorithm deterministic".
DEFAULT_SEED = 0x5EED_0F_A1FA_0001


def splitmix64(x: int) -> int:
    """One splitmix64 step: advance-and-finalise ``x`` (a 64-bit int)."""
    x = (x + _GOLDEN) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * _M0) & _MASK64
    z = ((z ^ (z >> 27)) * _M1) & _MASK64
    return z ^ (z >> 31)


# Salt indices: one logical "random function" per use site.  The order is
# part of the hash definition; new salts must be appended, not inserted.
_SALT_NAMES = (
    "name",  # hashing variable-name strings
    "lit_int",
    "lit_float",
    "lit_bool",
    "lit_str",
    "svar",  # Structure constructors
    "slam",
    "sapp",
    "slet",
    "slit",
    "pt_here",  # PosTree constructors (PTJoin/tag form, Section 4.8)
    "pt_join",
    "pt_left",  # PosTree constructors (naive form, Section 4.5)
    "pt_right",
    "pt_both",
    "entry",  # (name, position-tree) variable-map entries
    "top",  # final (structure, varmap) pair
    "none",  # the 'Nothing' placeholder inside Maybe PosTree
    "true",
    "false",
    "baseline_var",  # baseline algorithms get their own salt streams
    "baseline_lam",
    "baseline_app",
    "baseline_let",
    "baseline_lit",
    "baseline_bound",
    "baseline_free",
    "lazy_fl",  # Appendix C linear transforms
    "lazy_fr",
    "lazy_fboth",
    "lazy_flet",
)


class HashCombiners:
    """A full set of keyed hash functions over ``bits``-bit codes.

    Parameters
    ----------
    bits:
        Hash width ``b``.  The theory (Theorem 6.7) bounds collision
        probability by ``5(|e1|+|e2|)/2^b``; Appendix B uses ``b = 16`` to
        make collisions observable; 64 is the fast default; up to 128 is
        supported via two mixing lanes.
    seed:
        Seeding value.  Two instances with the same ``(bits, seed)``
        compute identical hashes; different seeds redraw every "random
        function" of Definition 6.4.
    """

    __slots__ = (
        "bits",
        "seed",
        "mask",
        "_lanes",
        "_salts",
        "_name_cache",
        "NONE_HASH",
        "TRUE_HASH",
        "FALSE_HASH",
    )

    def __init__(self, bits: int = 64, seed: int = DEFAULT_SEED):
        if not 8 <= bits <= 128:
            raise ValueError(f"bits must be in [8, 128], got {bits}")
        self.bits = bits
        self.seed = seed & _MASK64
        self.mask = (1 << bits) - 1
        self._lanes = 1 if bits <= 64 else 2
        # Derive one salt per (use site, lane) from the seed stream.
        state = splitmix64(self.seed ^ 0xA5A5A5A5A5A5A5A5)
        salts: dict[str, tuple[int, ...]] = {}
        for salt_name in _SALT_NAMES:
            lane_salts = []
            for _ in range(2):
                state = splitmix64(state)
                lane_salts.append(state)
            salts[salt_name] = tuple(lane_salts)
        self._salts = salts
        self._name_cache: dict[str, int] = {}
        self.NONE_HASH = self.combine("none")
        self.TRUE_HASH = self.combine("true")
        self.FALSE_HASH = self.combine("false")

    # -- low-level mixing ---------------------------------------------------

    def combine(self, salt_name: str, *values: int) -> int:
        """Mix ``values`` (b-bit ints) under the named salt.

        This is one "random hash combiner": distinct salt names simulate
        independently drawn functions; the implementation is a keyed
        splitmix64 chain per lane, truncated to ``bits``.

        The single-lane (bits <= 64) path inlines the splitmix64 steps:
        this function dominates the summariser's profile, and dropping
        the per-step call overhead is a ~1.5x end-to-end win.  The
        inlined arithmetic is bit-identical to :func:`splitmix64` (the
        test-suite checks the fast path against tree-folded hashing).
        """
        lane_salts = self._salts[salt_name]
        if self._lanes == 1:
            h = lane_salts[0]
            for value in values:
                x = ((h ^ (value & _MASK64) ^ ((value >> 64) & _MASK64)) + _GOLDEN) & _MASK64
                x = ((x ^ (x >> 30)) * _M0) & _MASK64
                x = ((x ^ (x >> 27)) * _M1) & _MASK64
                h = x ^ (x >> 31)
            return h & self.mask
        out = 0
        for lane in range(2):
            h = lane_salts[lane]
            for value in values:
                h = splitmix64(h ^ (value & _MASK64) ^ ((value >> 64) & _MASK64))
            out = (out << 64) | h
        return out & self.mask

    # -- primitive object hashes -------------------------------------------

    def hash_name(self, name: str) -> int:
        """Hash a variable name (memoised; FNV-1a folded into the mixer)."""
        cached = self._name_cache.get(name)
        if cached is not None:
            return cached
        acc = 0xCBF29CE484222325
        for byte in name.encode("utf-8"):
            acc = ((acc ^ byte) * 0x100000001B3) & _MASK64
        result = self.combine("name", acc)
        self._name_cache[name] = result
        return result

    def hash_lit(self, value) -> int:
        """Hash a literal constant, keeping int/float/bool/str apart."""
        if isinstance(value, bool):  # bool first: bool is a subclass of int
            return self.combine("lit_bool", 1 if value else 0)
        if isinstance(value, int):
            return self.combine("lit_int", value & _MASK64, (value >> 64) & _MASK64)
        if isinstance(value, float):
            (as_int,) = struct.unpack("<Q", struct.pack("<d", value))
            return self.combine("lit_float", as_int)
        if isinstance(value, str):
            acc = 0xCBF29CE484222325
            for byte in value.encode("utf-8"):
                acc = ((acc ^ byte) * 0x100000001B3) & _MASK64
            return self.combine("lit_str", acc, len(value))
        raise TypeError(f"cannot hash literal {value!r}")

    def maybe(self, pos_hash: int | None) -> int:
        """Encode a ``Maybe PosTree`` hash: ``None`` gets its own code."""
        return self.NONE_HASH if pos_hash is None else pos_hash

    def flag(self, value: bool) -> int:
        """Encode a boolean (the SApp ``left_bigger`` flag)."""
        return self.TRUE_HASH if value else self.FALSE_HASH

    # -- diagnostics ---------------------------------------------------------

    def describe(self) -> str:
        return f"HashCombiners(bits={self.bits}, seed=0x{self.seed:x})"

    def __repr__(self) -> str:  # pragma: no cover
        return self.describe()


def default_combiners() -> HashCombiners:
    """The shared default 64-bit, fixed-seed combiner set."""
    return HashCombiners()
