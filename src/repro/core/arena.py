"""Arena-compiled corpora: post-order struct-of-arrays + an array-speed kernel.

The serial hashing paths walk a Python object graph: every node costs
attribute lookups, a tuple push/pop on an explicit stack, and dict-keyed
memo probes by ``id()``.  For large corpora that interpreter overhead --
not the O(n log n) map work the paper bounds -- dominates wall time.
This module *compiles* a corpus once into an :class:`ExprArena`:

* **Post-order struct-of-arrays.**  One flat index space; node ``i``'s
  children always sit at indices ``< i``.  Per node the arena stores an
  opcode (``op``), child indices (``left``/``right``), an interned
  name/literal id (``aux``), and the subtree's ``sizes``/``depths`` --
  six contiguous arrays instead of a tree of objects.

* **Flatten-time deduplication.**  Structurally identical subtrees
  collapse to one arena node while flattening (alpha-hash summaries are
  compositional, Section 3, so hashing each structural class once is
  sound).  Real corpora repeat small subtrees massively -- the 600k-node
  benchmark corpus compiles to ~41% unique nodes -- and every duplicate
  is work the kernel never does.

* **An iterative single-pass kernel.**  :func:`arena_hash` runs the
  paper's Section 5 algorithm over the arrays: integer-indexed memo
  lists instead of ``id()``-keyed dicts, no recursion, no per-node
  memo-record snapshots, and (at the default single-lane widths) the
  splitmix64 combiner chains inlined into the loop.  Hashes are
  **bit-identical** to :func:`repro.core.hashed.alpha_hash_all` -- the
  test wall checks this on adversarial corpora at several widths.

Arenas are also cheap to ship: pickling a handful of flat arrays is
iterative and O(bytes), so arbitrarily deep corpora cross a ``spawn``
process boundary that would overflow the C stack if the trees
themselves were pickled (see :mod:`repro.store.parallel`).
"""

from __future__ import annotations

import threading
from array import array
from typing import Iterable, Optional, Sequence

from repro.core.combiners import (
    _GOLDEN,
    _M0,
    _M1,
    _MASK64,
    HashCombiners,
    default_combiners,
)
from repro.core.kernel import combine_chain
from repro.core.position_tree import pt_here_hash
from repro.core.structure import slit_hash, svar_hash
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

try:  # NumPy is an optional extra (``repro[vec]``): the vectorized
    import numpy as _np  # kernel needs it, everything else falls back.
except ImportError:  # pragma: no cover - exercised via the no-numpy CI leg
    _np = None

#: True when the vectorized kernel is available in this interpreter.
HAVE_NUMPY = _np is not None

__all__ = [
    "ExprArena",
    "ArenaMemo",
    "arena_hash",
    "arena_hash_vec",
    "arena_hash_any",
    "flatten_corpus",
    "ARENA_MIN_NODES",
    "ARENA_ENGINES",
    "ENGINE_CHOICES",
    "HAVE_NUMPY",
    "engine_family",
    "engine_kernel",
    "resolve_kernel",
    "resolve_engine",
    "plan_corpus_engine",
    "OP_VAR",
    "OP_LIT",
    "OP_LAM",
    "OP_APP",
    "OP_LET",
]

OP_VAR, OP_LIT, OP_LAM, OP_APP, OP_LET = 0, 1, 2, 3, 4

#: Engine names that select the arena family.  ``"arena"`` lets the
#: kernel auto-pick (vectorized when NumPy is importable, scalar
#: otherwise); the suffixed forms force one kernel -- ``arena-vec``
#: errors without NumPy, ``arena-scalar`` exists mostly so benchmarks
#: and the differential wall can pin the fallback.
ARENA_ENGINES = ("arena", "arena-vec", "arena-scalar")

#: Every value accepted where an ``engine`` is requested (CLI, requests,
#: session config).  One tuple so the choice lists cannot drift.
ENGINE_CHOICES = ("auto", "tree") + ARENA_ENGINES


def engine_family(engine: str) -> str:
    """Collapse an engine name to its family: ``"arena"`` or ``"tree"``.

    Call sites that only care *which pipeline* runs (store gates, the
    pooled executor) compare against the family, so ``arena-vec`` and
    ``arena-scalar`` route exactly like ``arena``.
    """
    return "arena" if engine in ARENA_ENGINES else engine


def engine_kernel(engine: str) -> str:
    """The kernel request carried by an engine name.

    ``"auto"`` for the bare families (the dispatcher then prefers the
    vectorized kernel when NumPy is present), ``"vec"``/``"scalar"``
    for the pinned forms.
    """
    if engine == "arena-vec":
        return "vec"
    if engine == "arena-scalar":
        return "scalar"
    return "auto"


def resolve_kernel(kernel: str = "auto") -> str:
    """Normalise a kernel request to ``"vec"`` or ``"scalar"``.

    ``"auto"`` prefers the vectorized kernel whenever NumPy imported;
    forcing ``"vec"`` without NumPy is an error rather than a silent
    fallback (the caller asked for a specific performance envelope).
    """
    if kernel == "auto":
        return "vec" if HAVE_NUMPY else "scalar"
    if kernel == "vec":
        if not HAVE_NUMPY:
            raise ValueError(
                "kernel 'vec' (engine 'arena-vec') requires NumPy; "
                "install the repro[vec] extra or use 'arena-scalar'"
            )
        return "vec"
    if kernel == "scalar":
        return "scalar"
    raise ValueError(
        f"kernel must be 'auto', 'vec' or 'scalar', got {kernel!r}"
    )

#: Corpus size (total nodes) above which ``engine="auto"`` picks the
#: arena.  Below it the per-corpus compile overhead (building the arrays
#: and leaf tables) eats the per-node win; above it the kernel pulls
#: ahead quickly.  Chosen from the BENCH_PR4 sweep; override per call
#: with ``engine="arena"`` / ``engine="tree"``.  This is the **one**
#: auto-engine literal in the repository: the planner re-exports it as
#: :data:`repro.api.plan.ARENA_NODE_THRESHOLD` (the policy-level name),
#: and every batch entry point resolves ``"auto"`` against it through
#: :func:`resolve_engine` / :func:`plan_corpus_engine`.
ARENA_MIN_NODES = 25_000


def resolve_engine(
    engine: str, total_nodes: int, threshold: Optional[int] = None
) -> str:
    """Normalise an ``engine`` request to ``"arena"`` or ``"tree"``.

    ``threshold`` defaults to :data:`ARENA_MIN_NODES`; the planner
    passes its own (same value unless deliberately retuned) so policy
    stays swappable in exactly one place.
    """
    if engine == "auto":
        limit = ARENA_MIN_NODES if threshold is None else threshold
        return "arena" if total_nodes >= limit else "tree"
    if engine == "tree" or engine in ARENA_ENGINES:
        return engine
    raise ValueError(
        f"engine must be one of {', '.join(ENGINE_CHOICES)}, got {engine!r}"
    )


def plan_corpus_engine(engine: str, corpus: Sequence[Expr]) -> str:
    """The concrete engine for hashing/interning ``corpus``.

    The one shared ``auto`` decision point for the store- and
    parallel-layer batch entry points: total nodes are counted here
    (``Expr.size`` is O(1) per root) and compared against the single
    threshold constant, so no call site carries its own size loop or
    literal."""
    if engine == "auto":
        return resolve_engine(engine, sum(expr.size for expr in corpus))
    return resolve_engine(engine, 0)  # validates the name


class ExprArena:
    """A corpus compiled to post-order struct-of-arrays form.

    Node ``i`` is described by:

    ``op[i]``
        One of :data:`OP_VAR`, :data:`OP_LIT`, :data:`OP_LAM`,
        :data:`OP_APP`, :data:`OP_LET`.
    ``left[i]`` / ``right[i]``
        Child arena indices (always ``< i``); ``-1`` when absent.  Lam
        keeps its body in ``left``; Let keeps ``bound`` in ``left`` and
        ``body`` in ``right``.
    ``aux[i]``
        Interned id: a ``names`` index for Var occurrences and Lam/Let
        binders, a ``literals`` index for Lit, ``-1`` for App.
    ``sizes[i]`` / ``depths[i]``
        Node count and height of the subtree (the structure tag of
        Section 4.8 is ``sizes[i]``; ``depths`` also feeds the spawn
        pickling guard and lets binder-depth diagnostics stay O(1)).

    Structurally identical subtrees share one index, so the arena is a
    maximally-shared DAG over *syntactic* classes (finer than the
    store's alpha-classes: two alpha-equivalent-but-renamed subtrees
    keep distinct arena nodes and collapse later, at intern time).

    Instances grow append-only through :meth:`flatten` and may be reused
    across corpora; the structural intern index is rebuilt lazily after
    unpickling, so the wire form is just the flat arrays and leaf
    tables.
    """

    __slots__ = (
        "op",
        "left",
        "right",
        "aux",
        "sizes",
        "depths",
        "names",
        "literals",
        "_name_ids",
        "_lit_ids",
        "_struct",
    )

    def __init__(self) -> None:
        self.op = bytearray()
        self.left = array("q")
        self.right = array("q")
        self.aux = array("q")
        self.sizes = array("q")
        self.depths = array("q")
        self.names: list[str] = []
        self.literals: list = []
        self._name_ids: dict[str, int] = {}
        self._lit_ids: dict[tuple, int] = {}
        self._struct: Optional[dict] = {}

    # -- pickling (workers; see store/parallel.py) ---------------------------

    def __getstate__(self):
        # The structural index is derivable from the arrays; shipping it
        # would double the wire size for nothing.
        return (
            bytes(self.op),
            self.left,
            self.right,
            self.aux,
            self.sizes,
            self.depths,
            self.names,
            self.literals,
        )

    def __setstate__(self, state):
        op, self.left, self.right, self.aux, self.sizes, self.depths, names, lits = state
        self.op = bytearray(op)
        self.names = names
        self.literals = lits
        self._name_ids = {name: i for i, name in enumerate(names)}
        from repro.core.hashed import lit_cache_key

        self._lit_ids = {lit_cache_key(v): i for i, v in enumerate(lits)}
        self._struct = None  # rebuilt lazily if this arena keeps growing

    def _ensure_index(self) -> dict:
        """The structural intern index, rebuilt from the arrays if needed."""
        struct = self._struct
        if struct is None:
            struct = {}
            op, left, right, aux = self.op, self.left, self.right, self.aux
            for i in range(len(op)):
                opc = op[i]
                if opc == OP_VAR:
                    struct[aux[i] * 8] = i
                elif opc == OP_LIT:
                    struct[aux[i] * 8 + 1] = i
                elif opc == OP_LAM:
                    struct[(OP_LAM, aux[i], left[i])] = i
                elif opc == OP_APP:
                    struct[(OP_APP, left[i], right[i])] = i
                else:
                    struct[(OP_LET, aux[i], left[i], right[i])] = i
            self._struct = struct
        return struct

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        """Number of unique arena nodes."""
        return len(self.op)

    def stats(self) -> dict:
        """Shape accounting: unique nodes and leaf-table sizes."""
        return {
            "nodes": len(self.op),
            "names": len(self.names),
            "literals": len(self.literals),
            "bytes": (
                len(self.op)
                + sum(
                    arr.itemsize * len(arr)
                    for arr in (self.left, self.right, self.aux, self.sizes, self.depths)
                )
            ),
        }

    def max_depth(self, roots: Optional[Iterable[int]] = None) -> int:
        """Deepest subtree among ``roots`` (default: all nodes)."""
        depths = self.depths
        if roots is None:
            return max(depths) if depths else 0
        return max((depths[i] for i in roots), default=0)

    # -- compilation ---------------------------------------------------------

    def flatten(self, exprs: Iterable[Expr]) -> list[int]:
        """Compile ``exprs`` into the arena; return one root index each.

        Deduplicates three ways while walking: by object identity within
        the call (shared subtree objects are visited once), by
        structural identity against everything already in the arena, and
        by leaf-table interning of names and literal values.  The walk
        is iterative, so degenerate depth-50k chains compile fine.

        The stack holds bare nodes (no visited flags): a node whose
        children are not all interned yet re-pushes itself below them
        and is resolved on its second pop.  Columns are buffered in
        plain lists and flushed into the arrays once at the end (list
        appends are cheaper), and the structural index and leaf tables
        roll back on error -- a failed flatten (a foreign node kind)
        leaves the arena exactly as it was, safe to keep using.
        """
        struct = self._ensure_index()
        count0 = len(self.op)
        n_names0 = len(self.names)
        n_lits0 = len(self.literals)

        buffers: tuple[list[int], ...] = ([], [], [], [], [], [])
        roots: list[int] = []
        try:
            self._flatten_walk(exprs, roots, *buffers)
        except BaseException:
            # Roll back the shared tables: the buffered columns are
            # simply dropped, but the structural index and leaf tables
            # were written inline and would otherwise point at rows
            # that never get flushed.
            from repro.core.hashed import lit_cache_key

            for name in self.names[n_names0:]:
                del self._name_ids[name]
            del self.names[n_names0:]
            for value in self.literals[n_lits0:]:
                del self._lit_ids[lit_cache_key(value)]
            del self.literals[n_lits0:]
            self._struct = {
                key: idx for key, idx in struct.items() if idx < count0
            }
            raise

        op_b, left_b, right_b, aux_b, sizes_b, depths_b = buffers
        self.op.extend(op_b)
        self.left.extend(left_b)
        self.right.extend(right_b)
        self.aux.extend(aux_b)
        self.sizes.extend(sizes_b)
        self.depths.extend(depths_b)
        return roots

    def _flatten_walk(
        self, exprs, roots, op_b, left_b, right_b, aux_b, sizes_b, depths_b
    ) -> None:
        """The flatten loop proper, writing into the column buffers.

        Mutates the structural index and leaf tables inline;
        :meth:`flatten` owns the flush-or-rollback around it.
        """
        from repro.core.hashed import lit_cache_key

        struct = self._ensure_index()
        struct_get = struct.get
        name_ids, names = self._name_ids, self.names
        lit_ids, literals = self._lit_ids, self.literals
        idmemo: dict[int, int] = {}
        idmemo_get = idmemo.get
        count = len(self.op)

        for root in exprs:
            cached_root = idmemo_get(id(root))
            if cached_root is not None:
                roots.append(cached_root)
                continue
            stack: list[Expr] = [root]
            push = stack.append
            while stack:
                node = stack.pop()
                node_key = id(node)
                if node_key in idmemo:
                    continue
                cls = type(node)
                if cls is App:
                    fn = idmemo_get(id(node.fn))
                    arg = idmemo_get(id(node.arg))
                    if fn is None or arg is None:
                        push(node)
                        if arg is None:
                            push(node.arg)
                        if fn is None:
                            push(node.fn)
                        continue
                    key = (OP_APP, fn, arg)
                    idx = struct_get(key)
                    if idx is None:
                        struct[key] = idx = count
                        count += 1
                        op_b.append(OP_APP)
                        left_b.append(fn)
                        right_b.append(arg)
                        aux_b.append(-1)
                        sizes_b.append(node.size)
                        depths_b.append(node.depth)
                    idmemo[node_key] = idx
                elif cls is Var:
                    name = node.name
                    nid = name_ids.get(name)
                    if nid is None:
                        name_ids[name] = nid = len(names)
                        names.append(name)
                    key = nid * 8
                    idx = struct_get(key)
                    if idx is None:
                        struct[key] = idx = count
                        count += 1
                        op_b.append(OP_VAR)
                        left_b.append(-1)
                        right_b.append(-1)
                        aux_b.append(nid)
                        sizes_b.append(1)
                        depths_b.append(1)
                    idmemo[node_key] = idx
                elif cls is Lam:
                    body = idmemo_get(id(node.body))
                    if body is None:
                        push(node)
                        push(node.body)
                        continue
                    binder = node.binder
                    nid = name_ids.get(binder)
                    if nid is None:
                        name_ids[binder] = nid = len(names)
                        names.append(binder)
                    key = (OP_LAM, nid, body)
                    idx = struct_get(key)
                    if idx is None:
                        struct[key] = idx = count
                        count += 1
                        op_b.append(OP_LAM)
                        left_b.append(body)
                        right_b.append(-1)
                        aux_b.append(nid)
                        sizes_b.append(node.size)
                        depths_b.append(node.depth)
                    idmemo[node_key] = idx
                elif cls is Let:
                    bound = idmemo_get(id(node.bound))
                    body = idmemo_get(id(node.body))
                    if bound is None or body is None:
                        push(node)
                        if body is None:
                            push(node.body)
                        if bound is None:
                            push(node.bound)
                        continue
                    binder = node.binder
                    nid = name_ids.get(binder)
                    if nid is None:
                        name_ids[binder] = nid = len(names)
                        names.append(binder)
                    key = (OP_LET, nid, bound, body)
                    idx = struct_get(key)
                    if idx is None:
                        struct[key] = idx = count
                        count += 1
                        op_b.append(OP_LET)
                        left_b.append(bound)
                        right_b.append(body)
                        aux_b.append(nid)
                        sizes_b.append(node.size)
                        depths_b.append(node.depth)
                    idmemo[node_key] = idx
                elif cls is Lit:
                    value = node.value
                    lkey = lit_cache_key(value)
                    lid = lit_ids.get(lkey)
                    if lid is None:
                        lit_ids[lkey] = lid = len(literals)
                        literals.append(value)
                    key = lid * 8 + 1
                    idx = struct_get(key)
                    if idx is None:
                        struct[key] = idx = count
                        count += 1
                        op_b.append(OP_LIT)
                        left_b.append(-1)
                        right_b.append(-1)
                        aux_b.append(lid)
                        sizes_b.append(1)
                        depths_b.append(1)
                    idmemo[node_key] = idx
                else:
                    raise TypeError(
                        f"cannot flatten non-expression node of type "
                        f"{type(node).__name__}"
                    )
            roots.append(idmemo[id(root)])

    # -- decompilation -------------------------------------------------------

    def closure(self, roots: Iterable[int]) -> bytearray:
        """Byte mask of every arena node reachable from ``roots``."""
        mask = bytearray(len(self.op))
        left, right = self.left, self.right
        stack = list(roots)
        while stack:
            i = stack.pop()
            if mask[i]:
                continue
            mask[i] = 1
            child = left[i]
            if child >= 0 and not mask[child]:
                stack.append(child)
            child = right[i]
            if child >= 0 and not mask[child]:
                stack.append(child)
        return mask

    def rebuild(self, index: int) -> Expr:
        """Reconstruct the expression rooted at ``index``.

        Shared arena nodes come back as shared :class:`Expr` objects (a
        maximally-shared tree); alpha-hashes are preserved by
        construction -- the round-trip test wall pins this.
        """
        mask = self.closure((index,))
        op, left, right, aux = self.op, self.left, self.right, self.aux
        names, literals = self.names, self.literals
        built: dict[int, Expr] = {}
        for i in range(index + 1):
            if not mask[i]:
                continue
            opc = op[i]
            if opc == OP_VAR:
                built[i] = Var(names[aux[i]])
            elif opc == OP_LIT:
                built[i] = Lit(literals[aux[i]])
            elif opc == OP_LAM:
                built[i] = Lam(names[aux[i]], built[left[i]])
            elif opc == OP_APP:
                built[i] = App(built[left[i]], built[right[i]])
            else:
                built[i] = Let(names[aux[i]], built[left[i]], built[right[i]])
        return built[index]


def flatten_corpus(
    exprs: Iterable[Expr], arena: Optional[ExprArena] = None
) -> tuple[ExprArena, list[int]]:
    """Compile a corpus: ``(arena, one root index per input)``."""
    if arena is None:
        arena = ExprArena()
    return arena, arena.flatten(exprs)


def arena_hash(
    arena: ExprArena,
    combiners: Optional[HashCombiners] = None,
    only: Optional[Sequence[int]] = None,
    memo: Optional["ArenaMemo"] = None,
) -> list[Optional[int]]:
    """Alpha-hash every arena node; ``tops[i]`` is node ``i``'s hash.

    The single post-order pass of Section 5 run at array speed: children
    sit at lower indices, so one ``for i in range(n)`` loop replaces the
    scheduling stack, and the per-node memo is three integer-indexed
    lists.  Free-variable maps are dicts keyed by interned name id; each
    map is consumed destructively by its *last* referencing parent and
    copied for earlier ones (``uses`` counts references), which keeps
    the Lemma 6.1 merge bound while letting deduplicated nodes feed any
    number of parents.

    ``only`` restricts work to the downward closure of the given roots
    (other slots come back ``None``) -- this is the unit the parallel
    engine fans out.  ``memo``, an :class:`ArenaMemo`, seeds the pass
    with summaries other chunks already computed and publishes this
    pass's results back, so thread-mode fan-out stops re-walking shared
    subtrees (seeded maps are never stolen -- every reference copies).
    Bit-identical to :func:`~repro.core.hashed.alpha_hash_all` at every
    width; the single-lane fast path below inlines the splitmix64
    chains, the multi-lane widths go through the same recipes via
    :func:`~repro.core.kernel.combine_chain`.
    """
    if combiners is None:
        combiners = default_combiners()
    n = len(arena.op)

    # Plain lists index faster than array('q') (no per-access int
    # materialisation); the one-shot conversion is C-speed, cheap next
    # to the kernel even when ``only`` restricts the Python-speed work.
    # ``tolist`` also accepts the numpy / memoryview columns a
    # shared-memory attached arena carries (see repro.core.arena_shm).
    op = bytes(arena.op)
    left, right = arena.left.tolist(), arena.right.tolist()
    aux, sizes = arena.aux.tolist(), arena.sizes.tolist()

    names, literals = arena.names, arena.literals
    done = memo.snapshot_done() if memo is not None else None
    seeded: list[int] = []
    if only is None and done is None:
        indices: Sequence[int] = range(n)
        # Leaf tables: one hash per interned name / literal, not per node.
        name_h = [combiners.hash_name(name) for name in names]
        lit_s = [slit_hash(combiners, value) for value in literals]
    else:
        if only is not None:
            mask = arena.closure(only)
        else:
            mask = b"\x01" * n
        if done is None:
            indices = [i for i in range(n) if mask[i]]
        else:
            indices = [i for i in range(n) if mask[i] and not done[i]]
            seeded = [i for i in range(n) if mask[i] and done[i]]
        # The leaf tables are shared arena-wide; a restricted pass (one
        # parallel chunk of many) hashes only the entries its closure
        # touches, so per-chunk setup scales with the chunk.
        name_used = bytearray(len(names))
        lit_used = bytearray(len(literals))
        for i in indices:
            opc = op[i]
            if opc == OP_LIT:
                lit_used[aux[i]] = 1
            elif opc != OP_APP:
                name_used[aux[i]] = 1
        # Seeded free-variable maps are keyed by name id too: merges
        # above a seeded subtree dereference those entry chains.
        for i in seeded:
            vm = memo.vms[i]
            if vm:
                for nid in vm:
                    name_used[nid] = 1
        # None marks slots the closure never dereferences (map keys and
        # binder removals only involve names of in-closure Vars); the
        # derived entry_pre/var_entry tables skip them too.
        name_h = [
            combiners.hash_name(name) if used else None
            for name, used in zip(names, name_used)
        ]
        lit_s = [
            slit_hash(combiners, value) if used else None
            for value, used in zip(literals, lit_used)
        ]

    HERE = pt_here_hash(combiners)
    SVAR = svar_hash(combiners)
    NONE = combiners.NONE_HASH
    TRUE = combiners.TRUE_HASH
    FALSE = combiners.FALSE_HASH
    entry2 = combine_chain(combiners, "entry", 2)
    var_entry = [None if h is None else entry2(h, HERE) for h in name_h]

    # Integer-indexed memo arrays: structure hash, map hash, map, top.
    shs: list = [0] * n
    vmhs: list = [0] * n
    vms: list = [None] * n
    tops: list = [None] * n

    for i in seeded:
        shs[i] = memo.shs[i]
        vmhs[i] = memo.vmhs[i]
        vms[i] = memo.vms[i]
        tops[i] = memo.tops[i]

    # Reference counts: how many parents will consume each node's map.
    # (Children of in-closure nodes are in the closure by construction.)
    uses = [0] * n
    for i in indices:
        child = left[i]
        if child >= 0:
            uses[child] += 1
        child = right[i]
        if child >= 0:
            uses[child] += 1
    if memo is not None:
        # One phantom reference per node keeps every map alive (and, for
        # seeded nodes, unstolen): the published dicts are shared across
        # threads and must never be mutated, and the fresh ones survive
        # the pass so merge() below can publish them.
        for i in indices:
            uses[i] += 1
        for i in seeded:
            uses[i] += 1

    if combiners._lanes == 1:
        _arena_hash_lane1(
            combiners, indices, op, left, right, aux, sizes,
            name_h, var_entry, lit_s, HERE, SVAR, NONE, TRUE, FALSE,
            shs, vmhs, vms, tops, uses,
        )
    else:
        _arena_hash_generic(
            combiners, indices, op, left, right, aux, sizes,
            name_h, var_entry, lit_s, HERE, SVAR, NONE, TRUE, FALSE,
            shs, vmhs, vms, tops, uses,
        )

    if memo is not None:
        memo.merge(
            (i, tops[i], shs[i], vmhs[i], vms[i]) for i in indices
        )
    return tops


def _arena_hash_lane1(
    combiners, indices, op, left, right, aux, sizes,
    name_h, var_entry, lit_s, HERE, SVAR, NONE, TRUE, FALSE,
    shs, vmhs, vms, tops, uses,
):
    """Single-lane (bits <= 64) kernel with the combiner chains inlined.

    Every ``x = ...; h = x ^ (x >> 31)`` block below is one absorb step
    of :meth:`HashCombiners.combine`'s single-lane path; a chain masks
    once at the end, exactly like ``combine`` does.  Two extra tricks,
    both exact (they cache *chain states*, never outputs):

    * **Prefix caches.**  A chain's first absorbs often see a tiny value
      space -- ``sapp``/``slet``/``pt_join`` start with the structure
      tag (subtree sizes repeat massively across a corpus), ``slam``
      with the size, ``entry`` with one of a handful of name hashes --
      so the partially-absorbed state is memoised and the chain resumes
      from it.
    * **List-backed arrays.**  The ``array``/``bytearray`` columns are
      converted to plain lists once per pass: indexing a list returns a
      cached object where ``array('q')`` materialises a fresh int.

    Keep this in sync with ``_arena_hash_generic`` -- the differential
    wall runs both.
    """
    hmask = combiners.mask
    salts = combiners._salts
    S_ENTRY = salts["entry"][0]
    S_JOIN = salts["pt_join"][0]
    S_TOP = salts["top"][0]
    S_LAM = salts["slam"][0]
    S_APP = salts["sapp"][0]
    S_LET = salts["slet"][0]
    G, M64, M0, M1 = _GOLDEN, _MASK64, _M0, _M1

    # Per-name entry-chain states: entry(name, pos) resumes after the
    # name absorb, halving the per-entry work in merges and removals.
    # (None slots are names outside a restricted pass's closure.)
    entry_pre = []
    for nh in name_h:
        if nh is None:
            entry_pre.append(None)
            continue
        x = ((S_ENTRY ^ nh) + G) & M64
        x = ((x ^ (x >> 30)) * M0) & M64
        x = ((x ^ (x >> 27)) * M1) & M64
        entry_pre.append(x ^ (x >> 31))

    app_pre = {}  # (size << 1) | left_bigger -> state after size, flag
    lam_pre = {}  # size -> state after size
    let_pre = {}  # size -> state after size
    join_pre = {}  # tag -> state after tag

    for i in indices:
        opc = op[i]
        if opc == OP_APP:
            fn, arg = left[i], right[i]
            vm_fn, vm_arg = vms[fn], vms[arg]
            left_bigger = len(vm_fn) >= len(vm_arg)
            if left_bigger:
                big, small = fn, arg
            else:
                big, small = arg, fn
            # Take the big map for writing: steal on last use, copy else.
            ub = uses[big]
            if ub == 1:
                bvm = vms[big]
                vms[big] = None
            else:
                bvm = dict(vms[big])
            uses[big] = ub - 1
            bh = vmhs[big]
            svm = vms[small]
            tag = sizes[i]
            if svm:
                jp = join_pre.get(tag)
                if jp is None:
                    x = ((S_JOIN ^ tag) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    join_pre[tag] = jp = x ^ (x >> 31)
                bvm_get = bvm.get
                for nid, spos in svm.items():
                    old = bvm_get(nid)
                    # pt_join(tag, maybe(old), spos), resumed after tag
                    x = ((jp ^ (NONE if old is None else old)) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    h = x ^ (x >> 31)
                    x = ((h ^ spos) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    new = (x ^ (x >> 31)) & hmask
                    ep = entry_pre[nid]
                    if old is not None:
                        # XOR out entry(name, old)
                        x = ((ep ^ old) + G) & M64
                        x = ((x ^ (x >> 30)) * M0) & M64
                        x = ((x ^ (x >> 27)) * M1) & M64
                        bh ^= (x ^ (x >> 31)) & hmask
                    bvm[nid] = new
                    # XOR in entry(name, new)
                    x = ((ep ^ new) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    bh ^= (x ^ (x >> 31)) & hmask
            us = uses[small] - 1
            uses[small] = us
            if us == 0:
                vms[small] = None
            # sapp(size, flag, s_fn, s_arg), resumed after size + flag
            key = (tag << 1) | left_bigger
            h = app_pre.get(key)
            if h is None:
                x = ((S_APP ^ tag) + G) & M64
                x = ((x ^ (x >> 30)) * M0) & M64
                x = ((x ^ (x >> 27)) * M1) & M64
                h = x ^ (x >> 31)
                x = ((h ^ (TRUE if left_bigger else FALSE)) + G) & M64
                x = ((x ^ (x >> 30)) * M0) & M64
                x = ((x ^ (x >> 27)) * M1) & M64
                h = x ^ (x >> 31)
                app_pre[key] = h
            x = ((h ^ shs[fn]) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            h = x ^ (x >> 31)
            x = ((h ^ shs[arg]) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            s = (x ^ (x >> 31)) & hmask
            vm, vh = bvm, bh
        elif opc == OP_VAR:
            nid = aux[i]
            s = SVAR
            vm = {nid: HERE}
            vh = var_entry[nid]
        elif opc == OP_LAM:
            body = left[i]
            ub = uses[body]
            if ub == 1:
                vm = vms[body]
                vms[body] = None
            else:
                vm = dict(vms[body])
            uses[body] = ub - 1
            vh = vmhs[body]
            pos = vm.pop(aux[i], None)
            if pos is not None:
                # XOR out entry(binder, pos)
                x = ((entry_pre[aux[i]] ^ pos) + G) & M64
                x = ((x ^ (x >> 30)) * M0) & M64
                x = ((x ^ (x >> 27)) * M1) & M64
                vh ^= (x ^ (x >> 31)) & hmask
            # slam(size, maybe(pos), s_body), resumed after size
            tag = sizes[i]
            h = lam_pre.get(tag)
            if h is None:
                x = ((S_LAM ^ tag) + G) & M64
                x = ((x ^ (x >> 30)) * M0) & M64
                x = ((x ^ (x >> 27)) * M1) & M64
                lam_pre[tag] = h = x ^ (x >> 31)
            x = ((h ^ (NONE if pos is None else pos)) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            h = x ^ (x >> 31)
            x = ((h ^ shs[body]) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            s = (x ^ (x >> 31)) & hmask
        elif opc == OP_LIT:
            s = lit_s[aux[i]]
            vm = {}
            vh = 0
        else:  # OP_LET
            bound, body = left[i], right[i]
            # The binder scopes over the body only: remove it from the
            # body map first, then merge (matching the tree kernel).
            ub = uses[body]
            if ub == 1:
                vm_body = vms[body]
                vms[body] = None
            else:
                vm_body = dict(vms[body])
            uses[body] = ub - 1
            bh_body = vmhs[body]
            pos = vm_body.pop(aux[i], None)
            if pos is not None:
                x = ((entry_pre[aux[i]] ^ pos) + G) & M64
                x = ((x ^ (x >> 30)) * M0) & M64
                x = ((x ^ (x >> 27)) * M1) & M64
                bh_body ^= (x ^ (x >> 31)) & hmask
            vm_bound = vms[bound]
            left_bigger = len(vm_bound) >= len(vm_body)
            tag = sizes[i]
            if left_bigger:
                # bound is big: take it for writing, read the body map.
                ub = uses[bound]
                if ub == 1:
                    bvm = vms[bound]
                    vms[bound] = None
                else:
                    bvm = dict(vms[bound])
                uses[bound] = ub - 1
                bh = vmhs[bound]
                svm = vm_body
                small_slot = -1
            else:
                # body (already owned) is big; bound is read-only.
                bvm, bh = vm_body, bh_body
                svm = vm_bound
                small_slot = bound
            if svm:
                jp = join_pre.get(tag)
                if jp is None:
                    x = ((S_JOIN ^ tag) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    join_pre[tag] = jp = x ^ (x >> 31)
                bvm_get = bvm.get
                for nid, spos in svm.items():
                    old = bvm_get(nid)
                    x = ((jp ^ (NONE if old is None else old)) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    h = x ^ (x >> 31)
                    x = ((h ^ spos) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    new = (x ^ (x >> 31)) & hmask
                    ep = entry_pre[nid]
                    if old is not None:
                        x = ((ep ^ old) + G) & M64
                        x = ((x ^ (x >> 30)) * M0) & M64
                        x = ((x ^ (x >> 27)) * M1) & M64
                        bh ^= (x ^ (x >> 31)) & hmask
                    bvm[nid] = new
                    x = ((ep ^ new) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    bh ^= (x ^ (x >> 31)) & hmask
            if small_slot >= 0:
                us = uses[small_slot] - 1
                uses[small_slot] = us
                if us == 0:
                    vms[small_slot] = None
            # slet(size, maybe(pos), flag, s_bound, s_body), resumed
            h = let_pre.get(tag)
            if h is None:
                x = ((S_LET ^ tag) + G) & M64
                x = ((x ^ (x >> 30)) * M0) & M64
                x = ((x ^ (x >> 27)) * M1) & M64
                let_pre[tag] = h = x ^ (x >> 31)
            x = ((h ^ (NONE if pos is None else pos)) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            h = x ^ (x >> 31)
            x = ((h ^ (TRUE if left_bigger else FALSE)) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            h = x ^ (x >> 31)
            x = ((h ^ shs[bound]) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            h = x ^ (x >> 31)
            x = ((h ^ shs[body]) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            s = (x ^ (x >> 31)) & hmask
            vm, vh = bvm, bh

        shs[i] = s
        vmhs[i] = vh
        vms[i] = vm
        # top(s, vh)
        x = ((S_TOP ^ s) + G) & M64
        x = ((x ^ (x >> 30)) * M0) & M64
        x = ((x ^ (x >> 27)) * M1) & M64
        h = x ^ (x >> 31)
        x = ((h ^ vh) + G) & M64
        x = ((x ^ (x >> 30)) * M0) & M64
        x = ((x ^ (x >> 27)) * M1) & M64
        tops[i] = (x ^ (x >> 31)) & hmask


def _arena_hash_generic(
    combiners, indices, op, left, right, aux, sizes,
    name_h, var_entry, lit_s, HERE, SVAR, NONE, TRUE, FALSE,
    shs, vmhs, vms, tops, uses,
):
    """Any-width reference kernel: same pass, recipes via combine_chain."""
    entry2 = combine_chain(combiners, "entry", 2)
    join3 = combine_chain(combiners, "pt_join", 3)
    top2 = combine_chain(combiners, "top", 2)
    lam3 = combine_chain(combiners, "slam", 3)
    app4 = combine_chain(combiners, "sapp", 4)
    let5 = combine_chain(combiners, "slet", 5)

    def take_for_write(idx):
        ub = uses[idx]
        if ub == 1:
            owned = vms[idx]
            vms[idx] = None
        else:
            owned = dict(vms[idx])
        uses[idx] = ub - 1
        return owned, vmhs[idx]

    def release(idx):
        us = uses[idx] - 1
        uses[idx] = us
        if us == 0:
            vms[idx] = None

    def merge(bvm, bh, svm, tag):
        for nid, spos in svm.items():
            old = bvm.get(nid)
            new = join3(tag, NONE if old is None else old, spos)
            nh = name_h[nid]
            if old is not None:
                bh ^= entry2(nh, old)
            bvm[nid] = new
            bh ^= entry2(nh, new)
        return bvm, bh

    for i in indices:
        opc = op[i]
        if opc == OP_VAR:
            nid = aux[i]
            s, vm, vh = SVAR, {nid: HERE}, var_entry[nid]
        elif opc == OP_LIT:
            s, vm, vh = lit_s[aux[i]], {}, 0
        elif opc == OP_LAM:
            body = left[i]
            vm, vh = take_for_write(body)
            pos = vm.pop(aux[i], None)
            if pos is not None:
                vh ^= entry2(name_h[aux[i]], pos)
            s = lam3(sizes[i], NONE if pos is None else pos, shs[body])
        elif opc == OP_APP:
            fn, arg = left[i], right[i]
            left_bigger = len(vms[fn]) >= len(vms[arg])
            big, small = (fn, arg) if left_bigger else (arg, fn)
            bvm, bh = take_for_write(big)
            vm, vh = merge(bvm, bh, vms[small], sizes[i])
            release(small)
            s = app4(
                sizes[i], TRUE if left_bigger else FALSE, shs[fn], shs[arg]
            )
        else:  # OP_LET
            bound, body = left[i], right[i]
            vm_body, bh_body = take_for_write(body)
            pos = vm_body.pop(aux[i], None)
            if pos is not None:
                bh_body ^= entry2(name_h[aux[i]], pos)
            left_bigger = len(vms[bound]) >= len(vm_body)
            if left_bigger:
                bvm, bh = take_for_write(bound)
                vm, vh = merge(bvm, bh, vm_body, sizes[i])
            else:
                vm, vh = merge(vm_body, bh_body, vms[bound], sizes[i])
                release(bound)
            s = let5(
                sizes[i],
                NONE if pos is None else pos,
                TRUE if left_bigger else FALSE,
                shs[bound],
                shs[body],
            )

        shs[i], vmhs[i], vms[i] = s, vh, vm
        tops[i] = top2(s, vh)


class ArenaMemo:
    """Cross-chunk memo for one arena batch: integer-indexed, thread-safe.

    Thread-mode fan-out splits an arena's roots into chunks, but the
    chunks' closures overlap heavily (flatten-dedup is exactly what
    makes them overlap).  One ``ArenaMemo``, shared by every chunk of a
    batch, lets a chunk (a) skip nodes another chunk already summarised
    and (b) publish its own summaries at the end of its pass -- the
    "merge at batch boundaries" discipline: no per-node locking, one
    lock acquisition per chunk for the snapshot and one for the merge.

    Published entries are immutable by contract: ``done[i]`` is set only
    after ``i``'s summary is written, under the lock, and readers seed
    kernels with the *same* dict objects, which the kernels then never
    mutate (they copy on write -- see the phantom reference counts in
    :func:`arena_hash` / the append-only pool in :func:`arena_hash_vec`).
    """

    __slots__ = ("lock", "done", "tops", "shs", "vmhs", "vms")

    def __init__(self, n: int):
        self.lock = threading.Lock()
        self.done = bytearray(n)
        self.tops: list = [None] * n
        self.shs: list = [0] * n
        self.vmhs: list = [0] * n
        self.vms: list = [None] * n

    def snapshot_done(self) -> bytes:
        """A point-in-time copy of the done mask (safe to read lock-free)."""
        with self.lock:
            return bytes(self.done)

    def merge(self, items) -> int:
        """Publish ``(index, top, s_hash, vm_hash, vm_dict)`` summaries.

        First writer wins per index (the summaries are deterministic, so
        losers are simply duplicate work).  Returns how many entries
        were newly published.
        """
        fresh = 0
        with self.lock:
            done = self.done
            for i, top, sh, vh, vm in items:
                if done[i]:
                    continue
                self.tops[i] = top
                self.shs[i] = sh
                self.vmhs[i] = vh
                self.vms[i] = vm if vm is not None else {}
                done[i] = 1
                fresh += 1
        return fresh


def arena_hash_any(
    arena: ExprArena,
    combiners: Optional[HashCombiners] = None,
    only: Optional[Sequence[int]] = None,
    kernel: str = "auto",
    memo: Optional[ArenaMemo] = None,
) -> list[Optional[int]]:
    """Run the arena kernel named by ``kernel`` (``auto``/``vec``/``scalar``)."""
    if resolve_kernel(kernel) == "vec":
        return arena_hash_vec(arena, combiners, only=only, memo=memo)
    return arena_hash(arena, combiners, only=only, memo=memo)


def arena_hash_vec(
    arena: ExprArena,
    combiners: Optional[HashCombiners] = None,
    only: Optional[Sequence[int]] = None,
    memo: Optional[ArenaMemo] = None,
) -> list[Optional[int]]:
    """Vectorized arena kernel: the same pass, level-by-level in NumPy.

    ``depths`` orders the arena into levels (a node's children are
    strictly shallower), so every splitmix64 combiner chain of one
    level runs as a handful of ``uint64`` array operations instead of
    per-node Python bytecode.  The free-variable maps live in one
    append-only columnar pool -- per node a ``(start, len)`` slice of
    ``(name_id, pos_lo, pos_hi)`` rows sorted by name id -- so binder
    removal is a batched ``searchsorted``, the small-into-big merge of
    Lemma 6.1 is one stable sort + last-wins dedup per level, and the
    XOR'd map-hash deltas fold with ``bitwise_xor.reduceat``.  Maps are
    never mutated in place, which is also what makes memo seeding safe.

    Bit-identical to :func:`arena_hash` (and hence to the tree paths)
    at every width: values are carried as ``(lo, hi)`` 64-bit lane
    pairs, absorbed as ``lo ^ hi`` exactly like
    :meth:`~repro.core.combiners.HashCombiners.combine`.

    Trade-off: the pool is append-only, so peak memory is the total map
    traffic (the O(n log n) merge bound) rather than the scalar
    kernel's live-map footprint.  Same signature and result contract as
    :func:`arena_hash`; requires NumPy.
    """
    if _np is None:  # pragma: no cover - vec callers gate on HAVE_NUMPY
        raise RuntimeError(
            "arena_hash_vec requires NumPy; install the repro[vec] extra "
            "or call arena_hash (the scalar kernel)"
        )
    np = _np
    if combiners is None:
        combiners = default_combiners()
    n = len(arena.op)
    out: list = [None] * n
    if n == 0:
        return out

    lanes = combiners._lanes
    two = lanes == 2
    U = np.uint64
    M64 = _MASK64
    G, M0, M1 = U(_GOLDEN), U(_M0), U(_M1)
    C30, C27, C31 = U(30), U(27), U(31)
    mask_lo = U(combiners.mask & M64)
    mask_hi = U((combiners.mask >> 64) & M64)

    def mix(h, v):
        # One splitmix64 absorb step, broadcasting over arrays.
        x = (h ^ v) + G
        x = (x ^ (x >> C30)) * M0
        x = (x ^ (x >> C27)) * M1
        return x ^ (x >> C31)

    salts = combiners._salts

    def chain(salt_name, vals):
        # vals: [(lo, hi), ...] -- hi is None for pure-64-bit values.
        # Mirrors HashCombiners.combine: absorb lo ^ hi per lane, then
        # truncate; for two lanes, lane 0 is the high word of the output.
        lane_salts = salts[salt_name]
        if not two:
            h = U(lane_salts[0])
            for lo, hi in vals:
                h = mix(h, lo if hi is None else lo ^ hi)
            return h & mask_lo, None
        h0, h1 = U(lane_salts[0]), U(lane_salts[1])
        for lo, hi in vals:
            v = lo if hi is None else lo ^ hi
            h0 = mix(h0, v)
            h1 = mix(h1, v)
        return h1, h0 & mask_hi

    def col_i64(col):
        if isinstance(col, np.ndarray):
            return col
        return np.frombuffer(col, dtype=np.int64)

    opc = (
        arena.op
        if isinstance(arena.op, np.ndarray)
        else np.frombuffer(arena.op, dtype=np.uint8)
    )
    left = col_i64(arena.left)
    right = col_i64(arena.right)
    aux = col_i64(arena.aux)
    sizes = col_i64(arena.sizes)
    depths = col_i64(arena.depths)
    names, literals = arena.names, arena.literals
    n_names = len(names)

    # -- indices: full pass, closure-restricted, and/or memo-filtered --------
    done = memo.snapshot_done() if memo is not None else None
    if only is None and done is None:
        idx = np.arange(n, dtype=np.int64)
        restricted = False
        seeded_idx = ()
    else:
        restricted = True
        if only is not None:
            mask = np.frombuffer(arena.closure(only), dtype=np.uint8) != 0
        else:
            mask = np.ones(n, dtype=bool)
        if done is not None:
            done_np = np.frombuffer(done, dtype=np.uint8) != 0
            seeded_idx = np.nonzero(mask & done_np)[0].tolist()
            idx = np.nonzero(mask & ~done_np)[0]
        else:
            seeded_idx = ()
            idx = np.nonzero(mask)[0]

    # -- leaf tables (Python-speed, but per unique name/literal only) --------
    name_used = np.zeros(n_names, dtype=bool)
    lit_used = np.zeros(len(literals), dtype=bool)
    if restricted:
        op_i = opc[idx]
        aux_i = aux[idx]
        name_used[aux_i[(op_i != OP_APP) & (op_i != OP_LIT)]] = True
        lit_used[aux_i[op_i == OP_LIT]] = True
        for i in seeded_idx:
            vm = memo.vms[i]
            if vm:
                name_used[list(vm)] = True
    else:
        name_used[:] = True
        lit_used[:] = True

    nh_lo = np.zeros(n_names, dtype=U)
    nh_hi = np.zeros(n_names, dtype=U) if two else None
    for j in np.nonzero(name_used)[0].tolist():
        h = combiners.hash_name(names[j])
        nh_lo[j] = h & M64
        if two:
            nh_hi[j] = (h >> 64) & M64
    ls_lo = np.zeros(len(literals), dtype=U)
    ls_hi = np.zeros(len(literals), dtype=U) if two else None
    for j in np.nonzero(lit_used)[0].tolist():
        h = slit_hash(combiners, literals[j])
        ls_lo[j] = h & M64
        if two:
            ls_hi[j] = (h >> 64) & M64

    def split(value):
        return U(value & M64), (U((value >> 64) & M64) if two else None)

    here_lo, here_hi = split(pt_here_hash(combiners))
    svar_lo, svar_hi = split(svar_hash(combiners))
    none_lo, none_hi = split(combiners.NONE_HASH)
    true_lo, true_hi = split(combiners.TRUE_HASH)
    false_lo, false_hi = split(combiners.FALSE_HASH)
    # var_entry[nid] = entry(name, PTHere): unused slots hold garbage
    # (their nh is 0) and are never read.
    ve_lo, ve_hi = chain("entry", [(nh_lo, nh_hi), (here_lo, here_hi)])

    # -- per-node state columns ----------------------------------------------
    shs_lo = np.zeros(n, dtype=U)
    shs_hi = np.zeros(n, dtype=U) if two else None
    vmh_lo = np.zeros(n, dtype=U)
    vmh_hi = np.zeros(n, dtype=U) if two else None
    map_start = np.zeros(n, dtype=np.int64)
    map_len = np.zeros(n, dtype=np.int64)

    class Pool:
        # Append-only columnar map pool: (name id, pos lanes) rows.
        __slots__ = ("nid", "lo", "hi", "size")

        def __init__(self, cap):
            self.nid = np.empty(cap, dtype=np.int64)
            self.lo = np.empty(cap, dtype=U)
            self.hi = np.empty(cap, dtype=U) if two else None
            self.size = 0

        def append(self, nid, lo, hi):
            m = len(nid)
            need = self.size + m
            cap = len(self.nid)
            if need > cap:
                cap = max(cap * 2, need)
                for attr in ("nid", "lo", "hi"):
                    arr = getattr(self, attr)
                    if arr is None:
                        continue
                    grown = np.empty(cap, dtype=arr.dtype)
                    grown[: self.size] = arr[: self.size]
                    setattr(self, attr, grown)
            s = self.size
            self.nid[s:need] = nid
            self.lo[s:need] = lo
            if two:
                self.hi[s:need] = hi
            self.size = need
            return s

    pool = Pool(max(1024, 2 * len(idx)))

    # -- memo seeding --------------------------------------------------------
    for i in seeded_idx:
        out[i] = memo.tops[i]
        sh = memo.shs[i]
        vh = memo.vmhs[i]
        shs_lo[i] = sh & M64
        vmh_lo[i] = vh & M64
        if two:
            shs_hi[i] = (sh >> 64) & M64
            vmh_hi[i] = (vh >> 64) & M64
        vm = memo.vms[i]
        if vm:
            entries = sorted(vm.items())
            nid = np.array([e[0] for e in entries], dtype=np.int64)
            plo = np.array([e[1] & M64 for e in entries], dtype=U)
            phi = (
                np.array([(e[1] >> 64) & M64 for e in entries], dtype=U)
                if two
                else None
            )
            map_start[i] = pool.append(nid, plo, phi)
            map_len[i] = len(entries)

    # -- batched map machinery -----------------------------------------------
    K = n_names + 1  # combined (segment, name-id) sort key stride

    def gather(starts, lens):
        """Concatenate pool slices: per-entry segment ids + columns.

        Returns ``(seg, nid, lo, hi, offs)`` where ``offs[j]`` is the
        flat offset of segment ``j`` (= cumsum of lens, exclusive).
        """
        total = int(lens.sum())
        offs = np.cumsum(lens) - lens
        seg = np.repeat(np.arange(len(lens), dtype=np.int64), lens)
        pos = (
            np.arange(total, dtype=np.int64) - offs[seg] + starts[seg]
            if total
            else np.empty(0, dtype=np.int64)
        )
        return (
            seg,
            pool.nid[pos],
            pool.lo[pos],
            pool.hi[pos] if two else None,
            offs,
        )

    def remove_binder(nodes, binders):
        """Drop ``binders`` from ``nodes``' maps (batched Lam/Let step).

        Returns ``(starts, lens, vlo, vhi, found, pos_lo, pos_hi)`` --
        the adjusted map slices and map hashes plus the removed
        positions -- without touching ``nodes``' own published state.
        """
        starts = map_start[nodes]
        lens = map_len[nodes]
        vlo = vmh_lo[nodes]
        vhi = vmh_hi[nodes] if two else None
        k = len(nodes)
        found = np.zeros(k, dtype=bool)
        pos_lo = np.zeros(k, dtype=U)
        pos_hi = np.zeros(k, dtype=U) if two else None
        total = int(lens.sum())
        if total:
            seg, gn, glo, ghi, _offs = gather(starts, lens)
            comb = seg * K + gn
            q = np.arange(k, dtype=np.int64) * K + binders
            loc = np.searchsorted(comb, q)
            loc_c = np.minimum(loc, total - 1)
            found = (loc < total) & (comb[loc_c] == q)
            if found.any():
                fidx = loc[found]
                pos_lo[found] = glo[fidx]
                if two:
                    pos_hi[found] = ghi[fidx]
                bnd_f = binders[found]
                e_lo, e_hi = chain(
                    "entry",
                    [
                        (nh_lo[bnd_f], nh_hi[bnd_f] if two else None),
                        (
                            pos_lo[found],
                            pos_hi[found] if two else None,
                        ),
                    ],
                )
                vlo[found] ^= e_lo
                if two:
                    vhi[found] ^= e_hi
                keep = np.ones(total, dtype=bool)
                keep[fidx] = False
                lens = lens - found.astype(np.int64)
                start0 = pool.append(
                    gn[keep], glo[keep], ghi[keep] if two else None
                )
                starts = start0 + (np.cumsum(lens) - lens)
        return starts, lens, vlo, vhi, found, pos_lo, pos_hi

    def merge_maps(b_start, b_len, b_vlo, b_vhi, s_start, s_len, tags):
        """Merge small maps into big ones (Lemma 6.1, batched).

        All arguments are per-node arrays; returns the merged
        ``(starts, lens, vlo, vhi)``.  Nodes whose small map is empty
        alias the big slice unchanged (no copy).
        """
        r_start = b_start.copy()
        r_len = b_len.copy()
        r_vlo = b_vlo.copy()
        r_vhi = b_vhi.copy() if two else None
        act = np.nonzero(s_len > 0)[0]
        if not len(act):
            return r_start, r_len, r_vlo, r_vhi
        bl = b_len[act]
        s_seg, sn, s_plo, s_phi, s_offs = gather(s_start[act], s_len[act])
        b_total = int(bl.sum())
        scomb = s_seg * K + sn
        if b_total:
            b_seg, bn, b_plo, b_phi, _ = gather(b_start[act], bl)
            bcomb = b_seg * K + bn
            loc = np.searchsorted(bcomb, scomb)
            loc_c = np.minimum(loc, b_total - 1)
            old_found = (loc < b_total) & (bcomb[loc_c] == scomb)
            old_lo = np.where(old_found, b_plo[loc_c], none_lo)
            old_hi = (
                np.where(old_found, b_phi[loc_c], none_hi) if two else None
            )
        else:
            bn = np.empty(0, dtype=np.int64)
            b_plo = np.empty(0, dtype=U)
            b_phi = np.empty(0, dtype=U) if two else None
            bcomb = np.empty(0, dtype=np.int64)
            old_found = np.zeros(len(sn), dtype=bool)
            old_lo = np.full(len(sn), none_lo, dtype=U)
            old_hi = np.full(len(sn), none_hi, dtype=U) if two else None
        # new = pt_join(tag, maybe(old), small_pos)
        t_lo = tags[act].astype(U)[s_seg]
        new_lo, new_hi = chain(
            "pt_join", [(t_lo, None), (old_lo, old_hi), (s_plo, s_phi)]
        )
        # Map-hash delta per small entry: XOR in entry(name, new), XOR
        # out entry(name, old) where the name was already mapped.
        e_new_lo, e_new_hi = chain(
            "entry",
            [(nh_lo[sn], nh_hi[sn] if two else None), (new_lo, new_hi)],
        )
        d_lo = e_new_lo
        d_hi = e_new_hi
        if old_found.any():
            sn_f = sn[old_found]
            e_old_lo, e_old_hi = chain(
                "entry",
                [
                    (nh_lo[sn_f], nh_hi[sn_f] if two else None),
                    (
                        old_lo[old_found],
                        old_hi[old_found] if two else None,
                    ),
                ],
            )
            d_lo = d_lo.copy()
            d_lo[old_found] ^= e_old_lo
            if two:
                d_hi = d_hi.copy()
                d_hi[old_found] ^= e_old_hi
        # Every act segment is non-empty, so the reduceat offsets are
        # strictly increasing and each slot folds exactly its segment.
        r_vlo[act] ^= np.bitwise_xor.reduceat(d_lo, s_offs)
        if two:
            r_vhi[act] ^= np.bitwise_xor.reduceat(d_hi, s_offs)
        # Merged maps: concat big + rewritten small, stable-sort by the
        # combined key, keep the *last* of each duplicate pair (the
        # rewritten small entry overwrites the big one's value).
        all_keys = np.concatenate((bcomb, scomb))
        all_nid = np.concatenate((bn, sn))
        all_lo = np.concatenate((b_plo, new_lo))
        all_hi = np.concatenate((b_phi, new_hi)) if two else None
        order = np.argsort(all_keys, kind="stable")
        sorted_keys = all_keys[order]
        keep = np.empty(len(sorted_keys), dtype=bool)
        keep[:-1] = sorted_keys[:-1] != sorted_keys[1:]
        keep[-1] = True
        sel = order[keep]
        res_keys = sorted_keys[keep]
        new_lens = np.bincount(res_keys // K, minlength=len(act))
        start0 = pool.append(
            all_nid[sel], all_lo[sel], all_hi[sel] if two else None
        )
        r_start[act] = start0 + (np.cumsum(new_lens) - new_lens)
        r_len[act] = new_lens
        return r_start, r_len, r_vlo, r_vhi

    def sh_pair(nodes):
        return shs_lo[nodes], shs_hi[nodes] if two else None

    # -- the level loop ------------------------------------------------------
    if len(idx):
        d_vals = depths[idx]
        order = np.argsort(d_vals, kind="stable")
        sorted_idx = idx[order]
        sorted_d = d_vals[order]
        bounds = np.nonzero(
            np.concatenate(([True], sorted_d[1:] != sorted_d[:-1]))
        )[0]
        level_slices = list(zip(bounds.tolist(), bounds[1:].tolist() + [len(sorted_idx)]))
    else:
        sorted_idx = idx
        level_slices = []

    for lo_b, hi_b in level_slices:
        lvl = sorted_idx[lo_b:hi_b]
        lvl_op = opc[lvl]

        sub = lvl[lvl_op == OP_VAR]
        if len(sub):
            nid = aux[sub]
            shs_lo[sub] = svar_lo
            vmh_lo[sub] = ve_lo[nid]
            if two:
                shs_hi[sub] = svar_hi
                vmh_hi[sub] = ve_hi[nid]
            m = len(sub)
            start0 = pool.append(
                nid,
                np.full(m, here_lo, dtype=U),
                np.full(m, here_hi, dtype=U) if two else None,
            )
            map_start[sub] = start0 + np.arange(m, dtype=np.int64)
            map_len[sub] = 1

        sub = lvl[lvl_op == OP_LIT]
        if len(sub):
            lid = aux[sub]
            shs_lo[sub] = ls_lo[lid]
            if two:
                shs_hi[sub] = ls_hi[lid]
            # vmh stays 0, map stays empty.

        sub = lvl[lvl_op == OP_LAM]
        if len(sub):
            body = left[sub]
            binders = aux[sub]
            starts, lens, vlo, vhi, found, pos_lo, pos_hi = remove_binder(
                body, binders
            )
            map_start[sub] = starts
            map_len[sub] = lens
            vmh_lo[sub] = vlo
            if two:
                vmh_hi[sub] = vhi
            maybe_lo = np.where(found, pos_lo, none_lo)
            maybe_hi = np.where(found, pos_hi, none_hi) if two else None
            s_lo, s_hi = chain(
                "slam",
                [
                    (sizes[sub].astype(U), None),
                    (maybe_lo, maybe_hi),
                    sh_pair(body),
                ],
            )
            shs_lo[sub] = s_lo
            if two:
                shs_hi[sub] = s_hi

        sub = lvl[lvl_op == OP_APP]
        if len(sub):
            fn = left[sub]
            arg = right[sub]
            left_bigger = map_len[fn] >= map_len[arg]
            big = np.where(left_bigger, fn, arg)
            small = np.where(left_bigger, arg, fn)
            starts, lens, vlo, vhi = merge_maps(
                map_start[big],
                map_len[big],
                vmh_lo[big],
                vmh_hi[big] if two else None,
                map_start[small],
                map_len[small],
                sizes[sub],
            )
            map_start[sub] = starts
            map_len[sub] = lens
            vmh_lo[sub] = vlo
            if two:
                vmh_hi[sub] = vhi
            flag_lo = np.where(left_bigger, true_lo, false_lo)
            flag_hi = (
                np.where(left_bigger, true_hi, false_hi) if two else None
            )
            s_lo, s_hi = chain(
                "sapp",
                [
                    (sizes[sub].astype(U), None),
                    (flag_lo, flag_hi),
                    sh_pair(fn),
                    sh_pair(arg),
                ],
            )
            shs_lo[sub] = s_lo
            if two:
                shs_hi[sub] = s_hi

        sub = lvl[lvl_op == OP_LET]
        if len(sub):
            bound = left[sub]
            body = right[sub]
            binders = aux[sub]
            # Binder scopes over the body only: remove it there first,
            # then size-compare against the bound map (tree order).
            b_starts, b_lens, b_vlo, b_vhi, found, pos_lo, pos_hi = (
                remove_binder(body, binders)
            )
            left_bigger = map_len[bound] >= b_lens
            big_start = np.where(left_bigger, map_start[bound], b_starts)
            big_len = np.where(left_bigger, map_len[bound], b_lens)
            big_vlo = np.where(left_bigger, vmh_lo[bound], b_vlo)
            big_vhi = (
                np.where(left_bigger, vmh_hi[bound], b_vhi) if two else None
            )
            small_start = np.where(left_bigger, b_starts, map_start[bound])
            small_len = np.where(left_bigger, b_lens, map_len[bound])
            starts, lens, vlo, vhi = merge_maps(
                big_start,
                big_len,
                big_vlo,
                big_vhi,
                small_start,
                small_len,
                sizes[sub],
            )
            map_start[sub] = starts
            map_len[sub] = lens
            vmh_lo[sub] = vlo
            if two:
                vmh_hi[sub] = vhi
            maybe_lo = np.where(found, pos_lo, none_lo)
            maybe_hi = np.where(found, pos_hi, none_hi) if two else None
            flag_lo = np.where(left_bigger, true_lo, false_lo)
            flag_hi = (
                np.where(left_bigger, true_hi, false_hi) if two else None
            )
            s_lo, s_hi = chain(
                "slet",
                [
                    (sizes[sub].astype(U), None),
                    (maybe_lo, maybe_hi),
                    (flag_lo, flag_hi),
                    sh_pair(bound),
                    sh_pair(body),
                ],
            )
            shs_lo[sub] = s_lo
            if two:
                shs_hi[sub] = s_hi

    # -- tops ----------------------------------------------------------------
    if len(idx):
        t_lo, t_hi = chain(
            "top",
            [
                (shs_lo[idx], shs_hi[idx] if two else None),
                (vmh_lo[idx], vmh_hi[idx] if two else None),
            ],
        )
        if not two:
            vals = t_lo.tolist()
            if not restricted:
                out = vals
            else:
                for i, v in zip(idx.tolist(), vals):
                    out[i] = v
        else:
            lo_list = t_lo.tolist()
            hi_list = t_hi.tolist()
            if not restricted:
                out = [(h << 64) | l for h, l in zip(hi_list, lo_list)]
            else:
                for i, h, l in zip(idx.tolist(), hi_list, lo_list):
                    out[i] = (h << 64) | l

    # -- memo publish --------------------------------------------------------
    if memo is not None and len(idx):
        idx_list = idx.tolist()
        start_l = map_start[idx].tolist()
        len_l = map_len[idx].tolist()
        if not two:
            sh_l = shs_lo[idx].tolist()
            vh_l = vmh_lo[idx].tolist()
        else:
            sh_l = [
                (h << 64) | l
                for h, l in zip(shs_hi[idx].tolist(), shs_lo[idx].tolist())
            ]
            vh_l = [
                (h << 64) | l
                for h, l in zip(vmh_hi[idx].tolist(), vmh_lo[idx].tolist())
            ]

        def published():
            for j, i in enumerate(idx_list):
                s, m = start_l[j], len_l[j]
                if m:
                    keys = pool.nid[s : s + m].tolist()
                    p_lo = pool.lo[s : s + m].tolist()
                    if two:
                        p_hi = pool.hi[s : s + m].tolist()
                        vm = {
                            k: (h << 64) | l
                            for k, l, h in zip(keys, p_lo, p_hi)
                        }
                    else:
                        vm = dict(zip(keys, p_lo))
                else:
                    vm = {}
                yield i, out[i], sh_l[j], vh_l[j], vm

        memo.merge(published())
    return out
