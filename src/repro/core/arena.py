"""Arena-compiled corpora: post-order struct-of-arrays + an array-speed kernel.

The serial hashing paths walk a Python object graph: every node costs
attribute lookups, a tuple push/pop on an explicit stack, and dict-keyed
memo probes by ``id()``.  For large corpora that interpreter overhead --
not the O(n log n) map work the paper bounds -- dominates wall time.
This module *compiles* a corpus once into an :class:`ExprArena`:

* **Post-order struct-of-arrays.**  One flat index space; node ``i``'s
  children always sit at indices ``< i``.  Per node the arena stores an
  opcode (``op``), child indices (``left``/``right``), an interned
  name/literal id (``aux``), and the subtree's ``sizes``/``depths`` --
  six contiguous arrays instead of a tree of objects.

* **Flatten-time deduplication.**  Structurally identical subtrees
  collapse to one arena node while flattening (alpha-hash summaries are
  compositional, Section 3, so hashing each structural class once is
  sound).  Real corpora repeat small subtrees massively -- the 600k-node
  benchmark corpus compiles to ~41% unique nodes -- and every duplicate
  is work the kernel never does.

* **An iterative single-pass kernel.**  :func:`arena_hash` runs the
  paper's Section 5 algorithm over the arrays: integer-indexed memo
  lists instead of ``id()``-keyed dicts, no recursion, no per-node
  memo-record snapshots, and (at the default single-lane widths) the
  splitmix64 combiner chains inlined into the loop.  Hashes are
  **bit-identical** to :func:`repro.core.hashed.alpha_hash_all` -- the
  test wall checks this on adversarial corpora at several widths.

Arenas are also cheap to ship: pickling a handful of flat arrays is
iterative and O(bytes), so arbitrarily deep corpora cross a ``spawn``
process boundary that would overflow the C stack if the trees
themselves were pickled (see :mod:`repro.store.parallel`).
"""

from __future__ import annotations

from array import array
from typing import Iterable, Optional, Sequence

from repro.core.combiners import (
    _GOLDEN,
    _M0,
    _M1,
    _MASK64,
    HashCombiners,
    default_combiners,
)
from repro.core.kernel import combine_chain
from repro.core.position_tree import pt_here_hash
from repro.core.structure import slit_hash, svar_hash
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = [
    "ExprArena",
    "arena_hash",
    "flatten_corpus",
    "ARENA_MIN_NODES",
    "resolve_engine",
    "plan_corpus_engine",
    "OP_VAR",
    "OP_LIT",
    "OP_LAM",
    "OP_APP",
    "OP_LET",
]

OP_VAR, OP_LIT, OP_LAM, OP_APP, OP_LET = 0, 1, 2, 3, 4

#: Corpus size (total nodes) above which ``engine="auto"`` picks the
#: arena.  Below it the per-corpus compile overhead (building the arrays
#: and leaf tables) eats the per-node win; above it the kernel pulls
#: ahead quickly.  Chosen from the BENCH_PR4 sweep; override per call
#: with ``engine="arena"`` / ``engine="tree"``.  This is the **one**
#: auto-engine literal in the repository: the planner re-exports it as
#: :data:`repro.api.plan.ARENA_NODE_THRESHOLD` (the policy-level name),
#: and every batch entry point resolves ``"auto"`` against it through
#: :func:`resolve_engine` / :func:`plan_corpus_engine`.
ARENA_MIN_NODES = 25_000


def resolve_engine(
    engine: str, total_nodes: int, threshold: Optional[int] = None
) -> str:
    """Normalise an ``engine`` request to ``"arena"`` or ``"tree"``.

    ``threshold`` defaults to :data:`ARENA_MIN_NODES`; the planner
    passes its own (same value unless deliberately retuned) so policy
    stays swappable in exactly one place.
    """
    if engine == "auto":
        limit = ARENA_MIN_NODES if threshold is None else threshold
        return "arena" if total_nodes >= limit else "tree"
    if engine in ("arena", "tree"):
        return engine
    raise ValueError(
        f"engine must be 'auto', 'arena' or 'tree', got {engine!r}"
    )


def plan_corpus_engine(engine: str, corpus: Sequence[Expr]) -> str:
    """The concrete engine for hashing/interning ``corpus``.

    The one shared ``auto`` decision point for the store- and
    parallel-layer batch entry points: total nodes are counted here
    (``Expr.size`` is O(1) per root) and compared against the single
    threshold constant, so no call site carries its own size loop or
    literal."""
    if engine == "auto":
        return resolve_engine(engine, sum(expr.size for expr in corpus))
    return resolve_engine(engine, 0)  # validates the name


class ExprArena:
    """A corpus compiled to post-order struct-of-arrays form.

    Node ``i`` is described by:

    ``op[i]``
        One of :data:`OP_VAR`, :data:`OP_LIT`, :data:`OP_LAM`,
        :data:`OP_APP`, :data:`OP_LET`.
    ``left[i]`` / ``right[i]``
        Child arena indices (always ``< i``); ``-1`` when absent.  Lam
        keeps its body in ``left``; Let keeps ``bound`` in ``left`` and
        ``body`` in ``right``.
    ``aux[i]``
        Interned id: a ``names`` index for Var occurrences and Lam/Let
        binders, a ``literals`` index for Lit, ``-1`` for App.
    ``sizes[i]`` / ``depths[i]``
        Node count and height of the subtree (the structure tag of
        Section 4.8 is ``sizes[i]``; ``depths`` also feeds the spawn
        pickling guard and lets binder-depth diagnostics stay O(1)).

    Structurally identical subtrees share one index, so the arena is a
    maximally-shared DAG over *syntactic* classes (finer than the
    store's alpha-classes: two alpha-equivalent-but-renamed subtrees
    keep distinct arena nodes and collapse later, at intern time).

    Instances grow append-only through :meth:`flatten` and may be reused
    across corpora; the structural intern index is rebuilt lazily after
    unpickling, so the wire form is just the flat arrays and leaf
    tables.
    """

    __slots__ = (
        "op",
        "left",
        "right",
        "aux",
        "sizes",
        "depths",
        "names",
        "literals",
        "_name_ids",
        "_lit_ids",
        "_struct",
    )

    def __init__(self) -> None:
        self.op = bytearray()
        self.left = array("q")
        self.right = array("q")
        self.aux = array("q")
        self.sizes = array("q")
        self.depths = array("q")
        self.names: list[str] = []
        self.literals: list = []
        self._name_ids: dict[str, int] = {}
        self._lit_ids: dict[tuple, int] = {}
        self._struct: Optional[dict] = {}

    # -- pickling (workers; see store/parallel.py) ---------------------------

    def __getstate__(self):
        # The structural index is derivable from the arrays; shipping it
        # would double the wire size for nothing.
        return (
            bytes(self.op),
            self.left,
            self.right,
            self.aux,
            self.sizes,
            self.depths,
            self.names,
            self.literals,
        )

    def __setstate__(self, state):
        op, self.left, self.right, self.aux, self.sizes, self.depths, names, lits = state
        self.op = bytearray(op)
        self.names = names
        self.literals = lits
        self._name_ids = {name: i for i, name in enumerate(names)}
        from repro.core.hashed import lit_cache_key

        self._lit_ids = {lit_cache_key(v): i for i, v in enumerate(lits)}
        self._struct = None  # rebuilt lazily if this arena keeps growing

    def _ensure_index(self) -> dict:
        """The structural intern index, rebuilt from the arrays if needed."""
        struct = self._struct
        if struct is None:
            struct = {}
            op, left, right, aux = self.op, self.left, self.right, self.aux
            for i in range(len(op)):
                opc = op[i]
                if opc == OP_VAR:
                    struct[aux[i] * 8] = i
                elif opc == OP_LIT:
                    struct[aux[i] * 8 + 1] = i
                elif opc == OP_LAM:
                    struct[(OP_LAM, aux[i], left[i])] = i
                elif opc == OP_APP:
                    struct[(OP_APP, left[i], right[i])] = i
                else:
                    struct[(OP_LET, aux[i], left[i], right[i])] = i
            self._struct = struct
        return struct

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        """Number of unique arena nodes."""
        return len(self.op)

    def stats(self) -> dict:
        """Shape accounting: unique nodes and leaf-table sizes."""
        return {
            "nodes": len(self.op),
            "names": len(self.names),
            "literals": len(self.literals),
            "bytes": (
                len(self.op)
                + sum(
                    arr.itemsize * len(arr)
                    for arr in (self.left, self.right, self.aux, self.sizes, self.depths)
                )
            ),
        }

    def max_depth(self, roots: Optional[Iterable[int]] = None) -> int:
        """Deepest subtree among ``roots`` (default: all nodes)."""
        depths = self.depths
        if roots is None:
            return max(depths) if depths else 0
        return max((depths[i] for i in roots), default=0)

    # -- compilation ---------------------------------------------------------

    def flatten(self, exprs: Iterable[Expr]) -> list[int]:
        """Compile ``exprs`` into the arena; return one root index each.

        Deduplicates three ways while walking: by object identity within
        the call (shared subtree objects are visited once), by
        structural identity against everything already in the arena, and
        by leaf-table interning of names and literal values.  The walk
        is iterative, so degenerate depth-50k chains compile fine.

        The stack holds bare nodes (no visited flags): a node whose
        children are not all interned yet re-pushes itself below them
        and is resolved on its second pop.  Columns are buffered in
        plain lists and flushed into the arrays once at the end (list
        appends are cheaper), and the structural index and leaf tables
        roll back on error -- a failed flatten (a foreign node kind)
        leaves the arena exactly as it was, safe to keep using.
        """
        struct = self._ensure_index()
        count0 = len(self.op)
        n_names0 = len(self.names)
        n_lits0 = len(self.literals)

        buffers: tuple[list[int], ...] = ([], [], [], [], [], [])
        roots: list[int] = []
        try:
            self._flatten_walk(exprs, roots, *buffers)
        except BaseException:
            # Roll back the shared tables: the buffered columns are
            # simply dropped, but the structural index and leaf tables
            # were written inline and would otherwise point at rows
            # that never get flushed.
            from repro.core.hashed import lit_cache_key

            for name in self.names[n_names0:]:
                del self._name_ids[name]
            del self.names[n_names0:]
            for value in self.literals[n_lits0:]:
                del self._lit_ids[lit_cache_key(value)]
            del self.literals[n_lits0:]
            self._struct = {
                key: idx for key, idx in struct.items() if idx < count0
            }
            raise

        op_b, left_b, right_b, aux_b, sizes_b, depths_b = buffers
        self.op.extend(op_b)
        self.left.extend(left_b)
        self.right.extend(right_b)
        self.aux.extend(aux_b)
        self.sizes.extend(sizes_b)
        self.depths.extend(depths_b)
        return roots

    def _flatten_walk(
        self, exprs, roots, op_b, left_b, right_b, aux_b, sizes_b, depths_b
    ) -> None:
        """The flatten loop proper, writing into the column buffers.

        Mutates the structural index and leaf tables inline;
        :meth:`flatten` owns the flush-or-rollback around it.
        """
        from repro.core.hashed import lit_cache_key

        struct = self._ensure_index()
        struct_get = struct.get
        name_ids, names = self._name_ids, self.names
        lit_ids, literals = self._lit_ids, self.literals
        idmemo: dict[int, int] = {}
        idmemo_get = idmemo.get
        count = len(self.op)

        for root in exprs:
            cached_root = idmemo_get(id(root))
            if cached_root is not None:
                roots.append(cached_root)
                continue
            stack: list[Expr] = [root]
            push = stack.append
            while stack:
                node = stack.pop()
                node_key = id(node)
                if node_key in idmemo:
                    continue
                cls = type(node)
                if cls is App:
                    fn = idmemo_get(id(node.fn))
                    arg = idmemo_get(id(node.arg))
                    if fn is None or arg is None:
                        push(node)
                        if arg is None:
                            push(node.arg)
                        if fn is None:
                            push(node.fn)
                        continue
                    key = (OP_APP, fn, arg)
                    idx = struct_get(key)
                    if idx is None:
                        struct[key] = idx = count
                        count += 1
                        op_b.append(OP_APP)
                        left_b.append(fn)
                        right_b.append(arg)
                        aux_b.append(-1)
                        sizes_b.append(node.size)
                        depths_b.append(node.depth)
                    idmemo[node_key] = idx
                elif cls is Var:
                    name = node.name
                    nid = name_ids.get(name)
                    if nid is None:
                        name_ids[name] = nid = len(names)
                        names.append(name)
                    key = nid * 8
                    idx = struct_get(key)
                    if idx is None:
                        struct[key] = idx = count
                        count += 1
                        op_b.append(OP_VAR)
                        left_b.append(-1)
                        right_b.append(-1)
                        aux_b.append(nid)
                        sizes_b.append(1)
                        depths_b.append(1)
                    idmemo[node_key] = idx
                elif cls is Lam:
                    body = idmemo_get(id(node.body))
                    if body is None:
                        push(node)
                        push(node.body)
                        continue
                    binder = node.binder
                    nid = name_ids.get(binder)
                    if nid is None:
                        name_ids[binder] = nid = len(names)
                        names.append(binder)
                    key = (OP_LAM, nid, body)
                    idx = struct_get(key)
                    if idx is None:
                        struct[key] = idx = count
                        count += 1
                        op_b.append(OP_LAM)
                        left_b.append(body)
                        right_b.append(-1)
                        aux_b.append(nid)
                        sizes_b.append(node.size)
                        depths_b.append(node.depth)
                    idmemo[node_key] = idx
                elif cls is Let:
                    bound = idmemo_get(id(node.bound))
                    body = idmemo_get(id(node.body))
                    if bound is None or body is None:
                        push(node)
                        if body is None:
                            push(node.body)
                        if bound is None:
                            push(node.bound)
                        continue
                    binder = node.binder
                    nid = name_ids.get(binder)
                    if nid is None:
                        name_ids[binder] = nid = len(names)
                        names.append(binder)
                    key = (OP_LET, nid, bound, body)
                    idx = struct_get(key)
                    if idx is None:
                        struct[key] = idx = count
                        count += 1
                        op_b.append(OP_LET)
                        left_b.append(bound)
                        right_b.append(body)
                        aux_b.append(nid)
                        sizes_b.append(node.size)
                        depths_b.append(node.depth)
                    idmemo[node_key] = idx
                elif cls is Lit:
                    value = node.value
                    lkey = lit_cache_key(value)
                    lid = lit_ids.get(lkey)
                    if lid is None:
                        lit_ids[lkey] = lid = len(literals)
                        literals.append(value)
                    key = lid * 8 + 1
                    idx = struct_get(key)
                    if idx is None:
                        struct[key] = idx = count
                        count += 1
                        op_b.append(OP_LIT)
                        left_b.append(-1)
                        right_b.append(-1)
                        aux_b.append(lid)
                        sizes_b.append(1)
                        depths_b.append(1)
                    idmemo[node_key] = idx
                else:
                    raise TypeError(
                        f"cannot flatten non-expression node of type "
                        f"{type(node).__name__}"
                    )
            roots.append(idmemo[id(root)])

    # -- decompilation -------------------------------------------------------

    def closure(self, roots: Iterable[int]) -> bytearray:
        """Byte mask of every arena node reachable from ``roots``."""
        mask = bytearray(len(self.op))
        left, right = self.left, self.right
        stack = list(roots)
        while stack:
            i = stack.pop()
            if mask[i]:
                continue
            mask[i] = 1
            child = left[i]
            if child >= 0 and not mask[child]:
                stack.append(child)
            child = right[i]
            if child >= 0 and not mask[child]:
                stack.append(child)
        return mask

    def rebuild(self, index: int) -> Expr:
        """Reconstruct the expression rooted at ``index``.

        Shared arena nodes come back as shared :class:`Expr` objects (a
        maximally-shared tree); alpha-hashes are preserved by
        construction -- the round-trip test wall pins this.
        """
        mask = self.closure((index,))
        op, left, right, aux = self.op, self.left, self.right, self.aux
        names, literals = self.names, self.literals
        built: dict[int, Expr] = {}
        for i in range(index + 1):
            if not mask[i]:
                continue
            opc = op[i]
            if opc == OP_VAR:
                built[i] = Var(names[aux[i]])
            elif opc == OP_LIT:
                built[i] = Lit(literals[aux[i]])
            elif opc == OP_LAM:
                built[i] = Lam(names[aux[i]], built[left[i]])
            elif opc == OP_APP:
                built[i] = App(built[left[i]], built[right[i]])
            else:
                built[i] = Let(names[aux[i]], built[left[i]], built[right[i]])
        return built[index]


def flatten_corpus(
    exprs: Iterable[Expr], arena: Optional[ExprArena] = None
) -> tuple[ExprArena, list[int]]:
    """Compile a corpus: ``(arena, one root index per input)``."""
    if arena is None:
        arena = ExprArena()
    return arena, arena.flatten(exprs)


def arena_hash(
    arena: ExprArena,
    combiners: Optional[HashCombiners] = None,
    only: Optional[Sequence[int]] = None,
) -> list[Optional[int]]:
    """Alpha-hash every arena node; ``tops[i]`` is node ``i``'s hash.

    The single post-order pass of Section 5 run at array speed: children
    sit at lower indices, so one ``for i in range(n)`` loop replaces the
    scheduling stack, and the per-node memo is three integer-indexed
    lists.  Free-variable maps are dicts keyed by interned name id; each
    map is consumed destructively by its *last* referencing parent and
    copied for earlier ones (``uses`` counts references), which keeps
    the Lemma 6.1 merge bound while letting deduplicated nodes feed any
    number of parents.

    ``only`` restricts work to the downward closure of the given roots
    (other slots come back ``None``) -- this is the unit the parallel
    engine fans out.  Bit-identical to
    :func:`~repro.core.hashed.alpha_hash_all` at every width; the
    single-lane fast path below inlines the splitmix64 chains, the
    multi-lane widths go through the same recipes via
    :func:`~repro.core.kernel.combine_chain`.
    """
    if combiners is None:
        combiners = default_combiners()
    n = len(arena.op)

    # Plain lists index faster than array('q') (no per-access int
    # materialisation); the one-shot conversion is C-speed, cheap next
    # to the kernel even when ``only`` restricts the Python-speed work.
    op = bytes(arena.op)
    left, right = arena.left.tolist(), arena.right.tolist()
    aux, sizes = arena.aux.tolist(), arena.sizes.tolist()

    names, literals = arena.names, arena.literals
    if only is None:
        indices: Sequence[int] = range(n)
        # Leaf tables: one hash per interned name / literal, not per node.
        name_h = [combiners.hash_name(name) for name in names]
        lit_s = [slit_hash(combiners, value) for value in literals]
    else:
        from itertools import compress

        mask = arena.closure(only)
        indices = list(compress(range(n), mask))
        # The leaf tables are shared arena-wide; a restricted pass (one
        # parallel chunk of many) hashes only the entries its closure
        # touches, so per-chunk setup scales with the chunk.
        name_used = bytearray(len(names))
        lit_used = bytearray(len(literals))
        for i in indices:
            opc = op[i]
            if opc == OP_LIT:
                lit_used[aux[i]] = 1
            elif opc != OP_APP:
                name_used[aux[i]] = 1
        # None marks slots the closure never dereferences (map keys and
        # binder removals only involve names of in-closure Vars); the
        # derived entry_pre/var_entry tables skip them too.
        name_h = [
            combiners.hash_name(name) if used else None
            for name, used in zip(names, name_used)
        ]
        lit_s = [
            slit_hash(combiners, value) if used else None
            for value, used in zip(literals, lit_used)
        ]

    HERE = pt_here_hash(combiners)
    SVAR = svar_hash(combiners)
    NONE = combiners.NONE_HASH
    TRUE = combiners.TRUE_HASH
    FALSE = combiners.FALSE_HASH
    entry2 = combine_chain(combiners, "entry", 2)
    var_entry = [None if h is None else entry2(h, HERE) for h in name_h]

    # Integer-indexed memo arrays: structure hash, map hash, map, top.
    shs: list = [0] * n
    vmhs: list = [0] * n
    vms: list = [None] * n
    tops: list = [None] * n

    # Reference counts: how many parents will consume each node's map.
    # (Children of in-closure nodes are in the closure by construction.)
    uses = [0] * n
    for i in indices:
        child = left[i]
        if child >= 0:
            uses[child] += 1
        child = right[i]
        if child >= 0:
            uses[child] += 1

    if combiners._lanes == 1:
        _arena_hash_lane1(
            combiners, indices, op, left, right, aux, sizes,
            name_h, var_entry, lit_s, HERE, SVAR, NONE, TRUE, FALSE,
            shs, vmhs, vms, tops, uses,
        )
    else:
        _arena_hash_generic(
            combiners, indices, op, left, right, aux, sizes,
            name_h, var_entry, lit_s, HERE, SVAR, NONE, TRUE, FALSE,
            shs, vmhs, vms, tops, uses,
        )
    return tops


def _arena_hash_lane1(
    combiners, indices, op, left, right, aux, sizes,
    name_h, var_entry, lit_s, HERE, SVAR, NONE, TRUE, FALSE,
    shs, vmhs, vms, tops, uses,
):
    """Single-lane (bits <= 64) kernel with the combiner chains inlined.

    Every ``x = ...; h = x ^ (x >> 31)`` block below is one absorb step
    of :meth:`HashCombiners.combine`'s single-lane path; a chain masks
    once at the end, exactly like ``combine`` does.  Two extra tricks,
    both exact (they cache *chain states*, never outputs):

    * **Prefix caches.**  A chain's first absorbs often see a tiny value
      space -- ``sapp``/``slet``/``pt_join`` start with the structure
      tag (subtree sizes repeat massively across a corpus), ``slam``
      with the size, ``entry`` with one of a handful of name hashes --
      so the partially-absorbed state is memoised and the chain resumes
      from it.
    * **List-backed arrays.**  The ``array``/``bytearray`` columns are
      converted to plain lists once per pass: indexing a list returns a
      cached object where ``array('q')`` materialises a fresh int.

    Keep this in sync with ``_arena_hash_generic`` -- the differential
    wall runs both.
    """
    hmask = combiners.mask
    salts = combiners._salts
    S_ENTRY = salts["entry"][0]
    S_JOIN = salts["pt_join"][0]
    S_TOP = salts["top"][0]
    S_LAM = salts["slam"][0]
    S_APP = salts["sapp"][0]
    S_LET = salts["slet"][0]
    G, M64, M0, M1 = _GOLDEN, _MASK64, _M0, _M1

    # Per-name entry-chain states: entry(name, pos) resumes after the
    # name absorb, halving the per-entry work in merges and removals.
    # (None slots are names outside a restricted pass's closure.)
    entry_pre = []
    for nh in name_h:
        if nh is None:
            entry_pre.append(None)
            continue
        x = ((S_ENTRY ^ nh) + G) & M64
        x = ((x ^ (x >> 30)) * M0) & M64
        x = ((x ^ (x >> 27)) * M1) & M64
        entry_pre.append(x ^ (x >> 31))

    app_pre = {}  # (size << 1) | left_bigger -> state after size, flag
    lam_pre = {}  # size -> state after size
    let_pre = {}  # size -> state after size
    join_pre = {}  # tag -> state after tag

    for i in indices:
        opc = op[i]
        if opc == OP_APP:
            fn, arg = left[i], right[i]
            vm_fn, vm_arg = vms[fn], vms[arg]
            left_bigger = len(vm_fn) >= len(vm_arg)
            if left_bigger:
                big, small = fn, arg
            else:
                big, small = arg, fn
            # Take the big map for writing: steal on last use, copy else.
            ub = uses[big]
            if ub == 1:
                bvm = vms[big]
                vms[big] = None
            else:
                bvm = dict(vms[big])
            uses[big] = ub - 1
            bh = vmhs[big]
            svm = vms[small]
            tag = sizes[i]
            if svm:
                jp = join_pre.get(tag)
                if jp is None:
                    x = ((S_JOIN ^ tag) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    join_pre[tag] = jp = x ^ (x >> 31)
                bvm_get = bvm.get
                for nid, spos in svm.items():
                    old = bvm_get(nid)
                    # pt_join(tag, maybe(old), spos), resumed after tag
                    x = ((jp ^ (NONE if old is None else old)) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    h = x ^ (x >> 31)
                    x = ((h ^ spos) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    new = (x ^ (x >> 31)) & hmask
                    ep = entry_pre[nid]
                    if old is not None:
                        # XOR out entry(name, old)
                        x = ((ep ^ old) + G) & M64
                        x = ((x ^ (x >> 30)) * M0) & M64
                        x = ((x ^ (x >> 27)) * M1) & M64
                        bh ^= (x ^ (x >> 31)) & hmask
                    bvm[nid] = new
                    # XOR in entry(name, new)
                    x = ((ep ^ new) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    bh ^= (x ^ (x >> 31)) & hmask
            us = uses[small] - 1
            uses[small] = us
            if us == 0:
                vms[small] = None
            # sapp(size, flag, s_fn, s_arg), resumed after size + flag
            key = (tag << 1) | left_bigger
            h = app_pre.get(key)
            if h is None:
                x = ((S_APP ^ tag) + G) & M64
                x = ((x ^ (x >> 30)) * M0) & M64
                x = ((x ^ (x >> 27)) * M1) & M64
                h = x ^ (x >> 31)
                x = ((h ^ (TRUE if left_bigger else FALSE)) + G) & M64
                x = ((x ^ (x >> 30)) * M0) & M64
                x = ((x ^ (x >> 27)) * M1) & M64
                h = x ^ (x >> 31)
                app_pre[key] = h
            x = ((h ^ shs[fn]) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            h = x ^ (x >> 31)
            x = ((h ^ shs[arg]) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            s = (x ^ (x >> 31)) & hmask
            vm, vh = bvm, bh
        elif opc == OP_VAR:
            nid = aux[i]
            s = SVAR
            vm = {nid: HERE}
            vh = var_entry[nid]
        elif opc == OP_LAM:
            body = left[i]
            ub = uses[body]
            if ub == 1:
                vm = vms[body]
                vms[body] = None
            else:
                vm = dict(vms[body])
            uses[body] = ub - 1
            vh = vmhs[body]
            pos = vm.pop(aux[i], None)
            if pos is not None:
                # XOR out entry(binder, pos)
                x = ((entry_pre[aux[i]] ^ pos) + G) & M64
                x = ((x ^ (x >> 30)) * M0) & M64
                x = ((x ^ (x >> 27)) * M1) & M64
                vh ^= (x ^ (x >> 31)) & hmask
            # slam(size, maybe(pos), s_body), resumed after size
            tag = sizes[i]
            h = lam_pre.get(tag)
            if h is None:
                x = ((S_LAM ^ tag) + G) & M64
                x = ((x ^ (x >> 30)) * M0) & M64
                x = ((x ^ (x >> 27)) * M1) & M64
                lam_pre[tag] = h = x ^ (x >> 31)
            x = ((h ^ (NONE if pos is None else pos)) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            h = x ^ (x >> 31)
            x = ((h ^ shs[body]) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            s = (x ^ (x >> 31)) & hmask
        elif opc == OP_LIT:
            s = lit_s[aux[i]]
            vm = {}
            vh = 0
        else:  # OP_LET
            bound, body = left[i], right[i]
            # The binder scopes over the body only: remove it from the
            # body map first, then merge (matching the tree kernel).
            ub = uses[body]
            if ub == 1:
                vm_body = vms[body]
                vms[body] = None
            else:
                vm_body = dict(vms[body])
            uses[body] = ub - 1
            bh_body = vmhs[body]
            pos = vm_body.pop(aux[i], None)
            if pos is not None:
                x = ((entry_pre[aux[i]] ^ pos) + G) & M64
                x = ((x ^ (x >> 30)) * M0) & M64
                x = ((x ^ (x >> 27)) * M1) & M64
                bh_body ^= (x ^ (x >> 31)) & hmask
            vm_bound = vms[bound]
            left_bigger = len(vm_bound) >= len(vm_body)
            tag = sizes[i]
            if left_bigger:
                # bound is big: take it for writing, read the body map.
                ub = uses[bound]
                if ub == 1:
                    bvm = vms[bound]
                    vms[bound] = None
                else:
                    bvm = dict(vms[bound])
                uses[bound] = ub - 1
                bh = vmhs[bound]
                svm = vm_body
                small_slot = -1
            else:
                # body (already owned) is big; bound is read-only.
                bvm, bh = vm_body, bh_body
                svm = vm_bound
                small_slot = bound
            if svm:
                jp = join_pre.get(tag)
                if jp is None:
                    x = ((S_JOIN ^ tag) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    join_pre[tag] = jp = x ^ (x >> 31)
                bvm_get = bvm.get
                for nid, spos in svm.items():
                    old = bvm_get(nid)
                    x = ((jp ^ (NONE if old is None else old)) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    h = x ^ (x >> 31)
                    x = ((h ^ spos) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    new = (x ^ (x >> 31)) & hmask
                    ep = entry_pre[nid]
                    if old is not None:
                        x = ((ep ^ old) + G) & M64
                        x = ((x ^ (x >> 30)) * M0) & M64
                        x = ((x ^ (x >> 27)) * M1) & M64
                        bh ^= (x ^ (x >> 31)) & hmask
                    bvm[nid] = new
                    x = ((ep ^ new) + G) & M64
                    x = ((x ^ (x >> 30)) * M0) & M64
                    x = ((x ^ (x >> 27)) * M1) & M64
                    bh ^= (x ^ (x >> 31)) & hmask
            if small_slot >= 0:
                us = uses[small_slot] - 1
                uses[small_slot] = us
                if us == 0:
                    vms[small_slot] = None
            # slet(size, maybe(pos), flag, s_bound, s_body), resumed
            h = let_pre.get(tag)
            if h is None:
                x = ((S_LET ^ tag) + G) & M64
                x = ((x ^ (x >> 30)) * M0) & M64
                x = ((x ^ (x >> 27)) * M1) & M64
                let_pre[tag] = h = x ^ (x >> 31)
            x = ((h ^ (NONE if pos is None else pos)) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            h = x ^ (x >> 31)
            x = ((h ^ (TRUE if left_bigger else FALSE)) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            h = x ^ (x >> 31)
            x = ((h ^ shs[bound]) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            h = x ^ (x >> 31)
            x = ((h ^ shs[body]) + G) & M64
            x = ((x ^ (x >> 30)) * M0) & M64
            x = ((x ^ (x >> 27)) * M1) & M64
            s = (x ^ (x >> 31)) & hmask
            vm, vh = bvm, bh

        shs[i] = s
        vmhs[i] = vh
        vms[i] = vm
        # top(s, vh)
        x = ((S_TOP ^ s) + G) & M64
        x = ((x ^ (x >> 30)) * M0) & M64
        x = ((x ^ (x >> 27)) * M1) & M64
        h = x ^ (x >> 31)
        x = ((h ^ vh) + G) & M64
        x = ((x ^ (x >> 30)) * M0) & M64
        x = ((x ^ (x >> 27)) * M1) & M64
        tops[i] = (x ^ (x >> 31)) & hmask


def _arena_hash_generic(
    combiners, indices, op, left, right, aux, sizes,
    name_h, var_entry, lit_s, HERE, SVAR, NONE, TRUE, FALSE,
    shs, vmhs, vms, tops, uses,
):
    """Any-width reference kernel: same pass, recipes via combine_chain."""
    entry2 = combine_chain(combiners, "entry", 2)
    join3 = combine_chain(combiners, "pt_join", 3)
    top2 = combine_chain(combiners, "top", 2)
    lam3 = combine_chain(combiners, "slam", 3)
    app4 = combine_chain(combiners, "sapp", 4)
    let5 = combine_chain(combiners, "slet", 5)

    def take_for_write(idx):
        ub = uses[idx]
        if ub == 1:
            owned = vms[idx]
            vms[idx] = None
        else:
            owned = dict(vms[idx])
        uses[idx] = ub - 1
        return owned, vmhs[idx]

    def release(idx):
        us = uses[idx] - 1
        uses[idx] = us
        if us == 0:
            vms[idx] = None

    def merge(bvm, bh, svm, tag):
        for nid, spos in svm.items():
            old = bvm.get(nid)
            new = join3(tag, NONE if old is None else old, spos)
            nh = name_h[nid]
            if old is not None:
                bh ^= entry2(nh, old)
            bvm[nid] = new
            bh ^= entry2(nh, new)
        return bvm, bh

    for i in indices:
        opc = op[i]
        if opc == OP_VAR:
            nid = aux[i]
            s, vm, vh = SVAR, {nid: HERE}, var_entry[nid]
        elif opc == OP_LIT:
            s, vm, vh = lit_s[aux[i]], {}, 0
        elif opc == OP_LAM:
            body = left[i]
            vm, vh = take_for_write(body)
            pos = vm.pop(aux[i], None)
            if pos is not None:
                vh ^= entry2(name_h[aux[i]], pos)
            s = lam3(sizes[i], NONE if pos is None else pos, shs[body])
        elif opc == OP_APP:
            fn, arg = left[i], right[i]
            left_bigger = len(vms[fn]) >= len(vms[arg])
            big, small = (fn, arg) if left_bigger else (arg, fn)
            bvm, bh = take_for_write(big)
            vm, vh = merge(bvm, bh, vms[small], sizes[i])
            release(small)
            s = app4(
                sizes[i], TRUE if left_bigger else FALSE, shs[fn], shs[arg]
            )
        else:  # OP_LET
            bound, body = left[i], right[i]
            vm_body, bh_body = take_for_write(body)
            pos = vm_body.pop(aux[i], None)
            if pos is not None:
                bh_body ^= entry2(name_h[aux[i]], pos)
            left_bigger = len(vms[bound]) >= len(vm_body)
            if left_bigger:
                bvm, bh = take_for_write(bound)
                vm, vh = merge(bvm, bh, vm_body, sizes[i])
            else:
                vm, vh = merge(vm_body, bh_body, vms[bound], sizes[i])
                release(bound)
            s = let5(
                sizes[i],
                NONE if pos is None else pos,
                TRUE if left_bigger else FALSE,
                shs[bound],
                shs[body],
            )

        shs[i], vmhs[i], vms[i] = s, vh, vm
        tops[i] = top2(s, vh)
