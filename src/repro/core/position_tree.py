"""Position trees: where a variable occurs inside a structure.

Two flavours, exactly as in the paper:

* the **naive** form of Section 4.5 (used by the quadratic reference
  algorithm of Section 4.6)::

      data PosTree = PTHere | PTLeftOnly PosTree
                   | PTRightOnly PosTree | PTBoth PosTree PosTree

* the **tagged-join** form of Section 4.8 (used by the log-linear
  algorithm; the tag makes the one-sided merge invertible)::

      data PosTree = PTHere
                   | PTJoin StructureTag (Maybe PosTree) PosTree

Both forms support :func:`hash_postree`, but only the tagged form's hash
recipe is shared with the fast Step-2 algorithm (which never materialises
trees at all -- Section 5.1 replaces every constructor by its hash
combiner).  Keeping the recipe in one place lets the test-suite assert
that the fast algorithm computes *bit-identical* hashes to hashing the
Step-1 trees, which is the paper's two-step correctness argument made
executable.
"""

from __future__ import annotations

from typing import Optional

from repro.core.combiners import HashCombiners

__all__ = [
    "PosTree",
    "PTHere",
    "PTLeftOnly",
    "PTRightOnly",
    "PTBoth",
    "PTJoin",
    "postree_equal",
    "postree_size",
    "hash_postree",
    "pt_here_hash",
    "pt_join_hash",
    "pt_left_hash",
    "pt_right_hash",
    "pt_both_hash",
]


class PosTree:
    """Base class for position-tree nodes (both flavours).

    ``hash_cache`` memoises :func:`hash_postree` per node as a
    ``((bits, seed), value)`` pair; position trees are immutable, so the
    cached hash stays valid for the family that computed it.  Metadata
    only -- never part of equality.
    """

    __slots__ = ("hash_cache",)
    kind: str = "?"


class _PTHereSingleton(PosTree):
    """The single occurrence marker: the variable occurs right here."""

    __slots__ = ()
    kind = "PTHere"

    def __init__(self):
        self.hash_cache = None

    def __repr__(self) -> str:
        return "PTHere"


#: Canonical PTHere instance (it carries no data).
PTHere = _PTHereSingleton()


class PTLeftOnly(PosTree):
    """Naive form: occurrences only in the left child."""

    __slots__ = ("child",)
    kind = "PTLeftOnly"

    def __init__(self, child: PosTree):
        self.child = child
        self.hash_cache = None


class PTRightOnly(PosTree):
    """Naive form: occurrences only in the right child."""

    __slots__ = ("child",)
    kind = "PTRightOnly"

    def __init__(self, child: PosTree):
        self.child = child
        self.hash_cache = None


class PTBoth(PosTree):
    """Naive form: occurrences in both children."""

    __slots__ = ("left", "right")
    kind = "PTBoth"

    def __init__(self, left: PosTree, right: PosTree):
        self.left = left
        self.right = right
        self.hash_cache = None


class PTJoin(PosTree):
    """Tagged form (Section 4.8): a merge performed at the structure whose
    :func:`structure tag <repro.core.structure.structure_tag>` is ``tag``.

    ``big`` is the position tree contributed by the bigger child map
    (``None`` when the variable was absent there); ``small`` is the tree
    from the smaller map.  Note that entries *only* in the bigger map are
    not wrapped at all -- rebuild tells the difference by comparing tags.
    """

    __slots__ = ("tag", "big", "small")
    kind = "PTJoin"

    def __init__(self, tag: int, big: Optional[PosTree], small: PosTree):
        self.tag = tag
        self.big = big
        self.small = small
        self.hash_cache = None


def postree_equal(a: Optional[PosTree], b: Optional[PosTree]) -> bool:
    """Structural equality of position trees (iterative, both flavours)."""
    stack: list[tuple[Optional[PosTree], Optional[PosTree]]] = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x is y:
            continue
        if x is None or y is None:
            return False
        if x.kind != y.kind:
            return False
        if isinstance(x, PTJoin):
            assert isinstance(y, PTJoin)
            if x.tag != y.tag:
                return False
            stack.append((x.big, y.big))
            stack.append((x.small, y.small))
        elif isinstance(x, PTBoth):
            assert isinstance(y, PTBoth)
            stack.append((x.left, y.left))
            stack.append((x.right, y.right))
        elif isinstance(x, (PTLeftOnly, PTRightOnly)):
            stack.append((x.child, y.child))  # type: ignore[union-attr]
        # PTHere: nothing further to compare.
    return True


def postree_size(pt: Optional[PosTree]) -> int:
    """Number of constructor calls in ``pt`` (the |d| of Lemma 6.6)."""
    if pt is None:
        return 0
    total = 0
    stack = [pt]
    while stack:
        node = stack.pop()
        total += 1
        if isinstance(node, PTJoin):
            if node.big is not None:
                stack.append(node.big)
            stack.append(node.small)
        elif isinstance(node, PTBoth):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, (PTLeftOnly, PTRightOnly)):
            stack.append(node.child)
    return total


# ---------------------------------------------------------------------------
# Hash recipes.  The fast algorithm (repro.core.hashed) calls these same
# functions with raw ints, never building trees; hash_postree below folds a
# materialised tree through them, and the two must agree bit-for-bit.
# ---------------------------------------------------------------------------


def pt_here_hash(combiners: HashCombiners) -> int:
    """Hash of PTHere."""
    return combiners.combine("pt_here")


def pt_join_hash(
    combiners: HashCombiners, tag: int, big_hash: Optional[int], small_hash: int
) -> int:
    """Hash of ``PTJoin tag big small`` from the children's hashes."""
    return combiners.combine(
        "pt_join", tag, combiners.maybe(big_hash), small_hash
    )


def pt_left_hash(combiners: HashCombiners, child_hash: int) -> int:
    """Hash of ``PTLeftOnly child`` (naive form)."""
    return combiners.combine("pt_left", child_hash)


def pt_right_hash(combiners: HashCombiners, child_hash: int) -> int:
    """Hash of ``PTRightOnly child`` (naive form)."""
    return combiners.combine("pt_right", child_hash)


def pt_both_hash(combiners: HashCombiners, left_hash: int, right_hash: int) -> int:
    """Hash of ``PTBoth left right`` (naive form)."""
    return combiners.combine("pt_both", left_hash, right_hash)


def hash_postree(combiners: HashCombiners, pt: Optional[PosTree]) -> Optional[int]:
    """Hash a materialised position tree (iterative postorder fold).

    Returns ``None`` for ``None`` input (the ``Maybe PosTree`` case); use
    :meth:`HashCombiners.maybe` at the call site where a concrete code is
    needed.

    Per-node results are memoised in ``PosTree.hash_cache`` keyed by the
    family's ``(bits, seed)``, so shared or repeatedly-hashed subtrees
    fold once per family.
    """
    if pt is None:
        return None
    key = (combiners.bits, combiners.seed)
    cached = pt.hash_cache
    if cached is not None and cached[0] == key:
        return cached[1]
    here = pt_here_hash(combiners)
    results: list[int] = []
    # (node, visited) two-phase DFS.
    stack: list[tuple[PosTree, bool]] = [(pt, False)]
    while stack:
        node, visited = stack.pop()
        if not visited:
            cached = node.hash_cache
            if cached is not None and cached[0] == key:
                results.append(cached[1])
                continue
            stack.append((node, True))
            if isinstance(node, PTJoin):
                if node.big is not None:
                    stack.append((node.big, False))
                stack.append((node.small, False))
            elif isinstance(node, PTBoth):
                stack.append((node.right, False))
                stack.append((node.left, False))
            elif isinstance(node, (PTLeftOnly, PTRightOnly)):
                stack.append((node.child, False))
        else:
            if node.kind == "PTHere":
                value = here
            elif isinstance(node, PTJoin):
                big_hash = results.pop() if node.big is not None else None
                small_hash = results.pop()
                value = pt_join_hash(combiners, node.tag, big_hash, small_hash)
            elif isinstance(node, PTBoth):
                right_hash = results.pop()
                left_hash = results.pop()
                value = pt_both_hash(combiners, left_hash, right_hash)
            elif isinstance(node, PTLeftOnly):
                value = pt_left_hash(combiners, results.pop())
            elif isinstance(node, PTRightOnly):
                value = pt_right_hash(combiners, results.pop())
            else:  # pragma: no cover
                raise TypeError(f"unknown postree kind {node.kind}")
            node.hash_cache = (key, value)
            results.append(value)
    assert len(results) == 1
    return results[0]
