"""The paper's contribution: hashing modulo alpha-equivalence.

Public entry points:

* :func:`repro.core.hashed.alpha_hash_all` -- annotate every
  subexpression with an alpha-invariant hash (the final algorithm,
  Sections 4.8 + 5).
* :func:`repro.core.equivalence.equivalence_classes` -- group
  subexpressions into alpha-equivalence classes.
* :class:`repro.core.incremental.IncrementalHasher` -- keep hashes up to
  date across local rewrites (Section 6.3).
* :mod:`repro.core.esummary` -- the invertible Step-1 summaries and
  ``rebuild`` (the correctness argument, Section 4).
* :func:`repro.core.linear_lazy.alpha_hash_all_lazy` -- the Appendix C
  alternative formulation.
"""

from repro.core.combiners import DEFAULT_SEED, HashCombiners, default_combiners
from repro.core.equivalence import EquivalenceClass, equivalence_classes, group_by_hash
from repro.core.esummary import (
    ESummary,
    esummary_equal,
    hash_esummary_tree,
    rebuild_naive,
    rebuild_tagged,
    summarise_all_naive,
    summarise_all_tagged,
    summarise_naive,
    summarise_tagged,
)
from repro.core.hashed import (
    AlphaHashes,
    NodeSummary,
    alpha_hash_all,
    alpha_hash_root,
    summarise_node,
)
from repro.core.incremental import IncrementalHasher, PathError, ReplaceStats
from repro.core.linear_lazy import LazyVarMap, LinearFn, alpha_hash_all_lazy
from repro.core.varmap import HashedVarMap, MapOpStats, VarMapTree, entry_hash

__all__ = [
    "DEFAULT_SEED",
    "HashCombiners",
    "default_combiners",
    "EquivalenceClass",
    "equivalence_classes",
    "group_by_hash",
    "ESummary",
    "esummary_equal",
    "hash_esummary_tree",
    "rebuild_naive",
    "rebuild_tagged",
    "summarise_all_naive",
    "summarise_all_tagged",
    "summarise_naive",
    "summarise_tagged",
    "AlphaHashes",
    "NodeSummary",
    "alpha_hash_all",
    "alpha_hash_root",
    "summarise_node",
    "IncrementalHasher",
    "PathError",
    "ReplaceStats",
    "LazyVarMap",
    "LinearFn",
    "alpha_hash_all_lazy",
    "HashedVarMap",
    "MapOpStats",
    "VarMapTree",
    "entry_hash",
]
