"""Cluster shape: which shard owns which alpha-hash.

The cluster partitions the *class space*, not the corpus: an
equivalence class belongs to exactly one shard, decided by its root
alpha-hash modulo the shard count -- the same key
:class:`~repro.store.ShardedExprStore` stripes on in-process, lifted
to whole nodes.  Because alpha-hashes are uniform by construction
(that is the paper's point), the modulus balances shards without any
placement metadata: ownership is a pure function of the hash, so every
coordinator, node and replica computes the same answer independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ClusterTopology", "TopologyError"]


class TopologyError(ValueError):
    """An unusable cluster description (no shards, duplicate URLs...)."""


@dataclass(frozen=True)
class ClusterTopology:
    """An ordered, fixed set of shard node URLs.

    The position of a URL *is* its shard id: node ``i`` owns every
    class whose root alpha-hash satisfies ``hash % num_shards == i``.
    Order therefore matters and must match the ``--shard-id`` each node
    was started with.
    """

    shard_urls: tuple[str, ...] = field(default_factory=tuple)

    def __init__(self, shard_urls):
        urls = tuple(str(u).rstrip("/") for u in shard_urls)
        if not urls:
            raise TopologyError("a cluster needs at least one shard URL")
        seen = set()
        for url in urls:
            if not url.startswith(("http://", "https://")):
                raise TopologyError(f"shard URL must be http(s): {url!r}")
            if url in seen:
                raise TopologyError(f"duplicate shard URL {url!r}")
            seen.add(url)
        object.__setattr__(self, "shard_urls", urls)

    @property
    def num_shards(self) -> int:
        return len(self.shard_urls)

    def owner_of(self, digest: int) -> int:
        """The shard id owning the class with root alpha-hash ``digest``."""
        return digest % self.num_shards

    def url_of(self, shard_id: int) -> str:
        return self.shard_urls[shard_id]

    def __len__(self) -> int:
        return self.num_shards

    def __iter__(self):
        return iter(self.shard_urls)
