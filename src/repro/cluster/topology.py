"""Cluster shape: which shard owns which alpha-hash.

The cluster partitions the *class space*, not the corpus: an
equivalence class belongs to exactly one shard, decided by its root
alpha-hash modulo the shard count -- the same key
:class:`~repro.store.ShardedExprStore` stripes on in-process, lifted
to whole nodes.  Because alpha-hashes are uniform by construction
(that is the paper's point), the modulus balances shards without any
placement metadata: ownership is a pure function of the hash, so every
coordinator, node and replica computes the same answer independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ClusterTopology", "TopologyError"]


class TopologyError(ValueError):
    """An unusable cluster description (no shards, duplicate URLs...)."""


@dataclass(frozen=True)
class ClusterTopology:
    """An ordered, fixed set of shard node URLs, plus optional replicas.

    The position of a URL *is* its shard id: node ``i`` owns every
    class whose root alpha-hash satisfies ``hash % num_shards == i``.
    Order therefore matters and must match the ``--shard-id`` each node
    was started with.

    ``replicas`` describes the read replicas of each shard -- either a
    sequence of URL sequences aligned with ``shard_urls``, or a mapping
    ``{shard_id: [urls...]}``.  Replicas are nodes started with
    ``--follow <primary-url>``: same shard identity, asynchronously
    tailing the primary's delta feed.  Replica membership never changes
    hash ownership -- ``owner_of`` is a function of the shard *count*
    alone, so adding or removing replicas is always safe.
    """

    shard_urls: tuple[str, ...] = field(default_factory=tuple)
    replica_urls: tuple[tuple[str, ...], ...] = field(default_factory=tuple)

    def __init__(self, shard_urls, replicas=None):
        urls = tuple(str(u).rstrip("/") for u in shard_urls)
        if not urls:
            raise TopologyError("a cluster needs at least one shard URL")
        if replicas is None:
            groups: tuple[tuple[str, ...], ...] = tuple(() for _ in urls)
        elif isinstance(replicas, dict):
            for shard_id in replicas:
                if not 0 <= int(shard_id) < len(urls):
                    raise TopologyError(
                        f"replica for shard {shard_id}, but the cluster "
                        f"has {len(urls)} shard(s)"
                    )
            groups = tuple(
                tuple(str(u).rstrip("/") for u in replicas.get(i, ()))
                for i in range(len(urls))
            )
        else:
            groups = tuple(
                tuple(str(u).rstrip("/") for u in group) for group in replicas
            )
            if len(groups) != len(urls):
                raise TopologyError(
                    f"{len(groups)} replica group(s) for {len(urls)} "
                    f"shard(s); pass one (possibly empty) group per shard"
                )
        seen = set()
        for url in urls + tuple(u for group in groups for u in group):
            if not url.startswith(("http://", "https://")):
                raise TopologyError(f"shard URL must be http(s): {url!r}")
            if url in seen:
                raise TopologyError(f"duplicate shard URL {url!r}")
            seen.add(url)
        object.__setattr__(self, "shard_urls", urls)
        object.__setattr__(self, "replica_urls", groups)

    @property
    def num_shards(self) -> int:
        return len(self.shard_urls)

    @property
    def num_replicas(self) -> int:
        return sum(len(group) for group in self.replica_urls)

    def owner_of(self, digest: int) -> int:
        """The shard id owning the class with root alpha-hash ``digest``."""
        return digest % self.num_shards

    def url_of(self, shard_id: int) -> str:
        return self.shard_urls[shard_id]

    def replicas_of(self, shard_id: int) -> tuple[str, ...]:
        """The replica URLs of one shard (empty tuple when unreplicated)."""
        return self.replica_urls[shard_id]

    def nodes_of(self, shard_id: int) -> tuple[str, ...]:
        """Every URL serving one shard's classes, primary first."""
        return (self.shard_urls[shard_id],) + self.replica_urls[shard_id]

    def __len__(self) -> int:
        return self.num_shards

    def __iter__(self):
        return iter(self.shard_urls)
