"""Distributed hash cluster: coordinator + shard nodes.

The in-process story so far scales the alpha-hash store across cores
(:class:`~repro.store.ShardedExprStore`); this package scales it
across *processes and hosts* with the same partitioning invariant:

* **Shard nodes** are ordinary ``repro serve`` servers started with
  ``--shard-id i --shard-count n``.  Each owns the equivalence classes
  whose root alpha-hash satisfies ``hash % n == i`` and rejects intern
  requests for foreign keys (409), so no class can end up split
  between nodes.

* The **coordinator** (:class:`ClusterCoordinator`, ``repro cluster
  serve``) speaks the same ``/v1`` protocol and routes: hashing fans
  out to any live shard (stateless, bit-identical), interning goes to
  the owner (two-phase: hash, then route by the result), stats fold
  into conserved sums, snapshots merge into one flat store.

* **Replicas** catch up incrementally from a node's
  ``/v1/snapshot/delta?since=V`` (see
  :func:`repro.store.delta_to_bytes`) -- only the classes interned
  after version ``V`` travel, not the whole store.
"""

from repro.cluster.coordinator import ClusterCoordinator, cluster
from repro.cluster.topology import ClusterTopology, TopologyError

__all__ = [
    "ClusterCoordinator",
    "ClusterTopology",
    "TopologyError",
    "cluster",
]
