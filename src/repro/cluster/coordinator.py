"""The cluster front door: one endpoint, many shard nodes.

A :class:`ClusterCoordinator` speaks the same ``/v1`` wire protocol as
a single :class:`~repro.service.server.ReproServer`, so any client
(:class:`~repro.service.client.ServiceClient`, ``RemoteSession``, curl)
can point at a coordinator instead of a node and see *one* logical
store.  Behind it, work is partitioned by the paper's own invariant --
alpha-hashes are canonical and uniform -- exactly like
:class:`~repro.store.ShardedExprStore` stripes in-process, lifted to
whole processes:

* ``/v1/hash`` fans contiguous corpus chunks out to the live shards
  concurrently.  Hashing is stateless and bit-identical on every node
  (same combiner family), so a chunk whose shard dies mid-request is
  simply replayed on another live shard.

* ``/v1/intern`` is two-phase: hash first (fan-out as above), then
  group items by owning shard (``root_hash % shard_count``) and send
  each group to its owner.  Ownership is not negotiable -- if the
  owner is down the coordinator answers **503 naming that shard**
  rather than silently interning the class somewhere it does not
  belong.  Returned ids are shard-local; the reply carries ``owners``
  so ``(owner, id)`` is globally unique.

* ``/v1/stats`` requires every shard and folds the per-shard store
  counters elementwise, so cluster totals are conserved sums of node
  counters.  ``/v1/metrics`` and ``/v1/health`` are best-effort and
  report down shards instead of failing.

* ``/v1/snapshot`` downloads every shard's snapshot and merges the
  union into one flat store -- bit-identical hashes, coordinator-local
  ids -- so "save the cluster" degenerates to the single-node flow.

Failure policy: every shard call is bounded (client timeout + bounded
retries with backoff), a failing shard is marked down for ``down_ttl``
seconds so subsequent requests fail fast instead of re-probing, and a
down shard is retried after the TTL lapses.  Nothing here blocks
unboundedly.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import ThreadingHTTPServer
from typing import Callable, Optional

from repro.cluster.topology import ClusterTopology
from repro.core.combiners import HashCombiners
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import _Handler, _RequestError
from repro.store import snapshot_from_bytes, snapshot_to_bytes
from repro.store.store import ExprStore

__all__ = ["ClusterCoordinator", "cluster"]


class _ShardNode:
    """One shard endpoint plus its cached liveness."""

    def __init__(self, index: int, url: str, client: ServiceClient):
        self.index = index
        self.url = url
        self.client = client
        #: Monotonic deadline before which the node is presumed down.
        self.down_until = 0.0
        self.last_error: Optional[str] = None

    @property
    def name(self) -> str:
        return f"shard {self.index} ({self.url})"


class _CoordinatorHandler(_Handler):
    """Coordinator routes over the node handler's HTTP plumbing."""

    server_version = "repro-cluster/1"

    @property
    def coordinator(self) -> "ClusterCoordinator":
        return self.server.service  # type: ignore[attr-defined]

    def do_GET(self) -> None:
        routes = {
            "/v1/health": self._get_health,
            "/v1/stats": self._get_stats,
            "/v1/metrics": self._get_metrics,
            "/v1/snapshot": self._get_snapshot,
        }
        handler = routes.get(self.path.split("?", 1)[0])
        if handler is None:
            self._send_json(404, {"error": f"no such endpoint {self.path!r}"})
            return
        self._dispatch(handler)

    def do_POST(self) -> None:
        routes = {
            "/v1/hash": self._post_hash,
            "/v1/intern": self._post_intern,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._send_json(404, {"error": f"no such endpoint {self.path!r}"})
            return
        self._dispatch(handler)

    def _get_health(self) -> None:
        self._send_json(200, self.coordinator.health())

    def _get_stats(self) -> None:
        self._send_json(200, self.coordinator.folded_stats())

    def _get_metrics(self) -> None:
        self._send_json(200, self.coordinator.folded_metrics())

    def _get_snapshot(self) -> None:
        data = self.coordinator.merged_snapshot_bytes()
        self.coordinator.count_request()
        self._send(200, data, "application/octet-stream")

    def _wire_payload(self) -> tuple[list, dict]:
        payload = self._read_json()
        docs = payload.get("exprs")
        if not isinstance(docs, list):
            raise _RequestError(400, "body must carry an 'exprs' list")
        hints = {
            name: payload[name]
            for name in ("backend", "engine", "workers", "mode")
            if payload.get(name) is not None
        }
        return docs, hints

    def _post_hash(self) -> None:
        docs, hints = self._wire_payload()
        coordinator = self.coordinator
        hashes, fanout = coordinator.hash_wire(docs, hints)
        coordinator.count_request()
        self._send_json(
            200,
            {
                "hashes": hashes,
                "plan": {
                    "cluster": {
                        "shard_count": coordinator.topology.num_shards,
                        "fanout": fanout,
                    }
                },
            },
        )

    def _post_intern(self) -> None:
        docs, hints = self._wire_payload()
        coordinator = self.coordinator
        ids, hashes, owners = coordinator.intern_wire(docs, hints)
        coordinator.count_request()
        self._send_json(
            200,
            {
                "ids": ids,
                "hashes": hashes,
                "owners": owners,
                "plan": {
                    "cluster": {
                        "shard_count": coordinator.topology.num_shards,
                        "groups": len(set(owners)),
                    }
                },
            },
        )


class ClusterCoordinator:
    """Route one logical store's traffic across shard nodes.

    Usable embedded (tests) or via ``repro cluster serve``::

        with ClusterCoordinator([node0.url, node1.url], port=0) as coord:
            client = ServiceClient(coord.url)
            client.hash_corpus(corpus)    # fans out, bit-identical
            client.intern_many(corpus)    # routed to owning shards
    """

    def __init__(
        self,
        shard_urls,
        host: str = "127.0.0.1",
        port: int = 8656,
        *,
        timeout: float = 30.0,
        retries: int = 2,
        backoff: float = 0.1,
        down_ttl: float = 2.0,
        verbose: bool = False,
    ):
        self.topology = ClusterTopology(shard_urls)
        self.verbose = verbose
        self.down_ttl = down_ttl
        self.nodes = [
            _ShardNode(
                index,
                url,
                ServiceClient(
                    url, timeout=timeout, retries=retries, backoff=backoff
                ),
            )
            for index, url in enumerate(self.topology)
        ]
        self.lock = threading.Lock()
        self.requests_served = 0
        self.started_at = time.monotonic()
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self.nodes)),
            thread_name_prefix="repro-cluster",
        )
        self._httpd = ThreadingHTTPServer((host, port), _CoordinatorHandler)
        self._httpd.daemon_threads = True
        self._httpd.service = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._closed = False

    # -- lifecycle (mirrors ReproServer) ---------------------------------------

    def count_request(self) -> None:
        with self.lock:
            self.requests_served += 1

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ClusterCoordinator":
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-cluster-serve",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._serving = True
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop serving and release the socket; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._serving:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._pool.shutdown(wait=False, cancel_futures=True)

    shutdown = close

    def __enter__(self) -> "ClusterCoordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- node liveness ---------------------------------------------------------

    def _usable(self, node: _ShardNode) -> bool:
        return node.down_until <= time.monotonic()

    def _mark_down(self, node: _ShardNode, exc: Exception) -> None:
        with self.lock:
            node.down_until = time.monotonic() + self.down_ttl
            node.last_error = str(exc)

    def _mark_up(self, node: _ShardNode) -> None:
        if node.down_until or node.last_error:
            with self.lock:
                node.down_until = 0.0
                node.last_error = None

    def _call(self, node: _ShardNode, fn: Callable[[ServiceClient], object]):
        """Run ``fn(node.client)``, folding the outcome into liveness.

        A connection failure or 5xx marks the node down for
        ``down_ttl`` (so the *next* request fails fast instead of
        re-probing a corpse); 4xx is the shard answering fine and
        disagreeing, which is not a liveness signal.
        """
        try:
            result = fn(node.client)
        except ServiceError as exc:
            if exc.status is None or exc.status >= 500:
                self._mark_down(node, exc)
            raise
        self._mark_up(node)
        return result

    @staticmethod
    def _is_liveness_failure(exc: ServiceError) -> bool:
        return exc.status is None or exc.status >= 500

    # -- fan-out primitives ----------------------------------------------------

    def _fan_all(self, fn: Callable[[ServiceClient], object], what: str):
        """``fn`` on *every* shard, in shard order; all must answer.

        Used where the reply is only meaningful when complete (stats
        conservation, snapshot union): a dead shard surfaces as a 503
        naming it, never as a silently partial answer.
        """
        futures = [
            self._pool.submit(self._call, node, fn) for node in self.nodes
        ]
        results = []
        failure: Optional[_RequestError] = None
        for node, future in zip(self.nodes, futures):
            try:
                results.append(future.result())
            except ServiceError as exc:
                if failure is None:
                    failure = _RequestError(
                        503 if self._is_liveness_failure(exc) else 502,
                        f"{what} needs every shard, but {node.name} "
                        f"failed: {exc}",
                    )
        if failure is not None:
            raise failure
        return results

    def _fan_best_effort(self, fn: Callable[[ServiceClient], object]):
        """``fn`` on every shard; per-node ``(reply, error)`` pairs."""
        futures = [
            self._pool.submit(self._call, node, fn) for node in self.nodes
        ]
        out = []
        for future in futures:
            try:
                out.append((future.result(), None))
            except ServiceError as exc:
                out.append((None, str(exc)))
        return out

    # -- hashing: stateless, re-routable ---------------------------------------

    def hash_wire(self, docs: list, hints: Optional[dict] = None):
        """Root hashes of wire documents, fanned across live shards.

        Returns ``(hashes, fanout)`` where ``fanout`` is the number of
        chunks dispatched.  Any shard can hash any chunk (bit-identical
        combiners everywhere), so a chunk only fails when *no* shard is
        reachable -- then a 503 says so.
        """
        hints = dict(hints or {})
        if not docs:
            return [], 0
        now = time.monotonic()
        preferred = [n.index for n in self.nodes if n.down_until <= now]
        if not preferred:
            preferred = [n.index for n in self.nodes]
        chunks = min(len(preferred), len(docs))
        bounds = [
            (len(docs) * i // chunks, len(docs) * (i + 1) // chunks)
            for i in range(chunks)
        ]
        futures = [
            self._pool.submit(
                self._hash_chunk, docs[lo:hi], hints, preferred[i]
            )
            for i, (lo, hi) in enumerate(bounds)
        ]
        hashes: list = [None] * len(docs)
        failure: Optional[_RequestError] = None
        for (lo, hi), future in zip(bounds, futures):
            try:
                hashes[lo:hi] = future.result()
            except _RequestError as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
        return hashes, chunks

    def _hash_chunk(self, docs: list, hints: dict, preferred: int) -> list:
        """One chunk on the preferred shard, failing over round-robin."""
        order = self.nodes[preferred:] + self.nodes[:preferred]
        attempted = []
        # First pass sticks to nodes believed up; the second probes the
        # rest (their TTL may have lapsed, or everyone is down and the
        # cache is stale).  Each node is tried at most once per pass.
        for require_usable in (True, False):
            for node in order:
                if node in attempted:
                    continue
                if require_usable and not self._usable(node):
                    continue
                attempted.append(node)
                try:
                    reply = self._call(
                        node, lambda c: c.hash_wire(docs, hints)
                    )
                    return reply["hashes"]
                except ServiceError as exc:
                    if not self._is_liveness_failure(exc):
                        raise _RequestError(
                            exc.status or 502, f"{node.name}: {exc}"
                        ) from None
        raise _RequestError(
            503,
            f"no shard reachable for hashing (tried "
            f"{len(attempted)}/{len(self.nodes)}): last errors "
            + "; ".join(
                f"{n.name}: {n.last_error}" for n in attempted[-2:]
            ),
        )

    # -- interning: ownership is not negotiable --------------------------------

    def intern_wire(self, docs: list, hints: Optional[dict] = None):
        """Two-phase intern: hash everywhere, write at the owner.

        Returns ``(ids, hashes, owners)`` aligned with ``docs``; ids
        are shard-local (``(owners[i], ids[i])`` is globally unique).
        A dead *owner* is a hard 503 naming the shard -- its keys
        cannot be interned anywhere else.
        """
        hints = dict(hints or {})
        hashes, _fanout = self.hash_wire(docs, hints)
        groups: dict[int, list[int]] = {}
        for index, digest in enumerate(hashes):
            groups.setdefault(self.topology.owner_of(digest), []).append(index)
        futures = {
            owner: self._pool.submit(
                self._intern_group, owner, [docs[i] for i in indices], hints
            )
            for owner, indices in groups.items()
        }
        ids: list = [None] * len(docs)
        owners: list = [None] * len(docs)
        failure: Optional[_RequestError] = None
        for owner, indices in groups.items():
            try:
                group_ids = futures[owner].result()
            except _RequestError as exc:
                if failure is None:
                    failure = exc
                continue
            for local, index in zip(group_ids, indices):
                ids[index] = local
                owners[index] = owner
        if failure is not None:
            raise failure
        return ids, hashes, owners

    def _intern_group(self, owner: int, docs: list, hints: dict) -> list:
        node = self.nodes[owner]
        if not self._usable(node):
            raise _RequestError(
                503,
                f"{node.name} owns these keys but is down "
                f"({node.last_error}); retry after its cooldown",
            )
        try:
            reply = self._call(node, lambda c: c.intern_wire(docs, hints))
        except ServiceError as exc:
            if self._is_liveness_failure(exc):
                raise _RequestError(
                    503, f"{node.name} owns these keys but is "
                    f"unreachable: {exc}"
                ) from None
            if exc.status == 409:
                # The node disagrees about ownership: the topology the
                # coordinator serves does not match the --shard-id /
                # --shard-count the nodes were started with.
                raise _RequestError(
                    502,
                    f"{node.name} refused keys the topology says it "
                    f"owns -- shard order mismatch? ({exc})",
                ) from None
            raise _RequestError(exc.status or 502, f"{node.name}: {exc}") \
                from None
        return reply["ids"]

    # -- folded views ----------------------------------------------------------

    def health(self) -> dict:
        per_shard = []
        for node, (reply, error) in zip(
            self.nodes, self._fan_best_effort(lambda c: c.health())
        ):
            entry = {
                "shard": node.index,
                "url": node.url,
                "ok": error is None and bool(reply and reply.get("ok")),
            }
            if reply:
                entry["entries"] = reply.get("entries")
                entry["version"] = reply.get("version")
            if error:
                entry["error"] = error
            per_shard.append(entry)
        return {
            "ok": all(entry["ok"] for entry in per_shard),
            "role": "coordinator",
            "shard_count": self.topology.num_shards,
            "shards": per_shard,
            "requests_served": self.requests_served,
        }

    def folded_stats(self) -> dict:
        """Cluster stats as conserved sums of per-shard counters."""
        replies = self._fan_all(lambda c: c.stats(), what="stats")
        totals: dict = {}
        entries = 0
        for reply in replies:
            entries += reply.get("entries", 0)
            for key, value in (reply.get("store") or {}).items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        first = replies[0]
        return {
            "role": "coordinator",
            "backend": first.get("backend"),
            "bits": first.get("bits"),
            "seed": first.get("seed"),
            "shard_count": self.topology.num_shards,
            "entries": entries,
            "store": totals,
            "shards": replies,
            "requests_served": self.requests_served,
        }

    def folded_metrics(self) -> dict:
        per_shard = []
        for node, (reply, error) in zip(
            self.nodes, self._fan_best_effort(lambda c: c.metrics())
        ):
            entry = {"shard": node.index, "url": node.url, "ok": error is None}
            if reply is not None:
                entry["metrics"] = reply
            if error:
                entry["error"] = error
            per_shard.append(entry)
        return {
            "ok": all(entry["ok"] for entry in per_shard),
            "role": "coordinator",
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "requests_served": self.requests_served,
            "shard_count": self.topology.num_shards,
            "shards": per_shard,
        }

    def merged_snapshot_bytes(self) -> bytes:
        """Union of every shard's classes as one flat snapshot.

        Hashes are preserved bit-for-bit by ``merge_store``; ids are
        re-assigned in the merged store (shard-local ids don't survive,
        by design -- hashes are the global names here).
        """
        datas = self._fan_all(lambda c: c.fetch_snapshot(), what="snapshot")
        stores = [snapshot_from_bytes(data)[0] for data in datas]
        merged = ExprStore(
            HashCombiners(
                bits=stores[0].combiners.bits, seed=stores[0].combiners.seed
            )
        )
        for store in stores:
            merged.merge_store(store)
        return snapshot_to_bytes(
            merged,
            meta={
                "cluster": {
                    "shard_count": self.topology.num_shards,
                    "shard_entries": [len(s) for s in stores],
                }
            },
        )


def cluster(argv=None) -> int:
    """The ``repro cluster`` entry point (see :mod:`repro.cli`)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro cluster",
        description="Run or inspect a distributed hash cluster: a "
        "coordinator front door routing /v1 traffic across repro serve "
        "shard nodes by alpha-hash ownership.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser(
        "serve", help="run a coordinator over already-running shard nodes"
    )
    serve_p.add_argument(
        "--shard",
        action="append",
        required=True,
        metavar="URL",
        dest="shards",
        help="shard node URL; repeat once per shard, in shard-id order "
        "(position i must be the node started with --shard-id i)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8656)
    serve_p.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request timeout towards a shard, seconds",
    )
    serve_p.add_argument(
        "--retries", type=int, default=2,
        help="bounded retries per shard request (backoff doubles, jittered)",
    )
    serve_p.add_argument(
        "--backoff", type=float, default=0.1,
        help="first retry delay in seconds",
    )
    serve_p.add_argument(
        "--down-ttl", type=float, default=2.0,
        help="seconds a failed shard is presumed down (fail fast window)",
    )
    serve_p.add_argument("--verbose", action="store_true")

    status_p = sub.add_parser(
        "status", help="print a coordinator's folded /v1/metrics"
    )
    status_p.add_argument("--url", required=True, help="coordinator URL")
    status_p.add_argument("--timeout", type=float, default=10.0)

    args = parser.parse_args(argv)

    if args.command == "status":
        import json as _json

        client = ServiceClient(args.url, timeout=args.timeout, retries=0)
        print(_json.dumps(client.metrics(), indent=2, sort_keys=True))
        return 0

    coordinator = ClusterCoordinator(
        args.shards,
        host=args.host,
        port=args.port,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        down_ttl=args.down_ttl,
        verbose=args.verbose,
    )
    print(
        f"repro cluster serve: {coordinator.url} fronting "
        f"{coordinator.topology.num_shards} shard(s): "
        + ", ".join(coordinator.topology),
        flush=True,
    )

    import signal

    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    installed = False
    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
        installed = True
    except ValueError:  # pragma: no cover - not the main thread
        pass
    try:
        coordinator.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if installed and previous is not None:
            signal.signal(signal.SIGTERM, previous)
        coordinator.close()
    return 0
