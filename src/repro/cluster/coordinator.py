"""The cluster front door: one endpoint, many shard nodes.

A :class:`ClusterCoordinator` speaks the same ``/v1`` wire protocol as
a single :class:`~repro.service.server.ReproServer`, so any client
(:class:`~repro.service.client.ServiceClient`, ``RemoteSession``, curl)
can point at a coordinator instead of a node and see *one* logical
store.  Behind it, work is partitioned by the paper's own invariant --
alpha-hashes are canonical and uniform -- exactly like
:class:`~repro.store.ShardedExprStore` stripes in-process, lifted to
whole processes:

* ``/v1/hash`` fans contiguous corpus chunks out to the live shards
  concurrently.  Hashing is stateless and bit-identical on every node
  (same combiner family), so a chunk whose shard dies mid-request is
  simply replayed on another live shard.

* ``/v1/intern`` is two-phase: hash first (fan-out as above), then
  group items by owning shard (``root_hash % shard_count``) and send
  each group to its owner.  Ownership is not negotiable -- if the
  owner is down the coordinator answers **503 naming that shard**
  rather than silently interning the class somewhere it does not
  belong.  Returned ids are shard-local; the reply carries ``owners``
  so ``(owner, id)`` is globally unique.

* ``/v1/stats`` requires every shard and folds the per-shard store
  counters elementwise, so cluster totals are conserved sums of node
  counters.  ``/v1/metrics`` and ``/v1/health`` are best-effort and
  report down shards instead of failing.

* ``/v1/snapshot`` downloads every shard's snapshot and merges the
  union into one flat store -- bit-identical hashes, coordinator-local
  ids -- so "save the cluster" degenerates to the single-node flow.

* ``/v1/session/*`` (streaming edit sessions) is **sticky**: the open
  picks a live node (hashing is ownership-free, so any node can host
  a hash-only session) and every later edit/report/close for that
  session id is forwarded to the same node, where the annotation trees
  live.  Session state is in-process on its node, so it does not
  survive that node: if the owner dies (or the node expired the
  session), the coordinator drops the route and answers **409** --
  the client reopens with its current corpus and replays, exactly the
  TTL-expiry contract of a single node.

Failure policy: every shard call is bounded (client timeout + bounded
retries with backoff, all inside an optional per-request ``budget``),
and each node carries a circuit breaker -- a failure opens it for
``down_ttl`` seconds so subsequent requests fail fast, with half-open
health probes (at most one per ``probe_interval``) so a node that
comes back early rejoins on the next touch rather than after the full
TTL.  With replicas configured (nodes started with ``--follow``),
*reads* fail over to the freshest reachable replica transparently,
and a primary that stays down for a full ``down_ttl`` is replaced by
an in-sync replica (health version >= the last acknowledged write) as
the shard's write target -- promotion is sticky and never moves
ownership, only which node answers for it.  Nothing here blocks
unboundedly.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http.server import ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import parse_qs, urlsplit

from repro.cluster.topology import ClusterTopology
from repro.core.combiners import HashCombiners
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import _Handler, _RequestError
from repro.store import snapshot_from_bytes, snapshot_to_bytes
from repro.store.store import ExprStore

__all__ = ["ClusterCoordinator", "cluster"]


class _ShardNode:
    """One endpoint serving a shard's classes, plus its circuit breaker.

    The breaker is the classic three-state machine folded into two
    timestamps: closed (``down_until`` in the past), open (``down_until``
    in the future -- calls fail fast), and half-open (``next_probe_at``
    reached -- the next touch spends one cheap health probe instead of
    serving stale 503s for the rest of the TTL).
    """

    def __init__(
        self, shard: int, url: str, client: ServiceClient,
        probe_client: ServiceClient, role: str,
    ):
        self.shard = shard
        self.url = url
        self.client = client
        #: Short-timeout, zero-retry client for liveness probes only.
        self.probe_client = probe_client
        self.role = role  # "primary" | "replica"
        #: Monotonic deadline before which the node is presumed down.
        self.down_until = 0.0  # guarded-by: ClusterCoordinator.lock
        #: When the current outage started (None while up).
        self.down_since: Optional[float] = None  # guarded-by: ClusterCoordinator.lock
        #: Earliest moment a touch may spend a health probe on this node.
        self.next_probe_at = 0.0  # guarded-by: ClusterCoordinator.lock
        self.last_error: Optional[str] = None  # guarded-by: ClusterCoordinator.lock
        self.consecutive_failures = 0  # guarded-by: ClusterCoordinator.lock
        #: Up->down transitions (circuit-breaker opens), monotone.
        self.breaker_opens = 0  # guarded-by: ClusterCoordinator.lock
        #: Highest store version observed in any of this node's replies.
        self.version = 0

    @property
    def name(self) -> str:
        if self.role == "replica":
            return f"replica of shard {self.shard} ({self.url})"
        return f"shard {self.shard} ({self.url})"


class _ShardGroup:
    """A shard's replica set: configured primary first, then replicas.

    ``active`` indexes the node currently taking *writes*.  It starts at
    the configured primary and moves only by promotion (primary down for
    a full ``down_ttl`` with an in-sync replica available).  Promotion
    is sticky: a primary that comes back after its replacement has
    acknowledged writes is stale by definition, so it rejoins as a read
    candidate only, and re-seating it is an operator action.
    """

    def __init__(self, index: int, nodes: list[_ShardNode]):
        self.index = index
        self.nodes = nodes
        self.active = 0  # guarded-by: ClusterCoordinator.lock
        #: Highest version this coordinator has acknowledged a write at;
        #: the in-sync bar a replica must clear to be promotable.
        self.acked_version = 0  # guarded-by: ClusterCoordinator.lock
        #: Reads served by a non-active node because the active failed.
        self.failovers = 0  # guarded-by: ClusterCoordinator.lock
        self.promotions = 0  # guarded-by: ClusterCoordinator.lock

    @property
    def active_node(self) -> _ShardNode:
        return self.nodes[self.active]

    @property
    def replicas(self) -> list[_ShardNode]:
        return [n for i, n in enumerate(self.nodes) if i != self.active]


class _CoordinatorHandler(_Handler):
    """Coordinator routes over the node handler's HTTP plumbing."""

    server_version = "repro-cluster/1"

    @property
    def coordinator(self) -> "ClusterCoordinator":
        return self.server.service  # type: ignore[attr-defined]

    def do_GET(self) -> None:
        split = urlsplit(self.path)
        self.query = parse_qs(split.query)
        routes = {
            "/v1/health": self._get_health,
            "/v1/stats": self._get_stats,
            "/v1/metrics": self._get_metrics,
            "/v1/snapshot": self._get_snapshot,
            "/v1/session/report": self._get_session_report,
        }
        handler = routes.get(split.path)
        if handler is None:
            self._send_json(404, {"error": f"no such endpoint {self.path!r}"})
            return
        self._dispatch(handler)

    def do_POST(self) -> None:
        routes = {
            "/v1/hash": self._post_hash,
            "/v1/intern": self._post_intern,
            "/v1/session/open": self._post_session_open,
            "/v1/session/edit": self._post_session_edit,
            "/v1/session/close": self._post_session_close,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._send_json(404, {"error": f"no such endpoint {self.path!r}"})
            return
        self._dispatch(handler)

    def _get_health(self) -> None:
        self._send_json(200, self.coordinator.health())

    def _get_stats(self) -> None:
        self._send_json(200, self.coordinator.folded_stats())

    def _get_metrics(self) -> None:
        self._send_json(200, self.coordinator.folded_metrics())

    def _get_snapshot(self) -> None:
        data = self.coordinator.merged_snapshot_bytes()
        self.coordinator.count_request()
        self._send(200, data, "application/octet-stream")

    def _wire_payload(self) -> tuple[list, dict]:
        payload = self._read_json()
        docs = payload.get("exprs")
        if not isinstance(docs, list):
            raise _RequestError(400, "body must carry an 'exprs' list")
        hints = {
            name: payload[name]
            for name in ("backend", "engine", "workers", "mode")
            if payload.get(name) is not None
        }
        return docs, hints

    def _post_hash(self) -> None:
        docs, hints = self._wire_payload()
        coordinator = self.coordinator
        hashes, fanout = coordinator.hash_wire(docs, hints)
        coordinator.count_request()
        self._send_json(
            200,
            {
                "hashes": hashes,
                "plan": {
                    "cluster": {
                        "shard_count": coordinator.topology.num_shards,
                        "fanout": fanout,
                    }
                },
            },
        )

    def _post_intern(self) -> None:
        docs, hints = self._wire_payload()
        coordinator = self.coordinator
        ids, hashes, owners = coordinator.intern_wire(docs, hints)
        coordinator.count_request()
        self._send_json(
            200,
            {
                "ids": ids,
                "hashes": hashes,
                "owners": owners,
                "plan": {
                    "cluster": {
                        "shard_count": coordinator.topology.num_shards,
                        "groups": len(set(owners)),
                    }
                },
            },
        )

    # -- streaming edit sessions (sticky routing) ------------------------------

    def _post_session_open(self) -> None:
        payload = self._read_json()
        coordinator = self.coordinator
        reply, node = coordinator.session_open_wire(payload)
        coordinator.count_request()
        reply["node"] = node.url
        reply["shard"] = node.shard
        self._send_json(200, reply)

    def _post_session_edit(self) -> None:
        payload = self._read_json()
        reply = self.coordinator.session_forward(
            "edit", payload.get("session"), payload
        )
        self.coordinator.count_request()
        self._send_json(200, reply)

    def _post_session_close(self) -> None:
        payload = self._read_json()
        reply = self.coordinator.session_forward(
            "close", payload.get("session"), payload
        )
        self.coordinator.count_request()
        self._send_json(200, reply)

    def _get_session_report(self) -> None:
        raw = self.query.get("session", [])
        if len(raw) != 1:
            raise _RequestError(400, "exactly one 'session' parameter required")
        reply = self.coordinator.session_forward("report", raw[0], None)
        self.coordinator.count_request()
        self._send_json(200, reply)


class ClusterCoordinator:
    """Route one logical store's traffic across shard nodes.

    Usable embedded (tests) or via ``repro cluster serve``::

        with ClusterCoordinator([node0.url, node1.url], port=0) as coord:
            client = ServiceClient(coord.url)
            client.hash_corpus(corpus)    # fans out, bit-identical
            client.intern_many(corpus)    # routed to owning shards
    """

    def __init__(
        self,
        shard_urls,
        host: str = "127.0.0.1",
        port: int = 8656,
        *,
        replicas=None,
        timeout: float = 30.0,
        retries: int = 2,
        backoff: float = 0.1,
        down_ttl: float = 2.0,
        budget: Optional[float] = None,
        probe_interval: float = 0.25,
        verbose: bool = False,
    ):
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be > 0 seconds, got {budget}")
        self.topology = ClusterTopology(shard_urls, replicas=replicas)
        self.verbose = verbose
        self.down_ttl = down_ttl
        #: Total wall-clock allowance per incoming request: every retry,
        #: failover hop and promotion probe must fit inside it.
        self.budget = budget
        self.probe_interval = probe_interval

        def _node(shard: int, url: str, role: str) -> _ShardNode:
            return _ShardNode(
                shard,
                url,
                ServiceClient(
                    url,
                    timeout=timeout,
                    retries=retries,
                    backoff=backoff,
                    deadline=budget,
                ),
                ServiceClient(url, timeout=min(1.0, timeout), retries=0),
                role,
            )

        self.groups = [
            _ShardGroup(
                index,
                [_node(index, url, "primary")]
                + [
                    _node(index, r, "replica")
                    for r in self.topology.replicas_of(index)
                ],
            )
            for index, url in enumerate(self.topology)
        ]
        #: Every node in the cluster, primaries and replicas alike --
        #: the candidate pool for ownership-free work (hashing).
        self.nodes = [node for group in self.groups for node in group.nodes]
        self.lock = threading.Lock()
        self.requests_served = 0  # guarded-by: lock
        #: sid -> node hosting that streaming session (sticky: the
        #: annotation trees live in that node's process).
        self.session_routes: dict[str, _ShardNode] = {}  # guarded-by: lock
        self._session_rr = 0  # guarded-by: lock
        #: Sessions dropped because their node died or expired them.
        self.sessions_lost = 0  # guarded-by: lock
        self.started_at = time.monotonic()
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self.nodes)),
            thread_name_prefix="repro-cluster",
        )
        self._httpd = ThreadingHTTPServer((host, port), _CoordinatorHandler)
        self._httpd.daemon_threads = True
        self._httpd.service = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._closed = False

    # -- lifecycle (mirrors ReproServer) ---------------------------------------

    def count_request(self) -> None:
        with self.lock:
            self.requests_served += 1

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ClusterCoordinator":
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-cluster-serve",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._serving = True
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop serving and release the socket; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._serving:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._pool.shutdown(wait=False, cancel_futures=True)
        for node in self.nodes:
            node.client.close()
            node.probe_client.close()

    shutdown = close

    def __enter__(self) -> "ClusterCoordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- node liveness / circuit breakers --------------------------------------

    def _usable(self, node: _ShardNode) -> bool:
        """Is the node worth sending a request to right now?

        A node inside its down-TTL is normally skipped (breaker open,
        fail fast), but once per ``probe_interval`` a touch spends one
        cheap health probe instead -- so a node that comes back early is
        back in rotation on the next touch, not after the full TTL.
        """
        now = time.monotonic()
        if node.down_until <= now:
            return True
        if now < node.next_probe_at:
            return False
        with self.lock:
            if now < node.next_probe_at:  # lost the probe race
                return False
            node.next_probe_at = now + self.probe_interval
        try:
            reply = node.probe_client.health()
        except ServiceError:
            return False
        self._note_version(node, reply.get("version"))
        self._mark_up(node)
        return True

    def _mark_down(self, node: _ShardNode, exc: Exception) -> None:
        with self.lock:
            now = time.monotonic()
            if node.down_since is None:
                node.down_since = now
                node.breaker_opens += 1
            node.consecutive_failures += 1
            node.down_until = now + self.down_ttl
            node.next_probe_at = now + self.probe_interval
            node.last_error = str(exc)

    def _mark_up(self, node: _ShardNode) -> None:
        if node.down_until or node.last_error or node.down_since is not None:
            with self.lock:
                node.down_until = 0.0
                node.down_since = None
                node.next_probe_at = 0.0
                node.consecutive_failures = 0
                node.last_error = None

    def _note_version(self, node: _ShardNode, version) -> None:
        if isinstance(version, int):
            node.version = max(node.version, version)

    def _call(self, node: _ShardNode, fn: Callable[[ServiceClient], object]):
        """Run ``fn(node.client)``, folding the outcome into liveness.

        A connection failure or 5xx marks the node down for
        ``down_ttl`` (so the *next* request fails fast instead of
        re-probing a corpse); 4xx is the shard answering fine and
        disagreeing, which is not a liveness signal.
        """
        try:
            result = fn(node.client)
        except ServiceError as exc:
            if exc.status is None or exc.status >= 500:
                self._mark_down(node, exc)
            raise
        self._mark_up(node)
        if isinstance(result, dict):
            self._note_version(node, result.get("version"))
        return result

    @staticmethod
    def _is_liveness_failure(exc: ServiceError) -> bool:
        return exc.status is None or exc.status >= 500

    # -- request budget --------------------------------------------------------

    def _deadline(self) -> Optional[float]:
        """The absolute budget deadline for a request starting now."""
        return None if self.budget is None else time.monotonic() + self.budget

    @staticmethod
    def _budget_spent(deadline_at: Optional[float]) -> bool:
        return deadline_at is not None and time.monotonic() >= deadline_at

    # -- read failover ---------------------------------------------------------

    def _read_order(self, group: _ShardGroup) -> list[_ShardNode]:
        """Read candidates: active first, then replicas freshest-first."""
        replicas = sorted(
            group.replicas, key=lambda n: n.version, reverse=True
        )
        return [group.active_node] + replicas

    def _call_group(
        self,
        group: _ShardGroup,
        fn: Callable[[ServiceClient], object],
        deadline_at: Optional[float] = None,
    ):
        """A *read* against one shard, failing over across its replica
        set.  Liveness failures move to the next freshest node; a node
        answering with a 4xx is the authoritative answer and re-raises.
        Raises the last liveness error once every candidate (or the
        budget) is exhausted.
        """
        last_exc: Optional[ServiceError] = None
        for node in self._read_order(group):
            if self._budget_spent(deadline_at):
                break
            if not self._usable(node):
                continue
            try:
                result = self._call(node, fn)
            except ServiceError as exc:
                if not self._is_liveness_failure(exc):
                    raise
                last_exc = exc
                continue
            if node is not group.active_node:
                with self.lock:
                    group.failovers += 1
            return result
        if last_exc is not None:
            raise last_exc
        raise ServiceError(
            f"shard {group.index}: no node reachable "
            f"({'budget exhausted' if self._budget_spent(deadline_at) else 'all breakers open'})"
        )

    # -- fan-out primitives ----------------------------------------------------

    def _fan_all(self, fn: Callable[[ServiceClient], object], what: str):
        """``fn`` on *every* shard, in shard order; all must answer.

        Each shard's call fails over across its replica set, so a dead
        primary with a live replica still contributes.  Used where the
        reply is only meaningful when complete (stats conservation,
        snapshot union): a fully-dead shard surfaces as a 503 naming
        it, never as a silently partial answer.
        """
        deadline_at = self._deadline()
        futures = [
            self._pool.submit(self._call_group, group, fn, deadline_at)
            for group in self.groups
        ]
        results = []
        failure: Optional[_RequestError] = None
        for group, future in zip(self.groups, futures):
            try:
                results.append(future.result())
            except ServiceError as exc:
                if failure is None:
                    failure = _RequestError(
                        503 if self._is_liveness_failure(exc) else 502,
                        f"{what} needs every shard, but shard "
                        f"{group.index} failed: {exc}",
                    )
        if failure is not None:
            raise failure
        return results

    def _fan_best_effort(
        self, nodes: list[_ShardNode], fn: Callable[[ServiceClient], object]
    ):
        """``fn`` on each given node; per-node ``(reply, error)`` pairs."""
        futures = [self._pool.submit(self._call, node, fn) for node in nodes]
        out = []
        for future in futures:
            try:
                out.append((future.result(), None))
            except ServiceError as exc:
                out.append((None, str(exc)))
        return out

    # -- hashing: stateless, re-routable ---------------------------------------

    def hash_wire(self, docs: list, hints: Optional[dict] = None):
        """Root hashes of wire documents, fanned across live shards.

        Returns ``(hashes, fanout)`` where ``fanout`` is the number of
        chunks dispatched.  Any shard can hash any chunk (bit-identical
        combiners everywhere), so a chunk only fails when *no* shard is
        reachable -- then a 503 says so.
        """
        hints = dict(hints or {})
        if not docs:
            return [], 0
        deadline_at = self._deadline()
        now = time.monotonic()
        # Hashing is ownership-free, so replicas count as capacity too.
        preferred = [
            i for i, n in enumerate(self.nodes) if n.down_until <= now
        ]
        if not preferred:
            preferred = list(range(len(self.nodes)))
        chunks = min(len(preferred), len(docs))
        bounds = [
            (len(docs) * i // chunks, len(docs) * (i + 1) // chunks)
            for i in range(chunks)
        ]
        futures = [
            self._pool.submit(
                self._hash_chunk, docs[lo:hi], hints, preferred[i],
                deadline_at,
            )
            for i, (lo, hi) in enumerate(bounds)
        ]
        hashes: list = [None] * len(docs)
        failure: Optional[_RequestError] = None
        for (lo, hi), future in zip(bounds, futures):
            try:
                hashes[lo:hi] = future.result()
            except _RequestError as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
        return hashes, chunks

    def _hash_chunk(
        self, docs: list, hints: dict, preferred: int,
        deadline_at: Optional[float] = None,
    ) -> list:
        """One chunk on the preferred node, failing over round-robin
        across *every* node (replicas hash bit-identically)."""
        order = self.nodes[preferred:] + self.nodes[:preferred]
        attempted = []
        # First pass sticks to nodes believed up; the second probes the
        # rest (their TTL may have lapsed, or everyone is down and the
        # cache is stale).  Each node is tried at most once per pass,
        # and never past the request's budget deadline.
        for require_usable in (True, False):
            for node in order:
                if node in attempted:
                    continue
                if self._budget_spent(deadline_at):
                    raise _RequestError(
                        503,
                        f"timeout budget ({self.budget}s) exhausted after "
                        f"{len(attempted)} node(s); last errors "
                        + "; ".join(
                            f"{n.name}: {n.last_error}"
                            for n in attempted[-2:]
                        ),
                    )
                if require_usable and not self._usable(node):
                    continue
                attempted.append(node)
                try:
                    reply = self._call(
                        node, lambda c: c.hash_wire(docs, hints)
                    )
                    return reply["hashes"]
                except ServiceError as exc:
                    if not self._is_liveness_failure(exc):
                        raise _RequestError(
                            exc.status or 502, f"{node.name}: {exc}"
                        ) from None
        raise _RequestError(
            503,
            f"no shard reachable for hashing (tried "
            f"{len(attempted)}/{len(self.nodes)}): last errors "
            + "; ".join(
                f"{n.name}: {n.last_error}" for n in attempted[-2:]
            ),
        )

    # -- interning: ownership is not negotiable --------------------------------

    def intern_wire(self, docs: list, hints: Optional[dict] = None):
        """Two-phase intern: hash everywhere, write at the owner.

        Returns ``(ids, hashes, owners)`` aligned with ``docs``; ids
        are shard-local (``(owners[i], ids[i])`` is globally unique).
        A dead *owner* is a hard 503 naming the shard -- its keys
        cannot be interned anywhere else.
        """
        hints = dict(hints or {})
        deadline_at = self._deadline()
        hashes, _fanout = self.hash_wire(docs, hints)
        groups: dict[int, list[int]] = {}
        for index, digest in enumerate(hashes):
            groups.setdefault(self.topology.owner_of(digest), []).append(index)
        futures = {
            owner: self._pool.submit(
                self._intern_group, owner, [docs[i] for i in indices], hints,
                deadline_at,
            )
            for owner, indices in groups.items()
        }
        ids: list = [None] * len(docs)
        owners: list = [None] * len(docs)
        failure: Optional[_RequestError] = None
        for owner, indices in groups.items():
            try:
                group_ids = futures[owner].result()
            except _RequestError as exc:
                if failure is None:
                    failure = exc
                continue
            for local, index in zip(group_ids, indices):
                ids[index] = local
                owners[index] = owner
        if failure is not None:
            raise failure
        return ids, hashes, owners

    def _write_target(self, group: _ShardGroup) -> _ShardNode:
        """The node that may take this shard's writes *right now*.

        The active node while its breaker is closed (or a half-open
        probe revives it).  Once the active primary has been down for a
        full ``down_ttl``, an in-sync replica (health version at or
        above the last acknowledged write) is promoted and stays
        active.  In the window between failure and promotion this
        raises 503 -- bounded by ``down_ttl``, which is why it must fit
        inside the client's retry deadline.
        """
        node = group.active_node
        if self._usable(node):
            return node
        now = time.monotonic()
        down_since = node.down_since
        if down_since is None or now - down_since < self.down_ttl:
            raise _RequestError(
                503,
                f"{node.name} owns these keys but is down "
                f"({node.last_error}); retry within "
                f"{self.down_ttl:.1f}s or an in-sync replica is promoted",
            )
        promoted = self._promote(group)
        if promoted is None:
            raise _RequestError(
                503,
                f"{node.name} owns these keys and no replica has "
                f"caught up to acked version {group.acked_version}",
            )
        return promoted

    def _promote(self, group: _ShardGroup) -> Optional[_ShardNode]:
        """Seat the freshest in-sync replica as the write target.

        Probes every replica's health live (stale cached versions must
        not decide a promotion) and requires ``version >=
        group.acked_version``: promotion never silently drops an
        acknowledged write.  Returns the new active node, or None when
        no replica qualifies.
        """
        best: Optional[int] = None
        best_version = -1
        for index, node in enumerate(group.nodes):
            if index == group.active:
                continue
            try:
                reply = node.probe_client.health()
            except ServiceError:
                continue
            version = reply.get("version")
            if not isinstance(version, int):
                continue
            self._note_version(node, version)
            self._mark_up(node)
            if version >= group.acked_version and version > best_version:
                best, best_version = index, version
        if best is None:
            return None
        with self.lock:
            if group.active_node.down_since is None:
                # The primary came back between the check and now --
                # keep it; a flapping node must not cause a promotion.
                return group.active_node
            group.active = best
            group.promotions += 1
        node = group.nodes[best]
        if self.verbose:
            print(
                f"repro cluster: promoted {node.name} to primary "
                f"(version {best_version} >= acked {group.acked_version})",
                flush=True,
            )
        return node

    def _intern_group(
        self, owner: int, docs: list, hints: dict,
        deadline_at: Optional[float] = None,
    ) -> list:
        group = self.groups[owner]
        if self._budget_spent(deadline_at):
            raise _RequestError(
                503,
                f"timeout budget ({self.budget}s) exhausted before "
                f"shard {owner}'s intern group was dispatched",
            )
        node = self._write_target(group)
        try:
            reply = self._call(node, lambda c: c.intern_wire(docs, hints))
        except ServiceError as exc:
            if self._is_liveness_failure(exc):
                raise _RequestError(
                    503, f"{node.name} owns these keys but is "
                    f"unreachable: {exc}"
                ) from None
            if exc.status == 409:
                # The node disagrees about ownership: the topology the
                # coordinator serves does not match the --shard-id /
                # --shard-count the nodes were started with.
                raise _RequestError(
                    502,
                    f"{node.name} refused keys the topology says it "
                    f"owns -- shard order mismatch? ({exc})",
                ) from None
            raise _RequestError(exc.status or 502, f"{node.name}: {exc}") \
                from None
        version = reply.get("version")
        if isinstance(version, int):
            with self.lock:
                group.acked_version = max(group.acked_version, version)
        return reply["ids"]

    # -- streaming edit sessions -----------------------------------------------

    def session_open_wire(self, payload: dict):
        """Open a streaming session on a live node; returns
        ``(reply, node)`` and records the sticky route.

        Hosting prefers each shard's active node (their metrics are the
        ones :meth:`folded_metrics` scrapes) round-robin, falling back
        to replicas -- hashing is ownership-free, so any node can hold
        a hash-only session.  A node-side 429 (registry full) passes
        through: capacity is operator configuration, not routing.
        """
        actives = [group.active_node for group in self.groups]
        spares = [n for n in self.nodes if n not in actives]
        with self.lock:
            start = self._session_rr % max(1, len(actives))
            self._session_rr += 1
        candidates = actives[start:] + actives[:start] + spares
        last: Optional[ServiceError] = None
        for node in candidates:
            if not self._usable(node):
                continue
            try:
                reply = self._call(
                    node, lambda c: c.session_wire("open", payload)
                )
            except ServiceError as exc:
                if not self._is_liveness_failure(exc):
                    raise _RequestError(
                        exc.status or 502, f"{node.name}: {exc}"
                    ) from None
                last = exc
                continue
            sid = reply.get("session")
            if isinstance(sid, str):
                with self.lock:
                    self.session_routes[sid] = node
            return reply, node
        raise _RequestError(
            503,
            "no node reachable to host the session"
            + (f" (last error: {last})" if last else ""),
        )

    def session_forward(self, verb: str, sid, payload: Optional[dict]):
        """Forward one session call to the node that owns ``sid``.

        An unknown sid, a dead owner, or the owner having expired the
        session all collapse to 409 -- the uniform "reopen and replay"
        signal -- and the stale route is dropped.
        """
        node = self.session_routes.get(sid) if isinstance(sid, str) else None
        if node is None:
            raise _RequestError(
                409, f"unknown session {sid!r}: reopen and replay"
            )
        if verb == "report":
            call = lambda c: c.session_report(sid)  # noqa: E731
        else:
            call = lambda c: c.session_wire(verb, payload)  # noqa: E731
        try:
            reply = self._call(node, call)
        except ServiceError as exc:
            if self._is_liveness_failure(exc):
                with self.lock:
                    self.session_routes.pop(sid, None)
                    self.sessions_lost += 1
                raise _RequestError(
                    409,
                    f"session {sid!r} lost ({node.name} unreachable): "
                    "reopen and replay",
                ) from None
            if exc.status == 409:
                # The node itself expired or never knew the session.
                with self.lock:
                    self.session_routes.pop(sid, None)
                    self.sessions_lost += 1
            raise _RequestError(
                exc.status or 502, f"{node.name}: {exc}"
            ) from None
        if verb == "close":
            with self.lock:
                self.session_routes.pop(sid, None)
        return reply

    def folded_sessions(self, per_shard: list) -> dict:
        """Sum the nodes' ``sessions`` metrics blocks (plus the
        coordinator's own routing counters); the folded rehash ratio is
        recomputed from the summed numerator/denominator, not averaged."""
        totals = {
            "open": 0,
            "opened": 0,
            "closed": 0,
            "expired": 0,
            "rejected": 0,
            "edits_served": 0,
            "nodes_rehashed": 0,
            "corpus_nodes_edited": 0,
            "pinned_nodes": 0,
        }
        for entry in per_shard:
            block = (entry.get("metrics") or {}).get("sessions")
            if not isinstance(block, dict):
                continue
            for key in totals:
                value = block.get(key)
                if isinstance(value, (int, float)):
                    totals[key] += value
        pool = totals["corpus_nodes_edited"]
        totals["rehash_ratio"] = (
            totals["nodes_rehashed"] / pool if pool else None
        )
        totals["routed"] = len(self.session_routes)
        totals["lost"] = self.sessions_lost
        return totals

    # -- folded views ----------------------------------------------------------

    def health(self) -> dict:
        replies = self._fan_best_effort(self.nodes, lambda c: c.health())
        by_node = dict(zip(self.nodes, replies))
        per_shard = []
        for group in self.groups:
            nodes = []
            for node in group.nodes:
                reply, error = by_node[node]
                entry = {
                    "url": node.url,
                    "role": node.role,
                    "active": node is group.active_node,
                    "ok": error is None and bool(reply and reply.get("ok")),
                }
                if reply:
                    entry["entries"] = reply.get("entries")
                    entry["version"] = reply.get("version")
                if error:
                    entry["error"] = error
                nodes.append(entry)
            active = nodes[group.active]
            per_shard.append(
                {
                    "shard": group.index,
                    "url": group.active_node.url,
                    # The shard is healthy if any of its nodes answers:
                    # reads fail over, and a down primary is promotable.
                    "ok": any(n["ok"] for n in nodes),
                    "active_ok": active["ok"],
                    "entries": active.get("entries"),
                    "version": active.get("version"),
                    "nodes": nodes,
                }
            )
        return {
            "ok": all(entry["ok"] for entry in per_shard),
            "role": "coordinator",
            "shard_count": self.topology.num_shards,
            "replica_count": self.topology.num_replicas,
            "shards": per_shard,
            "requests_served": self.requests_served,
        }

    def folded_stats(self) -> dict:
        """Cluster stats as conserved sums of per-shard counters."""
        replies = self._fan_all(lambda c: c.stats(), what="stats")
        totals: dict = {}
        entries = 0
        for reply in replies:
            entries += reply.get("entries", 0)
            for key, value in (reply.get("store") or {}).items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        first = replies[0]
        return {
            "role": "coordinator",
            "backend": first.get("backend"),
            "bits": first.get("bits"),
            "seed": first.get("seed"),
            "shard_count": self.topology.num_shards,
            "entries": entries,
            "store": totals,
            "shards": replies,
            "requests_served": self.requests_served,
        }

    def folded_metrics(self) -> dict:
        primaries = [group.active_node for group in self.groups]
        per_shard = []
        for group, node, (reply, error) in zip(
            self.groups,
            primaries,
            self._fan_best_effort(primaries, lambda c: c.metrics()),
        ):
            entry = {"shard": group.index, "url": node.url, "ok": error is None}
            if reply is not None:
                entry["metrics"] = reply
            if error:
                entry["error"] = error
            per_shard.append(entry)
        return {
            "ok": all(entry["ok"] for entry in per_shard),
            "role": "coordinator",
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "requests_served": self.requests_served,
            "shard_count": self.topology.num_shards,
            "sessions": self.folded_sessions(per_shard),
            "shards": per_shard,
            "failure_domains": self.failure_domains(),
        }

    def failure_domains(self) -> dict:
        """The cluster's failure-domain telemetry, from cached state.

        No network round-trips: down-sets, breaker counts and versions
        reflect what the traffic and probes have already observed, so
        this is safe to scrape at any rate.
        """
        now = time.monotonic()
        down_shards = []
        shards = []
        for group in self.groups:
            replica_versions = [n.version for n in group.replicas]
            nodes = []
            for node in group.nodes:
                down = node.down_until > now
                entry = {
                    "url": node.url,
                    "role": node.role,
                    "active": node is group.active_node,
                    "down": down,
                    "breaker_opens": node.breaker_opens,
                    "consecutive_failures": node.consecutive_failures,
                    "version": node.version,
                }
                if node.last_error:
                    entry["last_error"] = node.last_error
                nodes.append(entry)
            active_down = group.active_node.down_until > now
            if active_down and not any(
                n.down_until <= now for n in group.replicas
            ):
                down_shards.append(group.index)
            shards.append(
                {
                    "shard": group.index,
                    "active": group.active_node.url,
                    "promoted": group.active != 0,
                    "promotions": group.promotions,
                    "failovers": group.failovers,
                    "breaker_opens": sum(n.breaker_opens for n in group.nodes),
                    "acked_version": group.acked_version,
                    #: How far the laggiest replica trails acknowledged
                    #: writes (None when the shard is unreplicated).
                    "replica_lag": (
                        max(0, group.acked_version - min(replica_versions))
                        if replica_versions
                        else None
                    ),
                    "nodes": nodes,
                }
            )
        return {
            "down_shards": down_shards,
            "budget_s": self.budget,
            "down_ttl_s": self.down_ttl,
            "failovers": sum(g.failovers for g in self.groups),
            "promotions": sum(g.promotions for g in self.groups),
            "breaker_opens": sum(
                n.breaker_opens for g in self.groups for n in g.nodes
            ),
            "shards": shards,
        }

    def merged_snapshot_bytes(self) -> bytes:
        """Union of every shard's classes as one flat snapshot.

        Hashes are preserved bit-for-bit by ``merge_store``; ids are
        re-assigned in the merged store (shard-local ids don't survive,
        by design -- hashes are the global names here).
        """
        datas = self._fan_all(lambda c: c.fetch_snapshot(), what="snapshot")
        stores = [snapshot_from_bytes(data)[0] for data in datas]
        merged = ExprStore(
            HashCombiners(
                bits=stores[0].combiners.bits, seed=stores[0].combiners.seed
            )
        )
        for store in stores:
            merged.merge_store(store)
        return snapshot_to_bytes(
            merged,
            meta={
                "cluster": {
                    "shard_count": self.topology.num_shards,
                    "shard_entries": [len(s) for s in stores],
                }
            },
        )


def cluster(argv=None) -> int:
    """The ``repro cluster`` entry point (see :mod:`repro.cli`)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro cluster",
        description="Run or inspect a distributed hash cluster: a "
        "coordinator front door routing /v1 traffic across repro serve "
        "shard nodes by alpha-hash ownership.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve_p = sub.add_parser(
        "serve", help="run a coordinator over already-running shard nodes"
    )
    serve_p.add_argument(
        "--shard",
        action="append",
        required=True,
        metavar="URL",
        dest="shards",
        help="shard node URL; repeat once per shard, in shard-id order "
        "(position i must be the node started with --shard-id i)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8656)
    serve_p.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request timeout towards a shard, seconds",
    )
    serve_p.add_argument(
        "--retries", type=int, default=2,
        help="bounded retries per shard request (backoff doubles, jittered)",
    )
    serve_p.add_argument(
        "--backoff", type=float, default=0.1,
        help="first retry delay in seconds",
    )
    serve_p.add_argument(
        "--down-ttl", type=float, default=2.0,
        help="seconds a failed shard is presumed down (fail fast window); "
        "also how long a primary must stay down before an in-sync "
        "replica is promoted",
    )
    serve_p.add_argument(
        "--replica",
        action="append",
        default=[],
        metavar="SHARD=URL",
        dest="replicas",
        help="read replica of shard SHARD (a node started with "
        "--follow pointing at that shard); repeatable",
    )
    serve_p.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="total wall-clock allowance per incoming request; all "
        "retries, failover hops and promotion probes must fit inside "
        "(default: unbounded)",
    )
    serve_p.add_argument(
        "--probe-interval", type=float, default=0.25, metavar="SECONDS",
        help="how often a down node may be health-probed on touch "
        "(half-open circuit breaker; default 0.25)",
    )
    serve_p.add_argument("--verbose", action="store_true")

    status_p = sub.add_parser(
        "status", help="print a coordinator's folded /v1/metrics"
    )
    status_p.add_argument("--url", required=True, help="coordinator URL")
    status_p.add_argument("--timeout", type=float, default=10.0)

    args = parser.parse_args(argv)

    if args.command == "status":
        import json as _json

        client = ServiceClient(args.url, timeout=args.timeout, retries=0)
        print(_json.dumps(client.metrics(), indent=2, sort_keys=True))
        return 0

    replicas: dict[int, list[str]] = {}
    for spec in args.replicas:
        shard_text, _, url = spec.partition("=")
        try:
            shard_id = int(shard_text)
        except ValueError:
            shard_id = -1
        if not url or shard_id < 0:
            parser.error(
                f"--replica takes SHARD=URL (e.g. 0=http://host:port), "
                f"got {spec!r}"
            )
        replicas.setdefault(shard_id, []).append(url)

    coordinator = ClusterCoordinator(
        args.shards,
        host=args.host,
        port=args.port,
        replicas=replicas or None,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        down_ttl=args.down_ttl,
        budget=args.budget,
        probe_interval=args.probe_interval,
        verbose=args.verbose,
    )
    replicated = (
        f" + {coordinator.topology.num_replicas} replica(s)"
        if coordinator.topology.num_replicas
        else ""
    )
    print(
        f"repro cluster serve: {coordinator.url} fronting "
        f"{coordinator.topology.num_shards} shard(s){replicated}: "
        + ", ".join(coordinator.topology),
        flush=True,
    )

    import signal

    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    installed = False
    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
        installed = True
    except ValueError:  # pragma: no cover - not the main thread
        pass
    try:
        coordinator.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if installed and previous is not None:
            signal.signal(signal.SIGTERM, previous)
        coordinator.close()
    return 0
