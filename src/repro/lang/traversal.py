"""Iterative traversal utilities over expression trees.

The paper's benchmarks include "wildly unbalanced trees with very deeply
nested lambdas" (Section 7.1) with up to 10^7 nodes: chains far deeper
than CPython's recursion limit.  Every algorithm in this library therefore
traverses with explicit work stacks; this module collects the shared
plumbing.

Paths
-----
Several utilities address subexpressions by *path*: a tuple of child
indices from the root (``()`` is the root itself; for ``App`` index 0 is
the function and 1 the argument; for ``Let`` index 0 is the bound
expression and 1 the body; ``Lam`` has the single child index 0).
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = [
    "postorder",
    "preorder",
    "subexpressions",
    "preorder_with_paths",
    "count_nodes",
    "max_depth",
    "subexpression_at",
    "replace_at",
    "rebuild_bottom_up",
    "all_paths",
]


def preorder(expr: Expr) -> Iterator[Expr]:
    """Yield every node of ``expr``, parents before children."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        # Push right-to-left so children come out left-to-right.
        for child in reversed(node.children()):
            stack.append(child)


def postorder(expr: Expr) -> Iterator[Expr]:
    """Yield every node of ``expr``, children before parents."""
    # Classic two-stack postorder.
    stack = [expr]
    out: list[Expr] = []
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(node.children())
    while out:
        yield out.pop()


def subexpressions(expr: Expr) -> Iterator[Expr]:
    """Alias of :func:`preorder`: every subexpression occurrence, root first."""
    return preorder(expr)


def preorder_with_paths(expr: Expr) -> Iterator[tuple[tuple[int, ...], Expr]]:
    """Yield ``(path, node)`` pairs in preorder."""
    stack: list[tuple[tuple[int, ...], Expr]] = [((), expr)]
    while stack:
        path, node = stack.pop()
        yield path, node
        children = node.children()
        for i in range(len(children) - 1, -1, -1):
            stack.append((path + (i,), children[i]))


def all_paths(expr: Expr) -> list[tuple[int, ...]]:
    """All node paths of ``expr`` in preorder."""
    return [path for path, _ in preorder_with_paths(expr)]


def count_nodes(expr: Expr) -> int:
    """Recount nodes by traversal (should equal ``expr.size``)."""
    n = 0
    for _ in preorder(expr):
        n += 1
    return n


def max_depth(expr: Expr) -> int:
    """Recompute tree height by traversal (should equal ``expr.depth``)."""
    best = 0
    stack: list[tuple[Expr, int]] = [(expr, 1)]
    while stack:
        node, d = stack.pop()
        if d > best:
            best = d
        for child in node.children():
            stack.append((child, d + 1))
    return best


def subexpression_at(expr: Expr, path: Sequence[int]) -> Expr:
    """Return the subexpression at ``path`` (raises IndexError if invalid)."""
    node = expr
    for index in path:
        children = node.children()
        node = children[index]
    return node


def replace_at(expr: Expr, path: Sequence[int], replacement: Expr) -> Expr:
    """Return a copy of ``expr`` with the subtree at ``path`` replaced.

    Only the spine from the root to ``path`` is rebuilt; all off-path
    subtrees are shared with the input.  Runs in O(len(path)).
    """
    spine: list[Expr] = []
    node = expr
    for index in path:
        spine.append(node)
        node = node.children()[index]
    result = replacement
    for index, parent in zip(reversed(path), reversed(spine)):
        result = _replace_child(parent, index, result)
    return result


def _replace_child(parent: Expr, index: int, child: Expr) -> Expr:
    if isinstance(parent, Lam):
        if index != 0:
            raise IndexError("Lam has a single child (index 0)")
        return Lam(parent.binder, child)
    if isinstance(parent, App):
        if index == 0:
            return App(child, parent.arg)
        if index == 1:
            return App(parent.fn, child)
        raise IndexError("App child index must be 0 or 1")
    if isinstance(parent, Let):
        if index == 0:
            return Let(parent.binder, child, parent.body)
        if index == 1:
            return Let(parent.binder, parent.bound, child)
        raise IndexError("Let child index must be 0 or 1")
    raise IndexError(f"{parent.kind} node has no children")


def rebuild_bottom_up(
    expr: Expr,
    make: Callable[[Expr, tuple[Expr, ...]], Expr],
) -> Expr:
    """Rebuild ``expr`` bottom-up, calling ``make(node, new_children)``.

    ``make`` receives the original node and the already-rebuilt children
    and returns the replacement node.  The identity rebuild is
    ``make = lambda node, kids: <same-kind node over kids>``.

    Iterative: children are rebuilt before parents via a postorder stack
    and a result stack, so arbitrarily deep trees are fine.
    """
    results: list[Expr] = []
    for node in postorder(expr):
        arity = len(node.children())
        if arity == 0:
            results.append(make(node, ()))
        else:
            kids = tuple(results[len(results) - arity :])
            del results[len(results) - arity :]
            results.append(make(node, kids))
    assert len(results) == 1
    return results[0]


def identity_rebuild(node: Expr, kids: tuple[Expr, ...]) -> Expr:
    """A ``make`` function for :func:`rebuild_bottom_up` that copies nodes."""
    if isinstance(node, Var):
        return Var(node.name)
    if isinstance(node, Lit):
        return Lit(node.value)
    if isinstance(node, Lam):
        return Lam(node.binder, kids[0])
    if isinstance(node, App):
        return App(kids[0], kids[1])
    if isinstance(node, Let):
        return Let(node.binder, kids[0], kids[1])
    raise TypeError(f"unknown node kind {node.kind}")
