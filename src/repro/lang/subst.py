"""Capture-avoiding substitution.

``substitute(e, {"x": r})`` replaces free occurrences of ``x`` in ``e``
by ``r``, renaming binders in ``e`` where they would capture free
variables of ``r``.  This is the standard workhorse every compiler
rewrite needs; here it underpins the let-inlining pass
(:mod:`repro.apps.inline`), which in turn lets the test-suite check that
CSE's output *means* the same thing by inlining it back.

As everywhere in this library the traversal is iterative, and the
renaming strategy is the conventional one: a binder is renamed only when
an actively substituted term could be captured by it; unchanged subtrees
are returned as the original objects, so a no-op substitution is cheap
and preserves sharing.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.lang.expr import App, Expr, Lam, Let, Lit, Var
from repro.lang.names import NameSupply, all_names, free_vars

__all__ = ["substitute"]

_ABSENT = object()


def substitute(
    expr: Expr,
    mapping: Mapping[str, Expr],
    supply: Optional[NameSupply] = None,
) -> Expr:
    """Replace free occurrences of the mapped names in ``expr``.

    * binders shadow: inside ``\\x. ...`` a mapping for ``x`` is
      suspended;
    * binders are renamed (with fresh names from ``supply``) when an
      inserted term's free variable would otherwise be captured;
    * ``Let`` scoping is respected: the bound expression sees the outer
      mapping, the body sees the binder-adjusted one.

    Returns ``expr`` itself when nothing changed.
    """
    if not mapping:
        return expr

    if supply is None:
        reserved = set(all_names(expr))
        for replacement in mapping.values():
            reserved |= all_names(replacement)
        supply = NameSupply(reserved=reserved)

    # Union of the free variables of all replacement terms: a binder
    # with one of these names might capture, and is renamed.  (Checking
    # against the union rather than only currently-active replacements
    # may rename slightly more than strictly necessary, which is
    # harmless: renaming preserves alpha-equivalence.)
    capture_risk: set[str] = set()
    for replacement in mapping.values():
        capture_risk |= free_vars(replacement)

    # active maps a source name to an Expr (substitute it), a str (the
    # binder was renamed; occurrences become Var of the new name), or is
    # absent (identity).
    active: dict[str, object] = dict(mapping)
    results: list[Expr] = []
    stack: list[tuple[str, object]] = [("visit", expr)]
    while stack:
        op, payload = stack.pop()
        if op == "restore":
            name, old = payload  # type: ignore[misc]
            if old is _ABSENT:
                active.pop(name, None)
            else:
                active[name] = old
            continue
        if op == "build":
            node, binder = payload  # type: ignore[misc]
            if isinstance(node, Lam):
                body = results.pop()
                if body is node.body and binder == node.binder:
                    results.append(node)
                else:
                    results.append(Lam(binder, body))
            elif isinstance(node, App):
                arg = results.pop()
                fn = results.pop()
                if fn is node.fn and arg is node.arg:
                    results.append(node)
                else:
                    results.append(App(fn, arg))
            else:
                assert isinstance(node, Let)
                body = results.pop()
                bound = results.pop()
                if (
                    bound is node.bound
                    and body is node.body
                    and binder == node.binder
                ):
                    results.append(node)
                else:
                    results.append(Let(binder, bound, body))
            continue
        if op == "let_body":
            # The bound expression has been visited; now enter the
            # binder's scope for the body.
            node = payload
            assert isinstance(node, Let)
            binder = _enter_binder(node.binder, active, capture_risk, supply, stack)
            stack.append(("build", (node, binder)))
            stack.append(("visit", node.body))
            continue

        node = payload
        assert isinstance(node, Expr)
        if isinstance(node, Var):
            entry = active.get(node.name)
            if entry is None:
                results.append(node)
            elif isinstance(entry, str):
                results.append(Var(entry))
            else:
                assert isinstance(entry, Expr)
                results.append(entry)
        elif isinstance(node, Lit):
            results.append(node)
        elif isinstance(node, Lam):
            binder = _enter_binder(node.binder, active, capture_risk, supply, stack)
            stack.append(("build", (node, binder)))
            stack.append(("visit", node.body))
        elif isinstance(node, App):
            stack.append(("build", (node, None)))
            stack.append(("visit", node.arg))
            stack.append(("visit", node.fn))
        else:
            assert isinstance(node, Let)
            stack.append(("let_body", node))
            stack.append(("visit", node.bound))
    assert len(results) == 1
    return results[0]


def _enter_binder(
    binder: str,
    active: dict[str, object],
    capture_risk: set[str],
    supply: NameSupply,
    stack: list,
) -> str:
    """Suspend or rename ``binder`` for the scope about to be visited.

    Pushes the matching restore op; the restore runs after the scope's
    body has been visited (it sits below the body's visit on the LIFO
    stack).  Returns the binder name to rebuild with.
    """
    old = active.get(binder, _ABSENT)
    stack.append(("restore", (binder, old)))
    if binder in capture_risk:
        fresh = supply.fresh(binder)
        active[binder] = fresh
        return fresh
    active.pop(binder, None)
    return binder
