"""Structured (de)serialisation of expressions.

A JSON-compatible nested-list encoding, for persisting benchmark inputs
and interchanging programs with other tools::

    Var "x"            ->  ["v", "x"]
    Lit 42             ->  ["c", "int", 42]
    Lam "x" e          ->  ["l", "x", <e>]
    App f a            ->  ["a", <f>, <a>]
    Let "x" e1 e2      ->  ["t", "x", <e1>, <e2>]

Literal types are tagged explicitly (``int``/``float``/``bool``/``str``)
because JSON round-trips erase the bool/int distinction that both
syntactic and alpha-equivalence preserve.

Both directions are iterative, so million-node unbalanced expressions
(de)serialise without recursion-limit issues, and :func:`dumps` /
:func:`loads` wrap the encoding in JSON text directly.
"""

from __future__ import annotations

import json
from typing import Any

from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = [
    "to_sexpr",
    "from_sexpr",
    "to_wire",
    "from_wire",
    "dumps",
    "loads",
    "SexprError",
    "WIRE_FORMAT",
]

#: Format tag of the flat postorder wire encoding (`dumps`/`to_wire`).
WIRE_FORMAT = "repro-expr-v1"


class SexprError(ValueError):
    """Raised on malformed serialised input."""


_LIT_TAGS = {"int": int, "float": float, "bool": bool, "str": str}


def to_sexpr(expr: Expr) -> list:
    """Encode ``expr`` as nested lists (see module docstring)."""
    # Build bottom-up over a postorder walk.
    results: list[Any] = []
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, visited = stack.pop()
        if not visited:
            stack.append((node, True))
            for child in reversed(node.children()):
                stack.append((child, False))
            continue
        if isinstance(node, Var):
            results.append(["v", node.name])
        elif isinstance(node, Lit):
            if isinstance(node.value, bool):
                results.append(["c", "bool", node.value])
            elif isinstance(node.value, int):
                results.append(["c", "int", node.value])
            elif isinstance(node.value, float):
                results.append(["c", "float", node.value])
            else:
                results.append(["c", "str", node.value])
        elif isinstance(node, Lam):
            body = results.pop()
            results.append(["l", node.binder, body])
        elif isinstance(node, App):
            arg = results.pop()
            fn = results.pop()
            results.append(["a", fn, arg])
        else:
            assert isinstance(node, Let)
            body = results.pop()
            bound = results.pop()
            results.append(["t", node.binder, bound, body])
    assert len(results) == 1
    return results[0]


def from_sexpr(data: Any) -> Expr:
    """Decode the nested-list encoding back into an expression."""
    results: list[Expr] = []
    # ops: ("visit", data) | ("build", (tag, binder))
    stack: list[tuple[str, Any]] = [("visit", data)]
    while stack:
        op, payload = stack.pop()
        if op == "build":
            tag, binder = payload
            if tag == "l":
                results.append(Lam(binder, results.pop()))
            elif tag == "a":
                arg = results.pop()
                fn = results.pop()
                results.append(App(fn, arg))
            else:
                body = results.pop()
                bound = results.pop()
                results.append(Let(binder, bound, body))
            continue

        node = payload
        if not isinstance(node, (list, tuple)) or not node:
            raise SexprError(f"expected a tagged list, got {node!r}")
        tag = node[0]
        if tag == "v":
            if len(node) != 2 or not isinstance(node[1], str):
                raise SexprError(f"malformed variable {node!r}")
            results.append(Var(node[1]))
        elif tag == "c":
            if len(node) != 3 or node[1] not in _LIT_TAGS:
                raise SexprError(f"malformed literal {node!r}")
            expected = _LIT_TAGS[node[1]]
            value = node[2]
            if expected is float and isinstance(value, int) and not isinstance(value, bool):
                value = float(value)  # JSON may render 1.0 as 1
            if not isinstance(value, expected) or (
                expected is int and isinstance(value, bool)
            ):
                raise SexprError(f"literal value/tag mismatch {node!r}")
            results.append(Lit(value))
        elif tag == "l":
            if len(node) != 3 or not isinstance(node[1], str):
                raise SexprError(f"malformed lambda {node!r}")
            stack.append(("build", ("l", node[1])))
            stack.append(("visit", node[2]))
        elif tag == "a":
            if len(node) != 3:
                raise SexprError(f"malformed application {node!r}")
            stack.append(("build", ("a", None)))
            stack.append(("visit", node[2]))
            stack.append(("visit", node[1]))
        elif tag == "t":
            if len(node) != 4 or not isinstance(node[1], str):
                raise SexprError(f"malformed let {node!r}")
            stack.append(("build", ("t", node[1])))
            stack.append(("visit", node[3]))
            stack.append(("visit", node[2]))
        else:
            raise SexprError(f"unknown tag {tag!r}")
    if len(results) != 1:  # pragma: no cover - structural guarantee
        raise SexprError("unbalanced encoding")
    return results[0]


def to_wire(expr: Expr) -> dict:
    """Encode ``expr`` as a JSON-compatible *flat postorder* document.

    The wire form behind :func:`dumps` and the :mod:`repro.service`
    HTTP API: ``{"format": "repro-expr-v1", "post": [...]}`` where each
    entry is one node in postorder -- ``["v", name]``, ``["c", tag,
    value]``, ``["l", binder]``, ``["a"]``, ``["t", binder]``.  Flat
    rather than nested because ``json`` recurses over nested lists,
    which would overflow on the deep binder chains this library
    routinely handles; the decoder replays entries against a stack.
    """
    post: list[list] = []
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, visited = stack.pop()
        if not visited:
            stack.append((node, True))
            for child in reversed(node.children()):
                stack.append((child, False))
            continue
        if isinstance(node, Var):
            post.append(["v", node.name])
        elif isinstance(node, Lit):
            encoded = to_sexpr(node)
            post.append(encoded)
        elif isinstance(node, Lam):
            post.append(["l", node.binder])
        elif isinstance(node, App):
            post.append(["a"])
        else:
            assert isinstance(node, Let)
            post.append(["t", node.binder])
    return {"format": WIRE_FORMAT, "post": post}


def dumps(expr: Expr) -> str:
    """Serialise ``expr`` to a JSON string (see :func:`to_wire`)."""
    return json.dumps(to_wire(expr), separators=(",", ":"), sort_keys=True)


def from_wire(payload: Any) -> Expr:
    """Decode a :func:`to_wire` document back into an expression."""
    if not isinstance(payload, dict) or payload.get("format") != WIRE_FORMAT:
        raise SexprError(f"not a {WIRE_FORMAT} document")
    post = payload.get("post")
    if not isinstance(post, list) or not post:
        raise SexprError("missing postorder node list")
    results: list[Expr] = []
    for entry in post:
        if not isinstance(entry, list) or not entry:
            raise SexprError(f"malformed entry {entry!r}")
        tag = entry[0]
        if tag in ("v", "c"):
            results.append(from_sexpr(entry))
        elif tag == "l":
            if len(entry) != 2 or not isinstance(entry[1], str) or not results:
                raise SexprError(f"malformed lambda entry {entry!r}")
            results.append(Lam(entry[1], results.pop()))
        elif tag == "a":
            if len(results) < 2:
                raise SexprError("application entry with too few operands")
            arg = results.pop()
            fn = results.pop()
            results.append(App(fn, arg))
        elif tag == "t":
            if len(entry) != 2 or not isinstance(entry[1], str) or len(results) < 2:
                raise SexprError(f"malformed let entry {entry!r}")
            body = results.pop()
            bound = results.pop()
            results.append(Let(entry[1], bound, body))
        else:
            raise SexprError(f"unknown entry tag {tag!r}")
    if len(results) != 1:
        raise SexprError("unbalanced postorder stream")
    return results[0]


def loads(text: str) -> Expr:
    """Deserialise an expression from :func:`dumps` output."""
    return from_wire(json.loads(text))
