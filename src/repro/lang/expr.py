"""Core expression AST for the lambda calculus of the paper.

The paper (Section 4.1) uses a minimal language::

    data Expression = Var Name
                    | Lam Name Expression
                    | App Expression Expression

and notes that it "can readily be extended to handle richer binding
constructs (let, case, etc.), as well as constants".  We implement that
extension because the paper's evaluation workloads (Section 7) lean on
deeply nested ``let`` stacks and machine-learning expressions containing
constants.  Our AST therefore has five constructors:

* :class:`Var` -- a variable occurrence.
* :class:`Lam` -- a lambda abstraction binding one name.
* :class:`App` -- application of one expression to another.
* :class:`Let` -- a *non-recursive* let binding: in ``Let x e1 e2`` the
  binder ``x`` scopes over ``e2`` only.
* :class:`Lit` -- a literal constant (int, float, bool or string).

Nodes are immutable and carry two O(1)-computed attributes:

* ``size`` -- the number of AST nodes in the subtree (the paper's ``|e|``),
* ``depth`` -- the height of the subtree (1 for leaves).

Equality on nodes is *identity* equality.  This is deliberate: the
benchmarks build trees with millions of nodes, and a structural ``__eq__``
would silently turn innocuous comparisons into O(n) traversals (and blow
the recursion limit).  Use :func:`syntactic_eq` for explicit structural
comparison and :func:`repro.lang.alpha.alpha_equivalent` for comparison
modulo alpha-renaming.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

__all__ = [
    "Expr",
    "Var",
    "Lam",
    "App",
    "Let",
    "Lit",
    "LitValue",
    "var",
    "lam",
    "app",
    "app_many",
    "lam_many",
    "let",
    "let_many",
    "lit",
    "syntactic_eq",
    "is_expr",
]

#: The types a :class:`Lit` node may carry.
LitValue = Union[int, float, bool, str]


class Expr:
    """Abstract base class of all expression nodes.

    Concrete nodes expose:

    * ``kind`` -- a short class-level string tag (``"Var"``, ``"Lam"``,
      ``"App"``, ``"Let"``, ``"Lit"``) that is stable across versions and
      convenient for dispatch in iterative algorithms.
    * ``size`` -- number of nodes in this subtree.
    * ``depth`` -- height of this subtree (leaves have depth 1).
    * ``children()`` -- tuple of child expressions, in left-to-right order.
    """

    __slots__ = ("size", "depth")

    kind: str = "?"

    size: int
    depth: int

    def children(self) -> tuple["Expr", ...]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.lang.pretty import pretty

        text = pretty(self, max_len=60)
        return f"<{self.kind} size={self.size} {text!r}>"

    # Nodes hash / compare by identity (see module docstring).
    __hash__ = object.__hash__


class Var(Expr):
    """A variable occurrence, e.g. ``x``."""

    __slots__ = ("name",)

    kind = "Var"

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise TypeError(f"Var name must be a non-empty str, got {name!r}")
        self.name = name
        self.size = 1
        self.depth = 1

    def children(self) -> tuple[Expr, ...]:
        return ()


class Lit(Expr):
    """A literal constant, e.g. ``42`` or ``3.5``."""

    __slots__ = ("value",)

    kind = "Lit"

    def __init__(self, value: LitValue):
        if not isinstance(value, (int, float, bool, str)):
            raise TypeError(f"Lit value must be int/float/bool/str, got {value!r}")
        self.value = value
        self.size = 1
        self.depth = 1

    def children(self) -> tuple[Expr, ...]:
        return ()


class Lam(Expr):
    """A lambda abstraction ``\\binder. body``."""

    __slots__ = ("binder", "body")

    kind = "Lam"

    def __init__(self, binder: str, body: Expr):
        if not isinstance(binder, str) or not binder:
            raise TypeError(f"Lam binder must be a non-empty str, got {binder!r}")
        if not isinstance(body, Expr):
            raise TypeError(f"Lam body must be an Expr, got {body!r}")
        self.binder = binder
        self.body = body
        self.size = 1 + body.size
        self.depth = 1 + body.depth

    def children(self) -> tuple[Expr, ...]:
        return (self.body,)


class App(Expr):
    """An application ``fn arg``."""

    __slots__ = ("fn", "arg")

    kind = "App"

    def __init__(self, fn: Expr, arg: Expr):
        if not isinstance(fn, Expr) or not isinstance(arg, Expr):
            raise TypeError(f"App children must be Exprs, got {fn!r}, {arg!r}")
        self.fn = fn
        self.arg = arg
        self.size = 1 + fn.size + arg.size
        self.depth = 1 + max(fn.depth, arg.depth)

    def children(self) -> tuple[Expr, ...]:
        return (self.fn, self.arg)


class Let(Expr):
    """A non-recursive let binding ``let binder = bound in body``.

    ``binder`` scopes over ``body`` only; occurrences of ``binder`` inside
    ``bound`` refer to an *outer* variable of the same name (which cannot
    happen once binders have been made unique).
    """

    __slots__ = ("binder", "bound", "body")

    kind = "Let"

    def __init__(self, binder: str, bound: Expr, body: Expr):
        if not isinstance(binder, str) or not binder:
            raise TypeError(f"Let binder must be a non-empty str, got {binder!r}")
        if not isinstance(bound, Expr) or not isinstance(body, Expr):
            raise TypeError("Let bound/body must be Exprs")
        self.binder = binder
        self.bound = bound
        self.body = body
        self.size = 1 + bound.size + body.size
        self.depth = 1 + max(bound.depth, body.depth)

    def children(self) -> tuple[Expr, ...]:
        return (self.bound, self.body)


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def var(name: str) -> Var:
    """Build a :class:`Var` node."""
    return Var(name)


def lam(binder: str, body: Expr) -> Lam:
    """Build a :class:`Lam` node."""
    return Lam(binder, body)


def lam_many(binders: Iterable[str], body: Expr) -> Expr:
    """Build nested lambdas: ``lam_many(["x","y"], e)`` is ``\\x.\\y.e``."""
    result = body
    for binder in reversed(list(binders)):
        result = Lam(binder, result)
    return result


def app(fn: Expr, arg: Expr) -> App:
    """Build an :class:`App` node."""
    return App(fn, arg)


def app_many(fn: Expr, *args: Expr) -> Expr:
    """Left-nested application: ``app_many(f, a, b)`` is ``(f a) b``."""
    result = fn
    for arg in args:
        result = App(result, arg)
    return result


def let(binder: str, bound: Expr, body: Expr) -> Let:
    """Build a :class:`Let` node."""
    return Let(binder, bound, body)


def let_many(bindings: Iterable[tuple[str, Expr]], body: Expr) -> Expr:
    """Build a nested let stack, first binding outermost."""
    result = body
    for binder, bound in reversed(list(bindings)):
        result = Let(binder, bound, result)
    return result


def lit(value: LitValue) -> Lit:
    """Build a :class:`Lit` node."""
    return Lit(value)


def is_expr(obj: object) -> bool:
    """Return True if ``obj`` is an expression node."""
    return isinstance(obj, Expr)


# ---------------------------------------------------------------------------
# Structural (syntactic) equality
# ---------------------------------------------------------------------------


def syntactic_eq(e1: Expr, e2: Expr) -> bool:
    """Exact structural equality: same shape, same names, same literals.

    This is the "Syntactic equivalence" of Section 2.1.  Implemented
    iteratively so deep chains do not overflow the stack.
    """
    stack: list[tuple[Expr, Expr]] = [(e1, e2)]
    while stack:
        a, b = stack.pop()
        if a is b:
            continue
        if a.kind != b.kind or a.size != b.size:
            return False
        if isinstance(a, Var):
            if a.name != b.name:  # type: ignore[union-attr]
                return False
        elif isinstance(a, Lit):
            bv = b.value  # type: ignore[union-attr]
            if a.value != bv or type(a.value) is not type(bv):
                return False
        elif isinstance(a, Lam):
            assert isinstance(b, Lam)
            if a.binder != b.binder:
                return False
            stack.append((a.body, b.body))
        elif isinstance(a, App):
            assert isinstance(b, App)
            stack.append((a.fn, b.fn))
            stack.append((a.arg, b.arg))
        elif isinstance(a, Let):
            assert isinstance(b, Let)
            if a.binder != b.binder:
                return False
            stack.append((a.bound, b.bound))
            stack.append((a.body, b.body))
        else:  # pragma: no cover - future node kinds
            raise TypeError(f"unknown node kind {a.kind}")
    return True


def iter_kinds() -> Iterator[str]:
    """Yield the five node-kind tags, in a stable order."""
    yield from ("Var", "Lam", "App", "Let", "Lit")
