"""Expression statistics: shape profiles for workload validation.

The benchmark claims of Section 7 hinge on input *shape* -- balanced vs
unbalanced, binder density, free-variable pressure.  This module
computes those profiles, which the workload tests use to assert that
the synthetic MNIST/GMM/BERT expressions actually carry the
characteristics the real dumps had (deep let spines, unrolled
repetition), and which `describe` renders for quick inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.expr import Expr, Lam, Let, Lit, Var
from repro.lang.names import free_vars

__all__ = ["ExprStats", "expr_stats", "describe"]


@dataclass(frozen=True)
class ExprStats:
    """Shape profile of one expression."""

    size: int
    depth: int
    var_count: int
    lit_count: int
    lam_count: int
    app_count: int
    let_count: int
    binder_count: int
    free_var_count: int
    #: maximum number of binders enclosing any single node
    max_binder_depth: int
    #: depth / size: ~log(n)/n for balanced trees, ~0.5 for chains
    @property
    def imbalance(self) -> float:
        return self.depth / self.size if self.size else 0.0

    @property
    def binder_density(self) -> float:
        return self.binder_count / self.size if self.size else 0.0


def expr_stats(expr: Expr) -> ExprStats:
    """Compute the full shape profile in one iterative pass."""
    var_count = lit_count = lam_count = app_count = let_count = 0
    max_binder_depth = 0

    # (node, binder_depth)
    stack: list[tuple[Expr, int]] = [(expr, 0)]
    while stack:
        node, binders = stack.pop()
        if binders > max_binder_depth:
            max_binder_depth = binders
        if isinstance(node, Var):
            var_count += 1
        elif isinstance(node, Lit):
            lit_count += 1
        elif isinstance(node, Lam):
            lam_count += 1
            stack.append((node.body, binders + 1))
        elif isinstance(node, Let):
            let_count += 1
            stack.append((node.bound, binders))
            stack.append((node.body, binders + 1))
        else:
            app_count += 1
            stack.append((node.fn, binders))
            stack.append((node.arg, binders))

    return ExprStats(
        size=expr.size,
        depth=expr.depth,
        var_count=var_count,
        lit_count=lit_count,
        lam_count=lam_count,
        app_count=app_count,
        let_count=let_count,
        binder_count=lam_count + let_count,
        free_var_count=len(free_vars(expr)),
        max_binder_depth=max_binder_depth,
    )


def describe(expr: Expr) -> str:
    """A one-paragraph human-readable shape summary."""
    stats = expr_stats(expr)
    return (
        f"{stats.size} nodes, depth {stats.depth} "
        f"(imbalance {stats.imbalance:.3f}); "
        f"{stats.var_count} vars / {stats.lit_count} lits / "
        f"{stats.app_count} apps / {stats.lam_count} lams / "
        f"{stats.let_count} lets; "
        f"{stats.binder_count} binders (max nesting {stats.max_binder_depth}), "
        f"{stats.free_var_count} free variables"
    )
