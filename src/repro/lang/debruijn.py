"""De Bruijn (nameless) representation and conversion (Section 2.4).

A bound variable occurrence is replaced by an index counting the
intervening binders between the occurrence and its binder; free variables
keep their names.  ``Let`` binders count as binders for indexing purposes
(the bound expression of a ``let`` is *outside* the binder's scope).

The paper uses this representation in two ways:

* the **De Bruijn baseline** (incorrect for the paper's spec): hash each
  node from the de-Bruijn-ised tree computed once, *relative to the root*;
* the **Locally Nameless baseline** (correct, slow): for each node, hash
  its subtree de-Bruijn-ised *in isolation*.

Both baselines live in :mod:`repro.baselines`; this module provides the
underlying conversion and the ``DbExpr`` datatype, which is also how we
compute canonical alpha-invariant keys for whole expressions in tests.
"""

from __future__ import annotations

from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = [
    "DbExpr",
    "DbBound",
    "DbFree",
    "DbLam",
    "DbApp",
    "DbLet",
    "DbLit",
    "to_debruijn",
    "db_equal",
    "db_pretty",
    "canonical_key",
]


class DbExpr:
    """Base class of nameless expression nodes."""

    __slots__ = ()
    kind: str = "?"

    def children(self) -> tuple["DbExpr", ...]:
        return ()


class DbBound(DbExpr):
    """A bound occurrence ``%i`` with de Bruijn index ``i``."""

    __slots__ = ("index",)
    kind = "DbBound"

    def __init__(self, index: int):
        if index < 0:
            raise ValueError("de Bruijn index must be non-negative")
        self.index = index


class DbFree(DbExpr):
    """A free variable occurrence, kept by name (locally-nameless style)."""

    __slots__ = ("name",)
    kind = "DbFree"

    def __init__(self, name: str):
        self.name = name


class DbLit(DbExpr):
    """A literal constant."""

    __slots__ = ("value",)
    kind = "DbLit"

    def __init__(self, value):
        self.value = value


class DbLam(DbExpr):
    """A binder-less lambda ``\\. body``."""

    __slots__ = ("body",)
    kind = "DbLam"

    def __init__(self, body: DbExpr):
        self.body = body

    def children(self) -> tuple[DbExpr, ...]:
        return (self.body,)


class DbApp(DbExpr):
    """Application."""

    __slots__ = ("fn", "arg")
    kind = "DbApp"

    def __init__(self, fn: DbExpr, arg: DbExpr):
        self.fn = fn
        self.arg = arg

    def children(self) -> tuple[DbExpr, ...]:
        return (self.fn, self.arg)


class DbLet(DbExpr):
    """A binder-less let: ``let . = bound in body``."""

    __slots__ = ("bound", "body")
    kind = "DbLet"

    def __init__(self, bound: DbExpr, body: DbExpr):
        self.bound = bound
        self.body = body

    def children(self) -> tuple[DbExpr, ...]:
        return (self.bound, self.body)


def to_debruijn(expr: Expr) -> DbExpr:
    """Convert ``expr`` to its de Bruijn form.

    Free variables become :class:`DbFree` (so the result is the
    locally-nameless form of the whole expression).  Iterative; O(n)
    expected time using per-name binder-depth stacks.
    """
    # Depth here counts binders entered so far on the path from the root.
    depth = 0
    env: dict[str, list[int]] = {}
    results: list[DbExpr] = []
    # ops: visit / bind(name) / unbind(name) / build(node)
    stack: list[tuple[str, object]] = [("visit", expr)]
    while stack:
        op, payload = stack.pop()
        if op == "visit":
            node = payload
            assert isinstance(node, Expr)
            if isinstance(node, Var):
                levels = env.get(node.name)
                if levels:
                    results.append(DbBound(depth - levels[-1] - 1))
                else:
                    results.append(DbFree(node.name))
            elif isinstance(node, Lit):
                results.append(DbLit(node.value))
            elif isinstance(node, Lam):
                stack.append(("build", node))
                stack.append(("unbind", node.binder))
                stack.append(("visit", node.body))
                env.setdefault(node.binder, []).append(depth)
                depth += 1
            elif isinstance(node, App):
                stack.append(("build", node))
                stack.append(("visit", node.arg))
                stack.append(("visit", node.fn))
            elif isinstance(node, Let):
                stack.append(("build", node))
                stack.append(("unbind", node.binder))
                stack.append(("visit", node.body))
                stack.append(("bind", node.binder))
                stack.append(("visit", node.bound))
            else:  # pragma: no cover
                raise TypeError(f"unknown node kind {node.kind}")
        elif op == "bind":
            env.setdefault(payload, []).append(depth)  # type: ignore[arg-type]
            depth += 1
        elif op == "unbind":
            env[payload].pop()  # type: ignore[index]
            depth -= 1
        elif op == "build":
            node = payload
            if isinstance(node, Lam):
                results.append(DbLam(results.pop()))
            elif isinstance(node, App):
                arg = results.pop()
                fn = results.pop()
                results.append(DbApp(fn, arg))
            else:
                assert isinstance(node, Let)
                body = results.pop()
                bound = results.pop()
                results.append(DbLet(bound, body))
    assert len(results) == 1
    return results[0]


def db_equal(a: DbExpr, b: DbExpr) -> bool:
    """Structural equality of nameless expressions (iterative)."""
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x.kind != y.kind:
            return False
        if isinstance(x, DbBound):
            if x.index != y.index:  # type: ignore[union-attr]
                return False
        elif isinstance(x, DbFree):
            if x.name != y.name:  # type: ignore[union-attr]
                return False
        elif isinstance(x, DbLit):
            yv = y.value  # type: ignore[union-attr]
            if x.value != yv or type(x.value) is not type(yv):
                return False
        else:
            xc, yc = x.children(), y.children()
            if len(xc) != len(yc):
                return False
            stack.extend(zip(xc, yc))
    return True


def db_pretty(expr: DbExpr) -> str:
    """Render a nameless expression, e.g. ``(\\. \\. %1 %0)``."""
    pieces: list[str] = []
    stack: list[object] = [expr]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            pieces.append(item)
            continue
        assert isinstance(item, DbExpr)
        if isinstance(item, DbBound):
            pieces.append(f"%{item.index}")
        elif isinstance(item, DbFree):
            pieces.append(item.name)
        elif isinstance(item, DbLit):
            pieces.append(repr(item.value))
        elif isinstance(item, DbLam):
            pieces.append("(\\. ")
            stack.append(")")
            stack.append(item.body)
        elif isinstance(item, DbApp):
            pieces.append("(")
            stack.append(")")
            stack.append(item.arg)
            stack.append(" ")
            stack.append(item.fn)
        elif isinstance(item, DbLet):
            pieces.append("(let . = ")
            stack.append(")")
            stack.append(item.body)
            stack.append(" in ")
            stack.append(item.bound)
    return "".join(pieces)


def canonical_key(expr: Expr) -> tuple:
    """A hashable key equal for exactly the alpha-equivalent expressions.

    Flattens the de Bruijn form of ``expr`` into a tuple of atoms in
    preorder.  Used by tests as an oracle (dictionary-based exact
    grouping) and by :mod:`repro.core.equivalence` for optional exact
    verification of hash-derived classes.
    """
    atoms: list[object] = []
    stack: list[DbExpr] = [to_debruijn(expr)]
    while stack:
        node = stack.pop()
        if isinstance(node, DbBound):
            atoms.append(("b", node.index))
        elif isinstance(node, DbFree):
            atoms.append(("f", node.name))
        elif isinstance(node, DbLit):
            atoms.append(("l", type(node.value).__name__, node.value))
        elif isinstance(node, DbLam):
            atoms.append("lam")
            stack.append(node.body)
        elif isinstance(node, DbApp):
            atoms.append("app")
            stack.append(node.arg)
            stack.append(node.fn)
        else:
            assert isinstance(node, DbLet)
            atoms.append("let")
            stack.append(node.body)
            stack.append(node.bound)
    return tuple(atoms)
