"""Small-step call-by-value reduction via substitution.

A second, independent interpreter: instead of the CEK machine's
environments and closures (:mod:`repro.lang.evaluator`), this one
reduces the term itself -- ``(\\x. b) v  ~>  b[x := v]`` -- using the
capture-avoiding :func:`repro.lang.subst.substitute`.  It is slower and
can duplicate work, but it is *obviously* the textbook semantics, which
makes it the perfect differential-testing partner: the test-suite runs
both interpreters on random closed programs and demands identical
results, cross-validating the CEK machine, the substitution engine and
the binder machinery in one property.

Values are literals and lambda terms; primitives reduce when fully
applied to literal arguments.  Reduction is leftmost-innermost (CBV).
"""

from __future__ import annotations

from typing import Optional

from repro.lang.evaluator import PRIMITIVES, EvalError, EvalFuelExhausted
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var
from repro.lang.names import free_vars
from repro.lang.subst import substitute

__all__ = ["reduce_to_value", "step"]


def _is_value(expr: Expr) -> bool:
    if isinstance(expr, (Lit, Lam)):
        return True
    # a partially applied primitive is a value: prim applied to < arity values
    head, args = _spine(expr)
    if isinstance(head, Var) and head.name in PRIMITIVES:
        arity, _ = PRIMITIVES[head.name]
        return len(args) < arity and all(_is_value(a) for a in args)
    return False


def _spine(expr: Expr) -> tuple[Expr, list[Expr]]:
    args: list[Expr] = []
    node = expr
    while isinstance(node, App):
        args.append(node.arg)
        node = node.fn
    args.reverse()
    return node, args


def step(expr: Expr) -> Optional[Expr]:
    """One leftmost-innermost CBV step, or None if ``expr`` is a value.

    Raises :class:`EvalError` on stuck non-value terms (unbound
    variables applied, literals applied, primitive type errors).
    """
    if _is_value(expr):
        return None

    if isinstance(expr, Let):
        if _is_value(expr.bound):
            return substitute(expr.body, {expr.binder: expr.bound})
        reduced = step(expr.bound)
        if reduced is None:  # pragma: no cover - guarded by _is_value
            raise EvalError("let-bound value did not step")
        return Let(expr.binder, reduced, expr.body)

    if isinstance(expr, App):
        if not _is_value(expr.fn):
            reduced = step(expr.fn)
            if reduced is None:
                raise EvalError(f"cannot apply non-function {expr.fn.kind}")
            return App(reduced, expr.arg)
        if not _is_value(expr.arg):
            reduced = step(expr.arg)
            if reduced is None:  # pragma: no cover
                raise EvalError("argument is stuck")
            return App(expr.fn, reduced)
        # both value: beta or primitive delta
        if isinstance(expr.fn, Lam):
            return substitute(expr.fn.body, {expr.fn.binder: expr.arg})
        head, args = _spine(expr)
        if isinstance(head, Var) and head.name in PRIMITIVES:
            arity, fn = PRIMITIVES[head.name]
            if len(args) == arity:
                return _delta(head.name, arity, fn, args)
            raise EvalError(  # pragma: no cover - over-application is an App
                f"primitive {head.name} applied to {len(args)} args"
            )
        raise EvalError(f"cannot apply non-function {expr.fn.kind}")

    if isinstance(expr, Var):
        raise EvalError(f"unbound variable {expr.name!r}")
    raise EvalError(f"stuck term of kind {expr.kind}")  # pragma: no cover


def _delta(name: str, arity: int, fn, args: list[Expr]) -> Expr:
    values = []
    for arg in args:
        if isinstance(arg, Lit):
            values.append(arg.value)
        elif isinstance(arg, Lam):
            raise EvalError(f"primitive {name} applied to a lambda")
        else:  # pragma: no cover - args are values by construction
            raise EvalError(f"primitive {name} applied to a stuck term")
    result = fn(*values)
    if isinstance(result, (int, float, bool, str)):
        return Lit(result)
    raise EvalError(  # pragma: no cover - all primitives return literals
        f"primitive {name} returned a non-literal"
    )


def reduce_to_value(expr: Expr, fuel: int = 100_000) -> Expr:
    """Reduce ``expr`` to a value (or raise).

    ``fuel`` bounds the number of steps (:class:`EvalFuelExhausted`
    beyond it).  Note ``step`` itself recurses only down the leftmost
    application/let spine, so this interpreter is fine for the
    test-scale terms it exists for; the CEK machine is the scalable one.
    """
    current = expr
    for _ in range(fuel):
        following = step(current)
        if following is None:
            return current
        current = following
    raise EvalFuelExhausted("reduction step budget exhausted")
