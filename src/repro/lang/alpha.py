"""Reference decision procedure for alpha-equivalence.

This is the ground truth against which all hashing algorithms are judged
(Section 2.1: two expressions are alpha-equivalent when they are
syntactically equal up to renaming of *bound* variables; free variables
must match exactly).

:func:`alpha_equivalent` walks both trees simultaneously, assigning each
binder a serial number the moment it is entered; two bound occurrences
match iff their binders received the same serial.  That is exactly the
"same de Bruijn level" criterion but computed with O(1) dict operations
and no index shifting.  O(n) expected time, O(depth) extra space,
fully iterative.
"""

from __future__ import annotations

from typing import Sequence

from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = [
    "alpha_equivalent",
    "alpha_group_exact",
    "NOT_FOUND",
]

#: Sentinel distinct from every serial number.
NOT_FOUND = object()


def alpha_equivalent(e1: Expr, e2: Expr) -> bool:
    """True iff ``e1`` and ``e2`` are alpha-equivalent.

    Handles shadowing, ``let`` bindings and literals.  Free variables are
    compared by name, as the paper requires (``\\x.x+y`` is equivalent to
    ``\\p.p+y`` but not to ``\\q.q+z``).
    """
    if e1.size != e2.size:
        return False

    serial = 0
    env1: dict[str, list[int]] = {}
    env2: dict[str, list[int]] = {}

    # ops: ("visit", (a, b)) | ("bind", (n1, n2, serial)) | ("unbind", (n1, n2))
    stack: list[tuple[str, tuple]] = [("visit", (e1, e2))]
    while stack:
        op, payload = stack.pop()
        if op == "unbind":
            name1, name2 = payload
            env1[name1].pop()
            env2[name2].pop()
            continue
        if op == "bind":
            name1, name2, s = payload
            env1.setdefault(name1, []).append(s)
            env2.setdefault(name2, []).append(s)
            continue

        a, b = payload
        if a.kind != b.kind or a.size != b.size:
            return False
        if isinstance(a, Var):
            assert isinstance(b, Var)
            stack1 = env1.get(a.name)
            stack2 = env2.get(b.name)
            s1 = stack1[-1] if stack1 else None
            s2 = stack2[-1] if stack2 else None
            if s1 is None and s2 is None:
                if a.name != b.name:
                    return False
            elif s1 != s2:
                return False
        elif isinstance(a, Lit):
            assert isinstance(b, Lit)
            if a.value != b.value or type(a.value) is not type(b.value):
                return False
        elif isinstance(a, Lam):
            assert isinstance(b, Lam)
            serial += 1
            env1.setdefault(a.binder, []).append(serial)
            env2.setdefault(b.binder, []).append(serial)
            stack.append(("unbind", (a.binder, b.binder)))
            stack.append(("visit", (a.body, b.body)))
        elif isinstance(a, App):
            assert isinstance(b, App)
            stack.append(("visit", (a.arg, b.arg)))
            stack.append(("visit", (a.fn, b.fn)))
        elif isinstance(a, Let):
            assert isinstance(b, Let)
            # The binder scopes over the body only; the bound expressions
            # are compared in the *outer* environment.  We sequence:
            # visit(bound) ; bind ; visit(body) ; unbind -- which on a LIFO
            # stack means pushing in reverse.
            serial += 1
            bind_serial = serial
            stack.append(("unbind", (a.binder, b.binder)))
            stack.append(("visit", (a.body, b.body)))
            stack.append(("bind", (a.binder, b.binder, bind_serial)))
            stack.append(("visit", (a.bound, b.bound)))
        else:  # pragma: no cover
            raise TypeError(f"unknown node kind {a.kind}")

    return True


def alpha_group_exact(exprs: Sequence[Expr]) -> list[list[int]]:
    """Group indices of ``exprs`` into alpha-equivalence classes.

    Quadratic pairwise comparison -- the "absurdly expensive" strawman of
    Section 3.1 -- retained as the oracle for testing the hash-based
    grouping on small inputs.
    """
    classes: list[list[int]] = []
    for i, e in enumerate(exprs):
        for group in classes:
            if alpha_equivalent(exprs[group[0]], e):
                group.append(i)
                break
        else:
            classes.append([i])
    return classes
