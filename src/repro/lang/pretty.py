"""Precedence-aware pretty printer for expressions.

Produces a compact surface syntax accepted back by
:mod:`repro.lang.parser`, e.g.::

    \\x. (a + (let w = v + 7 in w * w)) x

Known primitive operators (``add``, ``sub``, ``mul``, ``div``) applied to
two arguments are rendered infix when ``sugar=True`` (the default), which
matches how the paper writes its examples (``\\x.x+7``).

Iterative (explicit stack), so deeply nested expressions print without
hitting the recursion limit.
"""

from __future__ import annotations

from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = ["pretty", "INFIX_OPS"]

#: primitive name -> (symbol, precedence).  Parser inverts this table.
INFIX_OPS: dict[str, tuple[str, int]] = {
    "add": ("+", 1),
    "sub": ("-", 1),
    "mul": ("*", 2),
    "div": ("/", 2),
}

_PREC_LAM = 0
_PREC_APP = 3
_PREC_ATOM = 4


def _infix_view(node: Expr, sugar: bool):
    """If ``node`` is ``App (App (Var op) a) b`` with ``op`` infix, return
    (symbol, prec, a, b); otherwise None."""
    if not sugar or not isinstance(node, App):
        return None
    fn = node.fn
    if isinstance(fn, App) and isinstance(fn.fn, Var):
        entry = INFIX_OPS.get(fn.fn.name)
        if entry is not None:
            symbol, prec = entry
            return symbol, prec, fn.arg, node.arg
    return None


def _render_lit(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'
    text = repr(value)
    if text.startswith("-"):
        # Negative literals are parenthesised so they parse back as a
        # unary-minus atom rather than colliding with binary subtraction.
        return f"({text})"
    return text


def pretty(expr: Expr, sugar: bool = True, max_len: int | None = None) -> str:
    """Render ``expr`` as surface syntax.

    ``max_len`` truncates the output (with a trailing ``...``), which keeps
    ``repr`` of million-node expressions cheap.
    """
    pieces: list[str] = []
    length = 0
    # Stack items: raw strings, or (node, context_precedence) pairs.
    stack: list[object] = [(expr, _PREC_LAM)]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            pieces.append(item)
            length += len(item)
        else:
            node, ctx = item  # type: ignore[misc]
            assert isinstance(node, Expr)
            if isinstance(node, Var):
                pieces.append(node.name)
                length += len(node.name)
            elif isinstance(node, Lit):
                text = _render_lit(node.value)
                pieces.append(text)
                length += len(text)
            elif isinstance(node, Lam):
                parens = _PREC_LAM < ctx
                if parens:
                    pieces.append("(")
                    length += 1
                    stack.append(")")
                head = f"\\{node.binder}. "
                pieces.append(head)
                length += len(head)
                stack.append((node.body, _PREC_LAM))
            elif isinstance(node, Let):
                parens = _PREC_LAM < ctx
                if parens:
                    pieces.append("(")
                    length += 1
                    stack.append(")")
                head = f"let {node.binder} = "
                pieces.append(head)
                length += len(head)
                stack.append((node.body, _PREC_LAM))
                stack.append(" in ")
                stack.append((node.bound, _PREC_LAM))
            else:
                infix = _infix_view(node, sugar)
                if infix is not None:
                    symbol, prec, left, right = infix
                    parens = prec < ctx
                    if parens:
                        pieces.append("(")
                        length += 1
                        stack.append(")")
                    stack.append((right, prec + 1))
                    stack.append(f" {symbol} ")
                    stack.append((left, prec))
                else:
                    assert isinstance(node, App)
                    parens = _PREC_APP < ctx
                    if parens:
                        pieces.append("(")
                        length += 1
                        stack.append(")")
                    stack.append((node.arg, _PREC_ATOM))
                    stack.append(" ")
                    stack.append((node.fn, _PREC_APP))
        if max_len is not None and length > max_len:
            return "".join(pieces)[:max_len] + "..."
    return "".join(pieces)
