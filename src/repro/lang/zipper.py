"""A functional zipper over expression trees.

Compiler rewrite loops navigate to a redex, inspect its context, and
splice in a replacement.  :class:`Zipper` packages that pattern over the
immutable AST: navigation is O(1) per step, edits are local, and
reconstruction shares every untouched subtree with the original.

It pairs naturally with :class:`repro.core.incremental.IncrementalHasher`:
``zipper.path`` is exactly the path `replace` expects, so a client can
navigate with the zipper and keep alpha-hashes live::

    z = Zipper.from_expr(expr).down(0).down(1)
    hasher.replace(z.path, new_subtree)

The zipper also tracks the binders in scope at the focus
(:meth:`binders_in_scope`), which is what a rewriter needs for the
capture checks of Section 2.2-style transformations.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.lang.expr import App, Expr, Lam, Let, Lit, Var
from repro.lang.traversal import preorder_with_paths

__all__ = ["Zipper", "ZipperError"]


class ZipperError(ValueError):
    """Raised on invalid navigation (up from root, down from a leaf...)."""


class _Crumb:
    """One step of context: which parent we came from, which child slot."""

    __slots__ = ("parent", "index")

    def __init__(self, parent: Expr, index: int):
        self.parent = parent
        self.index = index


class Zipper:
    """An immutable focus-plus-context view of an expression.

    All navigation methods return new zippers; the underlying expression
    objects are never mutated.
    """

    __slots__ = ("focus", "_crumbs")

    def __init__(self, focus: Expr, crumbs: tuple[_Crumb, ...] = ()):
        self.focus = focus
        self._crumbs = crumbs

    # -- construction -----------------------------------------------------

    @classmethod
    def from_expr(cls, expr: Expr) -> "Zipper":
        """A zipper focused at the root of ``expr``."""
        return cls(expr, ())

    @classmethod
    def at_path(cls, expr: Expr, path: tuple[int, ...]) -> "Zipper":
        """A zipper focused at ``path`` within ``expr``."""
        zipper = cls.from_expr(expr)
        for index in path:
            zipper = zipper.down(index)
        return zipper

    # -- queries ----------------------------------------------------------

    @property
    def is_root(self) -> bool:
        return not self._crumbs

    @property
    def depth(self) -> int:
        return len(self._crumbs)

    @property
    def path(self) -> tuple[int, ...]:
        """The child-index path from the root to the focus."""
        return tuple(crumb.index for crumb in self._crumbs)

    def binders_in_scope(self) -> list[str]:
        """Binders whose scope covers the focus, outermost first.

        A ``Lam``'s binder scopes over its single child; a ``Let``'s
        binder scopes over the *body* child only (index 1).
        """
        scope: list[str] = []
        for crumb in self._crumbs:
            parent = crumb.parent
            if isinstance(parent, Lam):
                scope.append(parent.binder)
            elif isinstance(parent, Let) and crumb.index == 1:
                scope.append(parent.binder)
        return scope

    # -- navigation ---------------------------------------------------------

    def down(self, index: int = 0) -> "Zipper":
        """Move to child ``index`` of the focus."""
        children = self.focus.children()
        if index < 0 or index >= len(children):
            raise ZipperError(
                f"cannot move down to child {index} of a {self.focus.kind} node"
            )
        return Zipper(children[index], self._crumbs + (_Crumb(self.focus, index),))

    def up(self) -> "Zipper":
        """Move to the parent, splicing the (possibly edited) focus in."""
        if not self._crumbs:
            raise ZipperError("cannot move up from the root")
        crumb = self._crumbs[-1]
        parent = crumb.parent
        if self.focus is parent.children()[crumb.index]:
            rebuilt = parent  # nothing changed below: share the original
        else:
            rebuilt = _with_child(parent, crumb.index, self.focus)
        return Zipper(rebuilt, self._crumbs[:-1])

    def left(self) -> "Zipper":
        """Move to the previous sibling."""
        return self._sibling(-1)

    def right(self) -> "Zipper":
        """Move to the next sibling."""
        return self._sibling(+1)

    def _sibling(self, offset: int) -> "Zipper":
        if not self._crumbs:
            raise ZipperError("the root has no siblings")
        crumb = self._crumbs[-1]
        return self.up().down(crumb.index + offset)

    def top(self) -> "Zipper":
        """Move all the way to the root (iterative; O(depth))."""
        zipper = self
        while zipper._crumbs:
            zipper = zipper.up()
        return zipper

    # -- editing -------------------------------------------------------------

    def replace(self, new_focus: Expr) -> "Zipper":
        """A zipper with ``new_focus`` at the current position."""
        if not isinstance(new_focus, Expr):
            raise TypeError(f"replacement must be an Expr, got {new_focus!r}")
        return Zipper(new_focus, self._crumbs)

    def modify(self, fn: Callable[[Expr], Expr]) -> "Zipper":
        """Apply ``fn`` to the focus."""
        return self.replace(fn(self.focus))

    def to_expr(self) -> Expr:
        """Rebuild the whole expression with all edits applied."""
        return self.top().focus

    # -- search ---------------------------------------------------------------

    def find(self, predicate: Callable[[Expr], bool]) -> Optional["Zipper"]:
        """The first node (preorder, from the focus) satisfying
        ``predicate``, as a zipper, or None."""
        for path, node in preorder_with_paths(self.focus):
            if predicate(node):
                zipper = self
                for index in path:
                    zipper = zipper.down(index)
                return zipper
        return None

    def __repr__(self) -> str:  # pragma: no cover
        from repro.lang.pretty import pretty

        return f"<Zipper at {self.path} on {pretty(self.focus, max_len=40)!r}>"


def _with_child(parent: Expr, index: int, child: Expr) -> Expr:
    if isinstance(parent, Lam):
        return Lam(parent.binder, child)
    if isinstance(parent, App):
        return App(child, parent.arg) if index == 0 else App(parent.fn, child)
    if isinstance(parent, Let):
        if index == 0:
            return Let(parent.binder, child, parent.body)
        return Let(parent.binder, parent.bound, child)
    raise ZipperError(f"{parent.kind} node has no children")  # pragma: no cover
