"""Variable names: free variables, fresh-name supply, binder uniquification.

The paper's goal statement (Section 3) assumes "every binding site binds a
distinct variable name", and Section 2.2 shows why: without it, purely
syntactic identity produces *false positives* such as the two unrelated
``x+2`` occurrences in ``foo (let x=bar in x+2) (let x=pub in x+2)``.
:func:`uniquify_binders` implements that preprocessing step in
O(n) expected time (one dict operation per binder and per variable
occurrence), matching the paper's "time linear in the expression size".
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = [
    "NameSupply",
    "free_vars",
    "binder_names",
    "all_names",
    "has_unique_binders",
    "uniquify_binders",
    "rename_free",
]


class NameSupply:
    """Deterministic supply of fresh variable names.

    Freshness is guaranteed relative to a ``reserved`` set of names fixed
    at construction plus every name handed out so far.  Generated names
    look like ``v0, v1, ...`` (or ``{base}_0, {base}_1, ...`` when a base
    name is supplied), which keeps pretty-printed output readable.
    """

    __slots__ = ("_reserved", "_counter")

    def __init__(self, reserved: Iterable[str] = (), start: int = 0):
        self._reserved = set(reserved)
        self._counter = start

    def fresh(self, base: str = "v") -> str:
        """Return a name never seen in ``reserved`` nor returned before."""
        while True:
            candidate = f"{base}{self._counter}"
            self._counter += 1
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return candidate

    def reserve(self, name: str) -> None:
        """Mark ``name`` as taken."""
        self._reserved.add(name)

    @classmethod
    def avoiding(cls, expr: Expr) -> "NameSupply":
        """A supply whose fresh names clash with nothing in ``expr``."""
        return cls(reserved=all_names(expr))


def _scoped_walk(expr: Expr) -> Iterator[tuple[str, object]]:
    """Yield scope events for ``expr``: ('var', node), ('bind', name),
    ('unbind', name).  Children are visited in evaluation order and every
    ``bind`` is matched by an ``unbind`` when its scope ends."""
    stack: list[tuple[str, object]] = [("visit", expr)]
    while stack:
        op, payload = stack.pop()
        if op != "visit":
            yield op, payload
            continue
        node = payload
        assert isinstance(node, Expr)
        if isinstance(node, Var):
            yield "var", node
        elif isinstance(node, Lit):
            pass
        elif isinstance(node, Lam):
            stack.append(("unbind", node.binder))
            stack.append(("visit", node.body))
            yield "bind", node.binder
        elif isinstance(node, App):
            stack.append(("visit", node.arg))
            stack.append(("visit", node.fn))
        elif isinstance(node, Let):
            stack.append(("unbind", node.binder))
            stack.append(("visit", node.body))
            stack.append(("bind", node.binder))
            stack.append(("visit", node.bound))
        else:  # pragma: no cover
            raise TypeError(f"unknown node kind {node.kind}")


def free_vars(expr: Expr) -> set[str]:
    """The set of free variable names of ``expr``.

    Iterative; handles shadowing correctly via a bound-name multiset.
    """
    free: set[str] = set()
    bound: dict[str, int] = {}
    for op, payload in _scoped_walk(expr):
        if op == "var":
            name = payload.name  # type: ignore[union-attr]
            if bound.get(name, 0) == 0:
                free.add(name)
        elif op == "bind":
            bound[payload] = bound.get(payload, 0) + 1  # type: ignore[index]
        elif op == "unbind":
            bound[payload] -= 1  # type: ignore[index]
    return free


def binder_names(expr: Expr) -> list[str]:
    """All binder names of ``expr`` in preorder (with duplicates)."""
    out: list[str] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, (Lam, Let)):
            out.append(node.binder)
        for child in reversed(node.children()):
            stack.append(child)
    return out


def all_names(expr: Expr) -> set[str]:
    """Every name mentioned in ``expr``: binders and variable occurrences."""
    names: set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Var):
            names.add(node.name)
        elif isinstance(node, (Lam, Let)):
            names.add(node.binder)
        stack.extend(node.children())
    return names


def has_unique_binders(expr: Expr) -> bool:
    """True iff every binding site of ``expr`` binds a distinct name."""
    seen: set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, (Lam, Let)):
            if node.binder in seen:
                return False
            seen.add(node.binder)
        stack.extend(node.children())
    return True


def uniquify_binders(expr: Expr, supply: NameSupply | None = None) -> Expr:
    """Alpha-rename ``expr`` so every binding site binds a distinct name.

    Free variables are left untouched, and fresh names never collide with
    any name appearing anywhere in the input (so the result is
    alpha-equivalent to the input).  This is the preprocessing step the
    paper assumes before all hashing algorithms (Section 2.2).

    The traversal is an explicit stack machine: a mutable environment maps
    each in-scope source name to its replacement, and ``unbind`` entries
    restore the previous mapping when a scope ends, so shadowed names are
    handled correctly at any depth.
    """
    if supply is None:
        supply = NameSupply.avoiding(expr)

    env: dict[str, str] = {}
    results: list[Expr] = []
    # Stack ops: ("visit", node) | ("bind", (name, fresh)) |
    #            ("unbind", (name, old_or_None)) | ("build", (node, binder))
    stack: list[tuple[str, object]] = [("visit", expr)]
    while stack:
        op, payload = stack.pop()
        if op == "visit":
            node = payload
            assert isinstance(node, Expr)
            if isinstance(node, Var):
                results.append(Var(env.get(node.name, node.name)))
            elif isinstance(node, Lit):
                results.append(node)
            elif isinstance(node, Lam):
                fresh = supply.fresh(node.binder)
                stack.append(("build", (node, fresh)))
                stack.append(("unbind", (node.binder, env.get(node.binder))))
                stack.append(("visit", node.body))
                env[node.binder] = fresh
            elif isinstance(node, App):
                stack.append(("build", (node, None)))
                stack.append(("visit", node.arg))
                stack.append(("visit", node.fn))
            elif isinstance(node, Let):
                fresh = supply.fresh(node.binder)
                stack.append(("build", (node, fresh)))
                stack.append(("unbind", (node.binder, env.get(node.binder))))
                stack.append(("visit", node.body))
                stack.append(("bind", (node.binder, fresh)))
                stack.append(("visit", node.bound))
            else:  # pragma: no cover
                raise TypeError(f"unknown node kind {node.kind}")
        elif op == "bind":
            # The matching unbind was pushed at visit time with the outer
            # value, which is still correct here: any binds inside the Let's
            # bound expression have already been undone by their own unbinds.
            name, fresh = payload  # type: ignore[misc]
            env[name] = fresh
        elif op == "unbind":
            name, old = payload  # type: ignore[misc]
            if old is None:
                env.pop(name, None)
            else:
                env[name] = old
        elif op == "build":
            node, binder = payload  # type: ignore[misc]
            if isinstance(node, Lam):
                body = results.pop()
                results.append(Lam(binder, body))
            elif isinstance(node, App):
                arg = results.pop()
                fn = results.pop()
                results.append(App(fn, arg))
            else:
                assert isinstance(node, Let)
                body = results.pop()
                bound = results.pop()
                results.append(Let(binder, bound, body))
    assert len(results) == 1
    return results[0]


def rename_free(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rename *free* occurrences of variables according to ``mapping``.

    Bound occurrences (and binders) are untouched.  Used by tests and by
    the workload builders to stitch open fragments together.
    """
    env: dict[str, int] = {}
    results: list[Expr] = []
    stack: list[tuple[str, object]] = [("visit", expr)]
    while stack:
        op, payload = stack.pop()
        if op == "visit":
            node = payload
            assert isinstance(node, Expr)
            if isinstance(node, Var):
                if env.get(node.name, 0) == 0 and node.name in mapping:
                    results.append(Var(mapping[node.name]))
                else:
                    results.append(node)
            elif isinstance(node, Lit):
                results.append(node)
            elif isinstance(node, Lam):
                stack.append(("build", node))
                stack.append(("unbind", node.binder))
                stack.append(("visit", node.body))
                env[node.binder] = env.get(node.binder, 0) + 1
            elif isinstance(node, App):
                stack.append(("build", node))
                stack.append(("visit", node.arg))
                stack.append(("visit", node.fn))
            elif isinstance(node, Let):
                stack.append(("build", node))
                stack.append(("unbind", node.binder))
                stack.append(("visit", node.body))
                stack.append(("bind", node.binder))
                stack.append(("visit", node.bound))
            else:  # pragma: no cover
                raise TypeError(f"unknown node kind {node.kind}")
        elif op == "bind":
            env[payload] = env.get(payload, 0) + 1  # type: ignore[index]
        elif op == "unbind":
            env[payload] -= 1  # type: ignore[index]
        elif op == "build":
            node = payload
            if isinstance(node, Lam):
                results.append(Lam(node.binder, results.pop()))
            elif isinstance(node, App):
                arg = results.pop()
                fn = results.pop()
                results.append(App(fn, arg))
            else:
                assert isinstance(node, Let)
                body = results.pop()
                bound = results.pop()
                results.append(Let(node.binder, bound, body))
    assert len(results) == 1
    return results[0]
