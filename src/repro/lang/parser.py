"""Parser for the small lambda-calculus surface syntax.

Grammar (whitespace-insensitive; ``#`` starts a line comment)::

    expr     ::= lambda | letexpr | arith
    lambda   ::= ('\\' | 'λ') ident+ '.' expr
    letexpr  ::= 'let' ident '=' expr 'in' expr
    arith    ::= term  (('+' | '-') term)*
    term     ::= factor (('*' | '/') factor)*
    factor   ::= atom atom*                      -- application, left assoc
    atom     ::= ident | number | string | 'true' | 'false' | '(' expr ')'

Infix arithmetic desugars into applications of the primitive variables
``add``/``sub``/``mul``/``div`` (see :data:`repro.lang.pretty.INFIX_OPS`),
so ``x + 7`` parses as ``App (App (Var "add") (Var "x")) (Lit 7)`` --
exactly the shape the evaluator executes and the pretty printer
re-sugars.  This parser is a plain recursive-descent parser intended for
examples and tests; programmatically generated benchmark expressions are
built directly as ASTs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.lang.expr import App, Expr, Let, Lit, Var, lam_many

__all__ = ["parse", "ParseError"]


class ParseError(ValueError):
    """Raised on malformed input, with a human-readable location."""

    def __init__(self, message: str, position: int, text: str):
        line = text.count("\n", 0, position) + 1
        col = position - (text.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} at line {line}, column {col}")
        self.position = position


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>      [ \t\r\n]+ | \#[^\n]*      )
  | (?P<number>  \d+\.\d+ | \d+             )
  | (?P<ident>   [A-Za-z_][A-Za-z0-9_']*    )
  | (?P<string>  "(?:[^"\\]|\\.)*"          )
  | (?P<symbol>  [\\λ().=+\-*/]             )
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset({"let", "in", "true", "false"})


@dataclass(frozen=True)
class _Token:
    kind: str  # 'number' | 'ident' | 'string' | 'symbol' | 'keyword' | 'eof'
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos, text)
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "ident" and value in _KEYWORDS:
            kind = "keyword"
        tokens.append(_Token(kind, value, match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers ----------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text or 'end of input'!r}",
                token.pos,
                self.text,
            )
        return self.advance()

    # -- grammar ----------------------------------------------------------

    def parse_expr(self) -> Expr:
        token = self.peek()
        if token.kind == "symbol" and token.text in ("\\", "λ"):
            return self.parse_lambda()
        if token.kind == "keyword" and token.text == "let":
            return self.parse_let()
        return self.parse_arith()

    def parse_lambda(self) -> Expr:
        self.advance()  # the backslash
        binders = [self.expect("ident").text]
        while self.peek().kind == "ident":
            binders.append(self.advance().text)
        self.expect("symbol", ".")
        body = self.parse_expr()
        return lam_many(binders, body)

    def parse_let(self) -> Expr:
        self.advance()  # 'let'
        binder = self.expect("ident").text
        self.expect("symbol", "=")
        bound = self.parse_expr()
        self.expect("keyword", "in")
        body = self.parse_expr()
        return Let(binder, bound, body)

    def parse_arith(self) -> Expr:
        left = self.parse_term()
        while True:
            token = self.peek()
            if token.kind == "symbol" and token.text in ("+", "-"):
                self.advance()
                right = self.parse_term()
                prim = "add" if token.text == "+" else "sub"
                left = App(App(Var(prim), left), right)
            else:
                return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while True:
            token = self.peek()
            if token.kind == "symbol" and token.text in ("*", "/"):
                self.advance()
                right = self.parse_factor()
                prim = "mul" if token.text == "*" else "div"
                left = App(App(Var(prim), left), right)
            else:
                return left

    def parse_factor(self) -> Expr:
        expr = self.parse_atom()
        while self._at_atom_start():
            expr = App(expr, self.parse_atom())
        return expr

    def _at_atom_start(self) -> bool:
        token = self.peek()
        if token.kind in ("ident", "number", "string"):
            return True
        if token.kind == "keyword" and token.text in ("true", "false"):
            return True
        return token.kind == "symbol" and token.text == "("

    def parse_atom(self) -> Expr:
        token = self.peek()
        if token.kind == "symbol" and token.text == "-":
            # Unary minus on a number literal, e.g. inside "(-1)".  The
            # pretty printer always parenthesises negative literals, so
            # binary subtraction ("a - 1") is never ambiguous with this.
            self.advance()
            number = self.expect("number")
            if "." in number.text:
                return Lit(-float(number.text))
            return Lit(-int(number.text))
        if token.kind == "ident":
            self.advance()
            return Var(token.text)
        if token.kind == "number":
            self.advance()
            if "." in token.text:
                return Lit(float(token.text))
            return Lit(int(token.text))
        if token.kind == "string":
            self.advance()
            raw = token.text[1:-1]
            return Lit(raw.replace('\\"', '"').replace("\\\\", "\\"))
        if token.kind == "keyword" and token.text in ("true", "false"):
            self.advance()
            return Lit(token.text == "true")
        if token.kind == "symbol" and token.text == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect("symbol", ")")
            return inner
        raise ParseError(
            f"expected an expression, found {token.text or 'end of input'!r}",
            token.pos,
            self.text,
        )


def parse(text: str) -> Expr:
    """Parse ``text`` into an expression AST.

    >>> from repro.lang.pretty import pretty
    >>> pretty(parse(r"\\x. x + 7"))
    '\\\\x. x + 7'
    """
    parser = _Parser(text)
    expr = parser.parse_expr()
    token = parser.peek()
    if token.kind != "eof":
        raise ParseError(f"unexpected trailing input {token.text!r}", token.pos, text)
    return expr
