"""A call-by-value evaluator for closed expressions (CEK machine).

The paper motivates alpha-hashing with program transformations (CSE,
Section 1).  To *test* that our CSE pass is semantics-preserving we need
an evaluator; this is it.  It executes the same language the parser
produces: lambda, application, non-recursive let, literals, and a family
of primitive operations exposed as free variables (``add``, ``mul``,
``ite``, ...).

Design notes
------------
* The machine is a classic CEK loop -- control expression, environment,
  continuation stack -- so evaluation depth is bounded by the heap, not
  the Python call stack (depth-5000 let/application chains are pinned as
  regressions in ``tests/test_degenerate.py``).
* Environments are immutable linked frames, so closures capture their
  defining environment in O(1).
* A ``fuel`` budget bounds the number of machine steps; exceeding it
  raises :class:`EvalFuelExhausted`.  This keeps property-based tests
  safe against accidentally divergent random terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = [
    "evaluate",
    "Closure",
    "PrimValue",
    "Value",
    "EvalError",
    "EvalFuelExhausted",
    "PRIMITIVES",
]


class EvalError(RuntimeError):
    """Raised on runtime type errors, unbound variables, bad arity."""


class EvalFuelExhausted(EvalError):
    """Raised when the step budget is exhausted (likely divergence)."""


@dataclass(frozen=True)
class _Frame:
    """One immutable environment frame: ``name`` bound to ``value``."""

    name: str
    value: "Value"
    parent: Optional["_Frame"]


def _lookup(frame: Optional[_Frame], name: str) -> "Value":
    while frame is not None:
        if frame.name == name:
            return frame.value
        frame = frame.parent
    raise EvalError(f"unbound variable {name!r}")


class Closure:
    """A lambda value: body + captured environment."""

    __slots__ = ("binder", "body", "env")

    def __init__(self, binder: str, body: Expr, env: Optional[_Frame]):
        self.binder = binder
        self.body = body
        self.env = env

    def __repr__(self) -> str:  # pragma: no cover
        return f"<closure \\{self.binder}. ...>"


class PrimValue:
    """A (possibly partially applied) primitive operation."""

    __slots__ = ("name", "arity", "fn", "args")

    def __init__(self, name: str, arity: int, fn: Callable, args: tuple = ()):
        self.name = name
        self.arity = arity
        self.fn = fn
        self.args = args

    def applied_to(self, value: "Value") -> "Value":
        args = self.args + (value,)
        if len(args) == self.arity:
            return self.fn(*args)
        return PrimValue(self.name, self.arity, self.fn, args)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<prim {self.name}/{self.arity} applied to {len(self.args)}>"


Value = Union[int, float, bool, str, Closure, PrimValue]


def _num_op(name: str, fn: Callable) -> Callable:
    def wrapped(a: Value, b: Value) -> Value:
        if not isinstance(a, (int, float)) or isinstance(a, bool):
            raise EvalError(f"{name}: expected a number, got {a!r}")
        if not isinstance(b, (int, float)) or isinstance(b, bool):
            raise EvalError(f"{name}: expected a number, got {b!r}")
        return fn(a, b)

    return wrapped


def _div(a, b):
    if b == 0:
        raise EvalError("division by zero")
    return a / b


def _ite(cond: Value, then_val: Value, else_val: Value) -> Value:
    if not isinstance(cond, bool):
        raise EvalError(f"ite: expected a bool, got {cond!r}")
    return then_val if cond else else_val


#: name -> (arity, python function).  These are the "free variables with
#: meaning" used throughout the examples and the CSE soundness tests.
PRIMITIVES: dict[str, tuple[int, Callable]] = {
    "add": (2, _num_op("add", lambda a, b: a + b)),
    "sub": (2, _num_op("sub", lambda a, b: a - b)),
    "mul": (2, _num_op("mul", lambda a, b: a * b)),
    "div": (2, _num_op("div", _div)),
    "min": (2, _num_op("min", min)),
    "max": (2, _num_op("max", max)),
    "neg": (1, lambda a: -a),
    "eq": (2, lambda a, b: a == b),
    "lt": (2, _num_op("lt", lambda a, b: a < b)),
    "le": (2, _num_op("le", lambda a, b: a <= b)),
    "ite": (3, _ite),
    "exp": (1, lambda a: __import__("math").exp(a)),
    "log": (1, lambda a: __import__("math").log(a)),
    "tanh": (1, lambda a: __import__("math").tanh(a)),
    "relu": (1, lambda a: a if a > 0 else 0.0),
}


# Continuation tags.
_K_APP_FN = 0  # evaluated the function; payload = (arg_expr, env)
_K_APP_ARG = 1  # evaluated the argument; payload = fn_value
_K_LET = 2  # evaluated the bound expr; payload = (binder, body, env)


def evaluate(
    expr: Expr,
    env: dict[str, Value] | None = None,
    fuel: int = 1_000_000,
) -> Value:
    """Evaluate ``expr`` call-by-value and return its value.

    ``env`` supplies values for free variables (on top of the built-in
    :data:`PRIMITIVES`).  Raises :class:`EvalError` for runtime errors and
    :class:`EvalFuelExhausted` after ``fuel`` machine steps.
    """
    frame: Optional[_Frame] = None
    for name, (arity, fn) in PRIMITIVES.items():
        frame = _Frame(name, PrimValue(name, arity, fn), frame)
    if env:
        for name, value in env.items():
            frame = _Frame(name, value, frame)

    control: object = expr
    control_is_value = False
    current_env = frame
    kont: list[tuple[int, object]] = []

    while True:
        fuel -= 1
        if fuel < 0:
            raise EvalFuelExhausted("evaluation step budget exhausted")

        if not control_is_value:
            node = control
            assert isinstance(node, Expr)
            if isinstance(node, Lit):
                control = node.value
                control_is_value = True
            elif isinstance(node, Var):
                control = _lookup(current_env, node.name)
                control_is_value = True
            elif isinstance(node, Lam):
                control = Closure(node.binder, node.body, current_env)
                control_is_value = True
            elif isinstance(node, App):
                kont.append((_K_APP_FN, (node.arg, current_env)))
                control = node.fn
            elif isinstance(node, Let):
                kont.append((_K_LET, (node.binder, node.body, current_env)))
                control = node.bound
            else:  # pragma: no cover
                raise EvalError(f"cannot evaluate node kind {node.kind}")
            continue

        # control is a value; consume a continuation.
        if not kont:
            return control  # type: ignore[return-value]
        tag, payload = kont.pop()
        if tag == _K_APP_FN:
            arg_expr, saved_env = payload  # type: ignore[misc]
            kont.append((_K_APP_ARG, control))
            control = arg_expr
            control_is_value = False
            current_env = saved_env
        elif tag == _K_APP_ARG:
            fn_value = payload
            if isinstance(fn_value, Closure):
                current_env = _Frame(fn_value.binder, control, fn_value.env)
                control = fn_value.body
                control_is_value = False
            elif isinstance(fn_value, PrimValue):
                control = fn_value.applied_to(control)
                control_is_value = True
            else:
                raise EvalError(f"cannot apply non-function {fn_value!r}")
        elif tag == _K_LET:
            binder, body, saved_env = payload  # type: ignore[misc]
            current_env = _Frame(binder, control, saved_env)
            control = body
            control_is_value = False
        else:  # pragma: no cover
            raise EvalError(f"unknown continuation tag {tag}")
