"""Baseline: purely syntactic (structural) hashing (Section 2.3).

The hash of a node combines the constructor, any names, and the
children's hashes -- classic hash-consing.  O(n), one dict-free pass.

With unique binders this baseline has **no false positives** (structural
equality implies alpha-equivalence) but plenty of **false negatives**:
``\\x.x+1`` and ``\\y.y+1`` hash differently (Table 1: true pos. Yes,
true neg. No).  It exists to calibrate the cost floor of the correct
algorithms and to implement structure sharing
(:mod:`repro.apps.sharing`), for which it is exactly right.
"""

from __future__ import annotations

from typing import Optional

from repro.core.combiners import HashCombiners, default_combiners
from repro.core.hashed import AlphaHashes
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = ["structural_hash_all"]


def structural_hash_all(
    expr: Expr, combiners: Optional[HashCombiners] = None
) -> AlphaHashes:
    """Annotate every subexpression with its *syntactic* hash."""
    if combiners is None:
        combiners = default_combiners()
    combine = combiners.combine
    hash_name = combiners.hash_name

    by_id: dict[int, int] = {}
    results: list[int] = []
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, visited = stack.pop()
        if not visited:
            stack.append((node, True))
            for child in reversed(node.children()):
                stack.append((child, False))
            continue
        if isinstance(node, Var):
            value = combine("baseline_var", hash_name(node.name))
        elif isinstance(node, Lit):
            value = combine("baseline_lit", combiners.hash_lit(node.value))
        elif isinstance(node, Lam):
            body = results.pop()
            value = combine("baseline_lam", hash_name(node.binder), body)
        elif isinstance(node, App):
            arg = results.pop()
            fn = results.pop()
            value = combine("baseline_app", fn, arg)
        elif isinstance(node, Let):
            body = results.pop()
            bound = results.pop()
            value = combine("baseline_let", hash_name(node.binder), bound, body)
        else:  # pragma: no cover
            raise TypeError(f"unknown node kind {node.kind}")
        by_id[id(node)] = value
        results.append(value)
    assert len(results) == 1
    return AlphaHashes(expr, combiners, by_id)
