"""Baseline: locally nameless hashing (Section 2.5) -- correct but slow.

The hash of a subexpression is the hash of its de-Bruijn-ised form
*taken in isolation*: locally bound variables become indices, free
variables keep their names.  This respects alpha-equivalence exactly
(Table 1: true pos. Yes, true neg. Yes) and is "the fastest algorithm we
know" prior to the paper "that meets the specification".

The cost is the complexity hole the paper's algorithm removes: the hash
of ``\\x.e`` cannot be derived from the hash of ``e`` (every occurrence
of ``x`` must switch from a name to an index), so each binder re-hashes
its entire body.  ``Var``/``App``/``Lit`` remain compositional;
``Lam`` (and the body side of ``Let``) trigger a full sub-traversal.
Worst case -- the deeply nested binder chains of Section 7.1 -- is
quadratic (the paper's O(n^2 log n) with balanced-tree environments;
expected O(n^2) with Python dicts).
"""

from __future__ import annotations

from typing import Optional

from repro.core.combiners import HashCombiners, default_combiners
from repro.core.hashed import AlphaHashes
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = ["locally_nameless_hash_all"]


def locally_nameless_hash_all(
    expr: Expr, combiners: Optional[HashCombiners] = None
) -> AlphaHashes:
    """Annotate every subexpression with its locally-nameless hash."""
    if combiners is None:
        combiners = default_combiners()

    by_id: dict[int, int] = {}
    results: list[int] = []
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, visited = stack.pop()
        if not visited:
            stack.append((node, True))
            for child in reversed(node.children()):
                stack.append((child, False))
            continue
        if isinstance(node, Var):
            # A variable in isolation is free: hash by name.
            value = combiners.combine("baseline_free", combiners.hash_name(node.name))
        elif isinstance(node, Lit):
            value = combiners.combine("baseline_lit", combiners.hash_lit(node.value))
        elif isinstance(node, App):
            arg = results.pop()
            fn = results.pop()
            value = combiners.combine("baseline_app", fn, arg)
        elif isinstance(node, Lam):
            results.pop()  # the body's own hash cannot be reused
            value = combiners.combine(
                "baseline_lam", _ln_traverse(node.body, node.binder, combiners)
            )
        elif isinstance(node, Let):
            body_own = results.pop()
            bound = results.pop()
            del body_own  # recomputed with the binder de-Bruijn-ised
            value = combiners.combine(
                "baseline_let",
                bound,
                _ln_traverse(node.body, node.binder, combiners),
            )
        else:  # pragma: no cover
            raise TypeError(f"unknown node kind {node.kind}")
        by_id[id(node)] = value
        results.append(value)
    assert len(results) == 1
    return AlphaHashes(expr, combiners, by_id)


def _ln_traverse(body: Expr, binder: str, combiners: HashCombiners) -> int:
    """Hash the de-Bruijn-ised form of ``body`` under one new binder.

    A single full traversal of ``body``; nested binders inside are
    indexed within the same traversal (they do not re-trigger).  This is
    the per-binder O(|body|) re-hash that makes the algorithm quadratic
    overall.
    """
    combine = combiners.combine
    hash_name = combiners.hash_name

    depth = 1
    env: dict[str, list[int]] = {binder: [0]}
    results: list[int] = []
    stack: list[tuple[str, object]] = [("visit", body)]
    while stack:
        op, payload = stack.pop()
        if op == "visit":
            node = payload
            assert isinstance(node, Expr)
            if isinstance(node, Var):
                levels = env.get(node.name)
                if levels:
                    results.append(combine("baseline_bound", depth - levels[-1] - 1))
                else:
                    results.append(combine("baseline_free", hash_name(node.name)))
            elif isinstance(node, Lit):
                results.append(combine("baseline_lit", combiners.hash_lit(node.value)))
            elif isinstance(node, Lam):
                stack.append(("build", node))
                stack.append(("unbind", node.binder))
                stack.append(("visit", node.body))
                env.setdefault(node.binder, []).append(depth)
                depth += 1
            elif isinstance(node, App):
                stack.append(("build", node))
                stack.append(("visit", node.arg))
                stack.append(("visit", node.fn))
            elif isinstance(node, Let):
                stack.append(("build", node))
                stack.append(("unbind", node.binder))
                stack.append(("visit", node.body))
                stack.append(("bind", node.binder))
                stack.append(("visit", node.bound))
            else:  # pragma: no cover
                raise TypeError(f"unknown node kind {node.kind}")
        elif op == "bind":
            env.setdefault(payload, []).append(depth)  # type: ignore[arg-type]
            depth += 1
        elif op == "unbind":
            env[payload].pop()  # type: ignore[index]
            depth -= 1
        elif op == "build":
            node = payload
            if isinstance(node, Lam):
                results.append(combine("baseline_lam", results.pop()))
            elif isinstance(node, App):
                arg = results.pop()
                fn = results.pop()
                results.append(combine("baseline_app", fn, arg))
            else:
                assert isinstance(node, Let)
                body_hash = results.pop()
                bound_hash = results.pop()
                results.append(combine("baseline_let", bound_hash, body_hash))
    assert len(results) == 1
    return results[0]
