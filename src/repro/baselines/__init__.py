"""Comparison algorithms from Table 1 of the paper."""

from repro.baselines.debruijn_hash import debruijn_hash_all
from repro.baselines.locally_nameless import locally_nameless_hash_all
from repro.baselines.registry import (
    ALGORITHMS,
    TABLE1_ORDER,
    HashAlgorithm,
    get_algorithm,
)
from repro.baselines.structural import structural_hash_all

__all__ = [
    "ALGORITHMS",
    "TABLE1_ORDER",
    "HashAlgorithm",
    "get_algorithm",
    "structural_hash_all",
    "debruijn_hash_all",
    "locally_nameless_hash_all",
]
