"""Algorithm registry: the four hashing algorithms of Table 1 (plus the
Appendix C variant), behind one uniform interface.

Every algorithm maps an expression to an :class:`~repro.core.hashed.
AlphaHashes` annotation of all subexpressions.  The registry records the
Table 1 metadata -- asymptotic complexity and whether the algorithm
produces only true positives / true negatives -- which the Table 1
harness verifies empirically against the paper's own counterexamples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.baselines.debruijn_hash import debruijn_hash_all
from repro.baselines.locally_nameless import locally_nameless_hash_all
from repro.baselines.structural import structural_hash_all
from repro.core.combiners import HashCombiners
from repro.core.hashed import AlphaHashes, alpha_hash_all
from repro.core.linear_lazy import alpha_hash_all_lazy
from repro.lang.expr import Expr

__all__ = ["HashAlgorithm", "ALGORITHMS", "TABLE1_ORDER", "get_algorithm"]


@dataclass(frozen=True)
class HashAlgorithm:
    """One row of Table 1.

    ``true_positives``: every pair the algorithm equates really is
    alpha-equivalent (no false positives), assuming unique binders.
    ``true_negatives``: every alpha-equivalent pair is equated (no false
    negatives).  ``paper_complexity`` quotes Table 1 (balanced-BST maps);
    ``python_complexity`` is the expected cost with hash maps, which
    shaves one log factor off the map-heavy algorithms.
    """

    name: str
    label: str
    section: str
    paper_complexity: str
    python_complexity: str
    true_positives: bool
    true_negatives: bool
    run: Callable[[Expr, Optional[HashCombiners]], AlphaHashes]

    @property
    def correct(self) -> bool:
        """Meets the Section 3 specification (true pos. AND true neg.)."""
        return self.true_positives and self.true_negatives

    def __call__(
        self, expr: Expr, combiners: Optional[HashCombiners] = None
    ) -> AlphaHashes:
        return self.run(expr, combiners)


def _run_ours(expr: Expr, combiners: Optional[HashCombiners]) -> AlphaHashes:
    return alpha_hash_all(expr, combiners)


ALGORITHMS: dict[str, HashAlgorithm] = {
    "structural": HashAlgorithm(
        name="structural",
        label="Structural",
        section="2.3",
        paper_complexity="O(n)",
        python_complexity="O(n)",
        true_positives=True,
        true_negatives=False,
        run=structural_hash_all,
    ),
    "debruijn": HashAlgorithm(
        name="debruijn",
        label="De Bruijn",
        section="2.4",
        paper_complexity="O(n log n)",
        python_complexity="O(n) expected",
        true_positives=False,
        true_negatives=False,
        run=debruijn_hash_all,
    ),
    "locally_nameless": HashAlgorithm(
        name="locally_nameless",
        label="Locally Nameless",
        section="2.5",
        paper_complexity="O(n^2 log n)",
        python_complexity="O(n^2) expected",
        true_positives=True,
        true_negatives=True,
        run=locally_nameless_hash_all,
    ),
    "ours": HashAlgorithm(
        name="ours",
        label="Ours",
        section="3-5",
        paper_complexity="O(n (log n)^2)",
        python_complexity="O(n log n) expected",
        true_positives=True,
        true_negatives=True,
        run=_run_ours,
    ),
    "ours_lazy": HashAlgorithm(
        name="ours_lazy",
        label="Ours (Appendix C)",
        section="App. C",
        paper_complexity="O(n (log n)^2)",
        python_complexity="O(n log n) expected",
        true_positives=True,
        true_negatives=True,
        run=alpha_hash_all_lazy,
    ),
}

#: The four rows of Table 1, in the paper's order.
TABLE1_ORDER = ("structural", "debruijn", "locally_nameless", "ours")


def get_algorithm(name: str) -> HashAlgorithm:
    """Look an algorithm up by registry name (KeyError lists options)."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        ) from None
