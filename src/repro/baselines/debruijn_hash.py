"""Baseline: de Bruijn hashing (Section 2.4) -- fast but *incorrect*.

The expression is de-Bruijn-ised once, relative to the root, and then
hashed with the vanilla compositional scheme.  Bound variable
occurrences hash by their **global** de Bruijn index, which is context
dependent; as the paper shows, that yields both

* **false negatives** -- in ``\\t. foo (\\x.x+t) (\\y.\\x.x+t)`` the two
  alpha-equivalent ``\\x.x+t`` subterms hash differently because ``t``
  appears as ``%1`` in one and ``%2`` in the other; and
* **false positives** -- in ``\\t. foo (\\x.t*(x+1)) (\\y.\\x.y*(x+1))``
  the unrelated subterms both become ``\\.%1*(%0+1)``.

(Table 1: true pos. No, true neg. No.)  The paper includes it to show
the performance cost of *correct* alpha-hashing; so do we.

Cost: one pass with O(1) expected dict operations per variable -- the
paper's O(n log n) with balanced-tree environments becomes expected O(n)
with hash maps.
"""

from __future__ import annotations

from typing import Optional

from repro.core.combiners import HashCombiners, default_combiners
from repro.core.hashed import AlphaHashes
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = ["debruijn_hash_all"]


def debruijn_hash_all(
    expr: Expr, combiners: Optional[HashCombiners] = None
) -> AlphaHashes:
    """Annotate every subexpression with its root-relative de Bruijn hash.

    Note: unlike the alpha-hash, this baseline's node hashes are
    *context-dependent*, so the input tree must not share node objects
    between different positions (every generator in :mod:`repro.gen` and
    :mod:`repro.workloads` builds fresh nodes).
    """
    if combiners is None:
        combiners = default_combiners()
    combine = combiners.combine
    hash_name = combiners.hash_name

    depth = 0
    env: dict[str, list[int]] = {}
    by_id: dict[int, int] = {}
    results: list[int] = []
    # ops: visit / bind(name) / unbind(name) / build(node)
    stack: list[tuple[str, object]] = [("visit", expr)]
    while stack:
        op, payload = stack.pop()
        if op == "visit":
            node = payload
            assert isinstance(node, Expr)
            if isinstance(node, Var):
                levels = env.get(node.name)
                if levels:
                    value = combine("baseline_bound", depth - levels[-1] - 1)
                else:
                    value = combine("baseline_free", hash_name(node.name))
                by_id[id(node)] = value
                results.append(value)
            elif isinstance(node, Lit):
                value = combine("baseline_lit", combiners.hash_lit(node.value))
                by_id[id(node)] = value
                results.append(value)
            elif isinstance(node, Lam):
                stack.append(("build", node))
                stack.append(("unbind", node.binder))
                stack.append(("visit", node.body))
                env.setdefault(node.binder, []).append(depth)
                depth += 1
            elif isinstance(node, App):
                stack.append(("build", node))
                stack.append(("visit", node.arg))
                stack.append(("visit", node.fn))
            elif isinstance(node, Let):
                stack.append(("build", node))
                stack.append(("unbind", node.binder))
                stack.append(("visit", node.body))
                stack.append(("bind", node.binder))
                stack.append(("visit", node.bound))
            else:  # pragma: no cover
                raise TypeError(f"unknown node kind {node.kind}")
        elif op == "bind":
            env.setdefault(payload, []).append(depth)  # type: ignore[arg-type]
            depth += 1
        elif op == "unbind":
            env[payload].pop()  # type: ignore[index]
            depth -= 1
        elif op == "build":
            node = payload
            if isinstance(node, Lam):
                value = combine("baseline_lam", results.pop())
            elif isinstance(node, App):
                arg = results.pop()
                fn = results.pop()
                value = combine("baseline_app", fn, arg)
            else:
                assert isinstance(node, Let)
                body = results.pop()
                bound = results.pop()
                value = combine("baseline_let", bound, body)
            by_id[id(node)] = value
            results.append(value)
    assert len(results) == 1
    return AlphaHashes(expr, combiners, by_id)
