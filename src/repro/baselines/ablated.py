"""Ablated variants of the fast summariser (design-choice baselines).

Two load-bearing choices from the paper's algorithm, each switched off:

* **Smaller-subtree merge (Section 4.8).**
  :func:`alpha_hash_all_always_left` always folds the argument/body map
  into the function/bound map, regardless of size.  On unbalanced trees
  the merge work goes quadratic -- exactly the problem Section 4.8
  fixes.

* **XOR-maintained map hash (Section 5.2).**
  :func:`alpha_hash_all_recompute_vm` keeps the same maps but recomputes
  the variable-map hash from scratch at every node, "prohibitively
  (indeed asymptotically) slow" per the paper: O(n * avg-map-size)
  instead of O(1) per update.

These live next to the Table 1 baselines because they are *comparison
algorithms*, not measurement code: the timing sweeps that race them
live in :mod:`repro.evalharness.ablations`, and both are registered as
named backends in the unified :mod:`repro.api.backends` registry.
"""

from __future__ import annotations

from typing import Optional

from repro.core.combiners import HashCombiners, default_combiners
from repro.core.hashed import AlphaHashes
from repro.core.position_tree import pt_here_hash, pt_join_hash
from repro.core.structure import (
    sapp_hash,
    slam_hash,
    slet_hash,
    slit_hash,
    svar_hash,
    top_hash,
)
from repro.core.varmap import HashedVarMap, MapOpStats, entry_hash
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = ["alpha_hash_all_always_left", "alpha_hash_all_recompute_vm"]


def _summarise_generic(
    expr: Expr,
    combiners: HashCombiners,
    merge_left_always: bool,
    recompute_vm_hash: bool,
    stats: Optional[MapOpStats] = None,
) -> AlphaHashes:
    """The fast summariser with ablation switches.

    Mirrors :func:`repro.core.hashed.alpha_hash_all`; kept separate so
    the production path stays branch-free.
    """
    here = pt_here_hash(combiners)
    var_structure = svar_hash(combiners)
    count_ops = stats is not None

    by_id: dict[int, int] = {}
    results: list[tuple[int, HashedVarMap]] = []
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, visited = stack.pop()
        if not visited:
            stack.append((node, True))
            for child in reversed(node.children()):
                stack.append((child, False))
            continue

        if isinstance(node, Var):
            s_hash = var_structure
            varmap = HashedVarMap.singleton(combiners, node.name, here)
            if count_ops:
                stats.singleton += 1
        elif isinstance(node, Lit):
            s_hash = slit_hash(combiners, node.value)
            varmap = HashedVarMap.empty()
        elif isinstance(node, Lam):
            s_body, varmap = results.pop()
            pos = varmap.remove(combiners, node.binder)
            if count_ops:
                stats.remove += 1
            s_hash = slam_hash(combiners, node.size, pos, s_body)
        elif isinstance(node, App):
            s_arg, vm_arg = results.pop()
            s_fn, vm_fn = results.pop()
            if merge_left_always:
                left_bigger = True
            else:
                left_bigger = len(vm_fn) >= len(vm_arg)
            s_hash = sapp_hash(combiners, node.size, left_bigger, s_fn, s_arg)
            big, small = (vm_fn, vm_arg) if left_bigger else (vm_arg, vm_fn)
            if count_ops:
                stats.merge_entries += len(small)
            _fold(combiners, big, small, node.size)
            varmap = big
        elif isinstance(node, Let):
            s_body, vm_body = results.pop()
            s_bound, vm_bound = results.pop()
            pos_x = vm_body.remove(combiners, node.binder)
            if count_ops:
                stats.remove += 1
            if merge_left_always:
                left_bigger = True
            else:
                left_bigger = len(vm_bound) >= len(vm_body)
            s_hash = slet_hash(
                combiners, node.size, pos_x, left_bigger, s_bound, s_body
            )
            big, small = (vm_bound, vm_body) if left_bigger else (vm_body, vm_bound)
            if count_ops:
                stats.merge_entries += len(small)
            _fold(combiners, big, small, node.size)
            varmap = big
        else:  # pragma: no cover
            raise TypeError(f"unknown node kind {node.kind}")

        if recompute_vm_hash:
            vm_hash = varmap.recomputed_hash(combiners)
            varmap.hash = vm_hash
        else:
            vm_hash = varmap.hash
        by_id[id(node)] = top_hash(combiners, s_hash, vm_hash)
        results.append((s_hash, varmap))
    assert len(results) == 1
    return AlphaHashes(expr, combiners, by_id)


def _fold(
    combiners: HashCombiners, big: HashedVarMap, small: HashedVarMap, tag: int
) -> None:
    entries = big.entries
    acc = big.hash
    for name, small_pos in small.entries.items():
        old_pos = entries.get(name)
        new_pos = pt_join_hash(combiners, tag, old_pos, small_pos)
        if old_pos is not None:
            acc ^= entry_hash(combiners, name, old_pos)
        entries[name] = new_pos
        acc ^= entry_hash(combiners, name, new_pos)
    big.hash = acc


def alpha_hash_all_always_left(
    expr: Expr,
    combiners: Optional[HashCombiners] = None,
    stats: Optional[MapOpStats] = None,
) -> AlphaHashes:
    """Ablation: merge right-into-left regardless of map sizes.

    Still a correct alpha-hash (the merge policy is deterministic), but
    the Lemma 6.1 bound no longer applies: unbalanced trees degrade to
    quadratic merge work.
    """
    if combiners is None:
        combiners = default_combiners()
    return _summarise_generic(
        expr, combiners, merge_left_always=True, recompute_vm_hash=False, stats=stats
    )


def alpha_hash_all_recompute_vm(
    expr: Expr,
    combiners: Optional[HashCombiners] = None,
    stats: Optional[MapOpStats] = None,
) -> AlphaHashes:
    """Ablation: recompute the variable-map hash from scratch per node.

    Produces bit-identical hashes to the production algorithm (the XOR
    aggregate is the same value either way) while paying the
    O(map size) cost the incremental maintenance avoids.
    """
    if combiners is None:
        combiners = default_combiners()
    return _summarise_generic(
        expr, combiners, merge_left_always=False, recompute_vm_hash=True, stats=stats
    )
