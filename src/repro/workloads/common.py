"""Shared builders for the synthetic machine-learning workloads.

The paper's Table 2 / Figure 3 expressions are real compiler IR dumps
(an MNIST convolution kernel, the ADBench GMM objective, and a PyTorch
BERT); those artefacts are not redistributable, so :mod:`repro.workloads`
synthesises expressions with the same node counts and the same shape
characteristics -- scalarised tensor arithmetic, deep ``let`` spines from
ANF-style lowering, shared activation lambdas, and loop-unrolled
repetition (which creates the alpha-equivalent subterms the algorithms
are being asked to find).  The hashing algorithms observe only AST shape
and binding structure, so matched-shape synthetic terms exercise
identical code paths (see DESIGN.md, "Substitutions").

This module provides the scalar-expression vocabulary those builders
share, plus :func:`pad_to`, which pads an expression to an exact node
count so the workload sizes can match the paper's reported ``n``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = [
    "prim",
    "add",
    "sub",
    "mul",
    "div",
    "apply1",
    "sum_chain",
    "product_chain",
    "dot",
    "let_chain",
    "pad_to",
]


def prim(name: str, *args: Expr) -> Expr:
    """Apply the primitive ``name`` to ``args`` (curried)."""
    expr: Expr = Var(name)
    for arg in args:
        expr = App(expr, arg)
    return expr


def add(a: Expr, b: Expr) -> Expr:
    return prim("add", a, b)


def sub(a: Expr, b: Expr) -> Expr:
    return prim("sub", a, b)


def mul(a: Expr, b: Expr) -> Expr:
    return prim("mul", a, b)


def div(a: Expr, b: Expr) -> Expr:
    return prim("div", a, b)


def apply1(fn: Expr, arg: Expr) -> Expr:
    return App(fn, arg)


def sum_chain(terms: Sequence[Expr]) -> Expr:
    """Left-nested sum ``(((t0 + t1) + t2) + ...)`` -- the shape a
    sequential reduction loop unrolls into."""
    if not terms:
        raise ValueError("sum_chain needs at least one term")
    acc = terms[0]
    for term in terms[1:]:
        acc = add(acc, term)
    return acc


def product_chain(terms: Sequence[Expr]) -> Expr:
    """Left-nested product."""
    if not terms:
        raise ValueError("product_chain needs at least one term")
    acc = terms[0]
    for term in terms[1:]:
        acc = mul(acc, term)
    return acc


def dot(a_names: Sequence[str], b_names: Sequence[str]) -> Expr:
    """Unrolled dot product of two named vectors."""
    if len(a_names) != len(b_names):
        raise ValueError("dot needs equal-length vectors")
    return sum_chain([mul(Var(a), Var(b)) for a, b in zip(a_names, b_names)])


def let_chain(bindings: Iterable[tuple[str, Expr]], body: Expr) -> Expr:
    """ANF-style let spine, first binding outermost."""
    result = body
    for name, bound in reversed(list(bindings)):
        result = Let(name, bound, result)
    return result


def pad_to(expr: Expr, target: int, prefix: str = "pad") -> Expr:
    """Wrap ``expr`` so the result has exactly ``target`` nodes.

    Pads with dead ``let`` bindings (``let pad = 0 in ...``, +2 nodes
    each) plus one unused-binder lambda (+1) when the gap is odd, so any
    non-negative gap is reachable.  Only used to align workload sizes
    with the node counts the paper reports; the padding is semantically
    inert for hashing purposes (every pad introduces fresh names).
    """
    gap = target - expr.size
    if gap < 0:
        raise ValueError(
            f"expression already has {expr.size} nodes > target {target}"
        )
    counter = 0
    if gap % 2 == 1:
        expr = Lam(f"{prefix}_l", expr)
        gap -= 1
    while gap > 0:
        counter += 1
        expr = Let(f"{prefix}_b{counter}", Lit(0), expr)
        gap -= 2
    assert expr.size == target
    return expr
