"""Synthetic "GMM" workload (Table 2, n = 1810).

The paper's mid-size expression is the Gaussian Mixture Model objective
from the ADBench automatic-differentiation benchmark suite [Srajer et
al. 2018].  We synthesise the classic scalarised GMM log-likelihood: for
every data point ``n`` and mixture component ``k``, a Mahalanobis-style
quadratic form over the ``D`` dimensions, exponentiated and mixed; per
point, a log of the component sum; summed over the data set::

    let t_n_k = exp (alpha_k - 0.5 * (((\\s. s * s) (x_n_0 - mu_k_0)) * q_k_0
                                      + ... ))             ... in
    let p_n = log (t_n_0 + ... + t_n_{K-1})                ... in
    p_0 + ... + p_{N-1}

The unrolled per-(n, k) bodies are shape-identical with different free
leaves -- the same repetition profile the real ADBench dump has, where
loop unrolling copies the same code with different data.  The squaring helper is
inlined at every use site with a fresh binder (compiler-inliner style),
making the copies alpha-equivalent but not syntactically identical.
The default parameters (10 points, 2 components, 4 dimensions) give
1797 natural nodes, padded to the paper's 1810.
"""

from __future__ import annotations

from repro.lang.expr import Expr, Lam, Var
from repro.workloads.common import (
    apply1,
    let_chain,
    mul,
    pad_to,
    prim,
    sub,
    sum_chain,
)

__all__ = ["build_gmm", "GMM_NODES"]

#: Node count reported in Table 2 for this workload.
GMM_NODES = 1810


def build_gmm(
    points: int = 10,
    components: int = 2,
    dims: int = 4,
    target_nodes: int | None = GMM_NODES,
) -> Expr:
    """Build the unrolled GMM log-likelihood expression.

    ``points`` data points, ``components`` mixture components and
    ``dims`` dimensions; ``target_nodes=None`` skips padding.
    """
    bindings: list[tuple[str, Expr]] = []

    point_terms: list[str] = []
    for n in range(points):
        component_names: list[str] = []
        for k in range(components):
            # The squaring lambda is inlined with a fresh binder at every
            # use site (compiler-inliner style), so the copies are
            # alpha-equivalent without being syntactically identical.
            quad_terms = [
                mul(
                    apply1(
                        Lam(f"s_{n}_{k}_{d}", mul(Var(f"s_{n}_{k}_{d}"), Var(f"s_{n}_{k}_{d}"))),
                        sub(Var(f"x_{n}_{d}"), Var(f"mu_{k}_{d}")),
                    ),
                    Var(f"q_{k}_{d}"),
                )
                for d in range(dims)
            ]
            body = prim(
                "exp",
                sub(Var(f"alpha_{k}"), mul(Var("half"), sum_chain(quad_terms))),
            )
            name = f"t_{n}_{k}"
            bindings.append((name, body))
            component_names.append(name)
        point_name = f"p_{n}"
        bindings.append(
            (point_name, prim("log", sum_chain([Var(c) for c in component_names])))
        )
        point_terms.append(point_name)

    expr = let_chain(bindings, sum_chain([Var(p) for p in point_terms]))
    if target_nodes is not None:
        expr = pad_to(expr, target_nodes, prefix="gmm")
    return expr
