"""Synthetic "BERT" workload (Table 2 n = 12975 at 12 layers; Figure 3).

The paper's largest expression is a PyTorch BERT encoder, whose
``layers`` parameter "linearly scales the expression size due to loop
unrolling".  We synthesise a scalarised transformer encoder with the
same properties:

* per layer: Q/K/V projections (unrolled dot products), attention
  scores with exponential weighting, weighted value aggregation, a
  residual combine, a layer-norm-style centring step, and a two-layer
  feed-forward block through a shared ``gelu``-ish activation lambda;
* per-layer weights are distinct free variables (``wq_3_...``), so whole
  layers are *not* alpha-equivalent -- but the unrolled per-position
  blocks inside every layer are shape-identical, giving the hashing
  algorithms the same rich equivalence structure the real dump has;
* expression size is an exactly affine function of ``layers``.

Node counts are padded to ``BERT_BASE + layers * BERT_PER_LAYER``, with
the constants chosen so that 12 layers matches the paper's reported
12975 nodes while keeping scaling linear for the Figure 3 sweep.
"""

from __future__ import annotations

from repro.lang.expr import Expr, Lam, Var
from repro.workloads.common import (
    add,
    apply1,
    div,
    let_chain,
    mul,
    pad_to,
    prim,
    sub,
    sum_chain,
)

__all__ = ["build_bert", "bert_target_nodes", "BERT12_NODES", "BERT_PER_LAYER", "BERT_BASE"]

#: Node count Table 2 reports for the 12-layer configuration.
BERT12_NODES = 12975

_SEQ = 2  # sequence positions
_DIM = 3  # model dimension
_HEADS = 1  # attention heads


def _layer(bindings: list[tuple[str, Expr]], layer: int) -> None:
    """Append the let-bindings of encoder layer ``layer`` (reading
    activations ``x_{layer}_{i}_{d}``, writing ``x_{layer+1}_{i}_{d}``)."""
    lt = f"l{layer}"

    # Q/K/V projections: one unrolled dot product per (role, pos, dim).
    for role in ("q", "k", "v"):
        for i in range(_SEQ):
            for d in range(_DIM):
                terms = [
                    mul(Var(f"w{role}_{lt}_{d}_{e}"), Var(f"x_{layer}_{i}_{e}"))
                    for e in range(_DIM)
                ]
                bindings.append((f"{role}_{lt}_{i}_{d}", sum_chain(terms)))

    # Attention scores: exp(q_i . k_j) for every position pair.
    for i in range(_SEQ):
        for j in range(_SEQ):
            dot_qk = sum_chain(
                [
                    mul(Var(f"q_{lt}_{i}_{d}"), Var(f"k_{lt}_{j}_{d}"))
                    for d in range(_DIM)
                ]
            )
            bindings.append((f"s_{lt}_{i}_{j}", prim("exp", dot_qk)))

    # Attention output: sum_j (s_ij / z_i) * v_j_d, with z_i the
    # normaliser folded in per term.
    for i in range(_SEQ):
        bindings.append(
            (f"z_{lt}_{i}", sum_chain([Var(f"s_{lt}_{i}_{j}") for j in range(_SEQ)]))
        )
    for i in range(_SEQ):
        for d in range(_DIM):
            terms = [
                mul(div(Var(f"s_{lt}_{i}_{j}"), Var(f"z_{lt}_{i}")), Var(f"v_{lt}_{j}_{d}"))
                for j in range(_SEQ)
            ]
            bindings.append((f"a_{lt}_{i}_{d}", sum_chain(terms)))

    # Residual combine: y = x + wo * a.
    for i in range(_SEQ):
        for d in range(_DIM):
            bindings.append(
                (
                    f"y_{lt}_{i}_{d}",
                    add(
                        Var(f"x_{layer}_{i}_{d}"),
                        mul(Var(f"wo_{lt}_{d}"), Var(f"a_{lt}_{i}_{d}")),
                    ),
                )
            )

    # Layer-norm-style centring: m_i = sum_d y; yn = (y - m) * g.
    for i in range(_SEQ):
        bindings.append(
            (
                f"m_{lt}_{i}",
                sum_chain([Var(f"y_{lt}_{i}_{d}") for d in range(_DIM)]),
            )
        )
    for i in range(_SEQ):
        for d in range(_DIM):
            bindings.append(
                (
                    f"n_{lt}_{i}_{d}",
                    mul(
                        sub(Var(f"y_{lt}_{i}_{d}"), Var(f"m_{lt}_{i}")),
                        Var(f"g_{lt}_{d}"),
                    ),
                )
            )

    # Feed-forward: h = gelu(w1 . n);  x' = n + (w2 . h-broadcast).
    for i in range(_SEQ):
        for d in range(_DIM):
            terms = [
                mul(Var(f"w1_{lt}_{d}_{e}"), Var(f"n_{lt}_{i}_{e}"))
                for e in range(_DIM)
            ]
            bindings.append(
                (f"h_{lt}_{i}_{d}", apply1(Var("gelu"), sum_chain(terms)))
            )
    for i in range(_SEQ):
        for d in range(_DIM):
            terms = [
                mul(Var(f"w2_{lt}_{d}_{e}"), Var(f"h_{lt}_{i}_{e}"))
                for e in range(_DIM)
            ]
            bindings.append(
                (
                    f"x_{layer + 1}_{i}_{d}",
                    add(Var(f"n_{lt}_{i}_{d}"), sum_chain(terms)),
                )
            )


def _build_natural(layers: int) -> Expr:
    """The encoder expression before size alignment."""
    if layers < 1:
        raise ValueError(f"layers must be >= 1, got {layers}")
    bindings: list[tuple[str, Expr]] = []
    gelu = Lam("z", mul(Var("z"), prim("tanh", Var("z"))))
    bindings.append(("gelu", gelu))
    for layer in range(layers):
        _layer(bindings, layer)
    readout = sum_chain(
        [Var(f"x_{layers}_{i}_{d}") for i in range(_SEQ) for d in range(_DIM)]
    )
    return let_chain(bindings, readout)


def _measure() -> tuple[int, int]:
    """(base, per-layer) natural node counts, computed once."""
    one = _build_natural(1).size
    two = _build_natural(2).size
    per_layer = two - one
    return one - per_layer, per_layer


_NATURAL_BASE, _NATURAL_PER_LAYER = _measure()

#: Affine size model: ``bert_target_nodes(L) = BERT_BASE + L * BERT_PER_LAYER``
#: with the constants pinned so that L=12 gives the paper's 12975.
BERT_PER_LAYER = _NATURAL_PER_LAYER
BERT_BASE = BERT12_NODES - 12 * BERT_PER_LAYER

if BERT_BASE < _NATURAL_BASE:  # pragma: no cover - configuration guard
    raise AssertionError(
        "BERT workload parameters grew past the Table 2 target; "
        f"natural base {_NATURAL_BASE} exceeds padding budget {BERT_BASE}"
    )


def bert_target_nodes(layers: int) -> int:
    """Node count of ``build_bert(layers)`` (affine in ``layers``)."""
    return BERT_BASE + layers * BERT_PER_LAYER


def build_bert(layers: int = 12, pad: bool = True) -> Expr:
    """Build the ``layers``-deep encoder expression.

    With ``pad=True`` (default) the size is exactly
    :func:`bert_target_nodes`; 12 layers yields 12975 nodes as in
    Table 2.
    """
    expr = _build_natural(layers)
    if pad:
        expr = pad_to(expr, bert_target_nodes(layers), prefix="bert")
    return expr
