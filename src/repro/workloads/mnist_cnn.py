"""Synthetic "MNIST CNN" workload (Table 2, n = 840).

The paper's smallest realistic expression is "a convolution kernel from
a deep neural network used in computer vision" [LeCun et al. 1989].  We
synthesise the same thing: one fully unrolled 2-D convolution window
sweep with a per-pixel activation lambda (inlined at each use site with a fresh
binder, as a compiler inliner emits it), lowered to a ``let`` spine the
way a scalarising compiler would produce::

    let o_0_0 = scale * ((\\z_0_0. max z_0_0 zero)
                         (bias + w_0_0*x_0_0 + ... + w_2_2*x_2_2)) in
    ...
    let o_2_2 = ... in
    o_0_0 + ... + o_2_2

The nine inlined activation lambdas are alpha-equivalent but not
syntactically identical -- exactly the repetition profile that
motivates hashing modulo alpha (Section 1).

The default parameters give 798 natural nodes, padded to the paper's
reported 840.
"""

from __future__ import annotations

from repro.lang.expr import Expr, Lam, Var
from repro.workloads.common import add, apply1, let_chain, mul, pad_to, prim, sum_chain

__all__ = ["build_mnist_cnn", "MNIST_CNN_NODES"]

#: Node count reported in Table 2 for this workload.
MNIST_CNN_NODES = 840


def build_mnist_cnn(
    out_h: int = 3,
    out_w: int = 3,
    kernel: int = 3,
    target_nodes: int | None = MNIST_CNN_NODES,
) -> Expr:
    """Build the unrolled convolution expression.

    ``out_h`` x ``out_w`` output pixels, each summing a ``kernel`` x
    ``kernel`` window of input-pixel/weight products, passed through a
    shared activation lambda.  ``target_nodes=None`` skips padding and
    returns the natural size.
    """
    bindings: list[tuple[str, Expr]] = []

    outputs: list[str] = []
    for i in range(out_h):
        for j in range(out_w):
            window = [
                mul(Var(f"w_{a}_{b}"), Var(f"x_{i + a}_{j + b}"))
                for a in range(kernel)
                for b in range(kernel)
            ]
            # The activation lambda is inlined at every use site with a
            # freshened binder -- as a compiler inliner would emit it --
            # so the nine copies are alpha-equivalent but not
            # syntactically identical (Section 1's motivating shape).
            act = Lam(f"z_{i}_{j}", prim("max", Var(f"z_{i}_{j}"), Var("zero")))
            pixel = mul(
                Var("scale"),
                apply1(act, add(Var("bias"), sum_chain(window))),
            )
            name = f"o_{i}_{j}"
            bindings.append((name, pixel))
            outputs.append(name)

    expr = let_chain(bindings, sum_chain([Var(name) for name in outputs]))
    if target_nodes is not None:
        expr = pad_to(expr, target_nodes, prefix="cnn")
    return expr
