"""Synthetic ML-workload expressions matching Table 2 / Figure 3 sizes."""

from repro.workloads.bert import (
    BERT12_NODES,
    BERT_BASE,
    BERT_PER_LAYER,
    bert_target_nodes,
    build_bert,
)
from repro.workloads.gmm import GMM_NODES, build_gmm
from repro.workloads.mnist_cnn import MNIST_CNN_NODES, build_mnist_cnn

__all__ = [
    "BERT12_NODES",
    "BERT_BASE",
    "BERT_PER_LAYER",
    "bert_target_nodes",
    "build_bert",
    "GMM_NODES",
    "build_gmm",
    "MNIST_CNN_NODES",
    "build_mnist_cnn",
]

#: Table 2 workload registry: name -> (builder, reported node count).
TABLE2_WORKLOADS = {
    "MNIST CNN": (build_mnist_cnn, MNIST_CNN_NODES),
    "GMM": (build_gmm, GMM_NODES),
    "BERT 12": (lambda: build_bert(12), BERT12_NODES),
}
