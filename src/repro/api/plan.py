"""The planning stage: resolve a request into an inspectable plan.

The :class:`Planner` turns a declarative :class:`~repro.api.request.
HashRequest` / :class:`~repro.api.request.InternRequest` plus a
:class:`~repro.api.session.Session` into an :class:`ExecutionPlan` --
every decision the scattered kwargs of PRs 3-4 used to make inline
(tree vs arena engine, worker count, pool flavour, serial vs pooled
executor) is made **here, once**, and the result is a frozen record the
caller can inspect, log, or ship over the wire before anything runs::

    plan = session.plan(HashRequest(corpus, workers=4))
    print(plan.explain())       # why each choice was made
    session.execute(request, plan=plan)

Engine policy
-------------

``engine="auto"`` compares the corpus' total node count against
:data:`ARENA_NODE_THRESHOLD` -- the **one** threshold constant, which
the planner shares with the low-level ``resolve_engine`` normaliser
(defined next to the arena kernel as
:data:`repro.core.arena.ARENA_MIN_NODES`, so the core stays importable
without this package; there is exactly one literal).  The store- and
parallel-layer batch entry points consult the same constant through
:func:`repro.core.arena.plan_corpus_engine`, so a forced ``engine=``
and an ``auto`` decision can never disagree between layers.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.arena import (
    ARENA_MIN_NODES,
    engine_family,
    engine_kernel,
    resolve_engine,
    resolve_kernel,
)
from repro.store.parallel import resolve_workers

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.request import HashRequest
    from repro.api.session import Session

__all__ = ["ExecutionPlan", "Planner", "PlanError", "ARENA_NODE_THRESHOLD"]

#: Total corpus nodes at which ``engine="auto"`` switches from the
#: memoised tree walk to the arena kernel.  This is the planner's one
#: threshold; every layer's ``auto`` decision resolves against it.
ARENA_NODE_THRESHOLD = ARENA_MIN_NODES


class PlanError(ValueError):
    """A request cannot be planned against this session."""


@dataclass(frozen=True)
class ExecutionPlan:
    """Every resolved decision for one request, before anything runs.

    ``engine``, ``workers`` and ``mode`` are concrete (no ``"auto"``,
    no ``None``); ``executor`` names the registered executor that will
    carry the plan out (:mod:`repro.api.executors`); ``reasons`` records
    one line per decision for :meth:`explain`.
    """

    kind: str  #: ``"hash"`` or ``"intern"``
    backend: str  #: resolved unified-registry backend name
    store_backed: bool  #: whether the store's memo serves this backend
    engine: str  #: ``"tree"`` / ``"arena"`` family -- never ``"auto"``
    workers: int  #: resolved pool size (1 = serial)
    mode: str  #: pool flavour, meaningful when ``workers > 1``
    executor: str  #: ``"serial"`` or ``"pool"``
    corpus_items: int  #: expressions in the request
    total_nodes: int  #: total AST nodes across the corpus
    bits: int  #: combiner width the job will run at
    seed: int  #: combiner seed the job will run at
    num_shards: Optional[int] = None  #: sharded-store fan-in, if any
    kernel: Optional[str] = None  #: ``"vec"``/``"scalar"`` (arena only)
    reasons: tuple[str, ...] = ()

    def as_dict(self) -> dict:
        """A JSON-compatible view (the service API returns this)."""
        return asdict(self)

    def explain(self) -> str:
        """A human-readable account of every planning decision."""
        kernel = f" kernel={self.kernel}," if self.kernel else ""
        head = (
            f"{self.kind} {self.corpus_items} expression(s), "
            f"{self.total_nodes} nodes -> engine={self.engine},{kernel} "
            f"executor={self.executor}, workers={self.workers} "
            f"({self.mode}), backend={self.backend}"
        )
        return "\n".join([head, *(f"  - {r}" for r in self.reasons)])


class Planner:
    """Resolves requests against a session into :class:`ExecutionPlan`s.

    Stateless apart from its ``arena_threshold`` (default
    :data:`ARENA_NODE_THRESHOLD`); a session owns one and consults it
    from :meth:`~repro.api.session.Session.plan`.  Swap it out to test
    or tune the policy without touching any execution code::

        session.planner = Planner(arena_threshold=1_000)
    """

    def __init__(self, arena_threshold: int = ARENA_NODE_THRESHOLD):
        self.arena_threshold = arena_threshold

    def plan(self, session: "Session", request: "HashRequest") -> "ExecutionPlan":
        reasons: list[str] = []
        combiners = session.combiners

        # Determinism hints: a request pinned to one hash family must
        # never silently run under another.
        if request.bits is not None and request.bits != combiners.bits:
            raise PlanError(
                f"request pins bits={request.bits} but the session hashes "
                f"at {combiners.bits} bits"
            )
        if request.seed is not None and request.seed != combiners.seed:
            raise PlanError(
                f"request pins seed={request.seed} but the session hashes "
                f"with seed {combiners.seed}"
            )

        backend = session.backend
        if request.backend is not None:
            from repro.api.backends import get_backend

            try:
                backend = get_backend(request.backend)
            except KeyError as exc:
                raise PlanError(str(exc)) from None
            if backend is not session.backend:
                reasons.append(
                    f"backend {backend.name!r} overrides the session's "
                    f"{session.backend.name!r}"
                )

        store = session.store
        store_backed = store is not None and backend.store_backed
        if request.kind == "intern":
            if store is None:
                raise PlanError(
                    "intern requests need a store; this session was built "
                    "with use_store=False"
                )
            store_backed = True  # interning is defined over the store

        # Resource hints fall back to the session's configured defaults.
        workers = resolve_workers(
            session.config.workers if request.workers is None else request.workers
        )
        mode = request.mode or session.config.parallel_mode
        engine_hint = request.engine or session.config.engine

        total_nodes = request.total_nodes
        if engine_hint == "auto":
            engine = resolve_engine(
                engine_hint, total_nodes, threshold=self.arena_threshold
            )
            reasons.append(
                f"auto engine -> {engine}: {total_nodes} nodes "
                f"{'>=' if engine == 'arena' else '<'} "
                f"threshold {self.arena_threshold}"
            )
        else:
            engine = resolve_engine(engine_hint, total_nodes)
            reasons.append(f"engine {engine!r} forced by the request")

        # The arena family additionally picks its kernel.  Forcing the
        # vectorized kernel on a NumPy-less interpreter is a planning
        # error (fail before anything runs); ``auto`` records which way
        # it went and why.
        kernel: Optional[str] = None
        if engine_family(engine) == "arena":
            kernel_hint = engine_kernel(engine)
            try:
                kernel = resolve_kernel(kernel_hint)
            except ValueError as exc:
                raise PlanError(str(exc)) from None
            if kernel_hint == "auto":
                reasons.append(
                    f"arena kernel -> {kernel}: NumPy "
                    + ("importable" if kernel == "vec" else "missing, scalar fallback")
                )
            else:
                reasons.append(f"arena kernel {kernel!r} forced by the engine hint")

        # Executor selection mirrors (and replaces) the inline branch
        # the Session facade used to carry: fan out only when there is
        # a store to cooperate with and more than one item to fan.
        if workers > 1 and not store_backed and request.kind == "hash":
            reasons.append(
                f"backend {backend.name!r} times its own pass; staying serial"
            )
            executor = "serial"
            workers = 1
        elif workers > 1 and len(request.exprs) > 1:
            executor = "pool"
            reasons.append(
                f"{workers} workers over a {mode} pool "
                f"({len(request.exprs)} items)"
            )
        else:
            if workers > 1:
                reasons.append(
                    "corpus too small to fan out; running serially"
                )
                workers = 1
            executor = "serial"

        num_shards = getattr(store, "num_shards", None)
        return ExecutionPlan(
            kind=request.kind,
            backend=backend.name,
            store_backed=store_backed,
            engine=engine,
            workers=workers,
            mode=mode,
            executor=executor,
            corpus_items=len(request.exprs),
            total_nodes=total_nodes,
            bits=combiners.bits,
            seed=combiners.seed,
            num_shards=num_shards,
            kernel=kernel,
            reasons=tuple(reasons),
        )
