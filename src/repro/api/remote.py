"""A session facade over a remote hashing endpoint.

:class:`RemoteSession` points the :class:`~repro.api.Session` verbs at
a ``repro serve`` node *or* a ``repro cluster serve`` coordinator --
the two speak the same ``/v1`` protocol, so code written against one
store scales to a cluster by changing a URL::

    with RemoteSession("http://coordinator:8656") as remote:
        remote.hash_corpus(corpus)     # bit-identical to local hashing
        remote.intern_many(corpus)
        remote.stats()                 # folded cluster totals

    # replica flow: seed once, then ship only the new classes
    local = remote.pull()                  # full snapshot -> warm Session
    ...
    remote.catch_up(local)                 # /v1/snapshot/delta?since=...

Everything store-shaped stays server-side; the only local state is the
HTTP client (bounded retries with backoff -- see
:class:`~repro.service.client.ServiceClient`).
"""

from __future__ import annotations

from typing import Iterable

from repro.lang.expr import Expr

__all__ = ["RemoteSession"]


class RemoteSession:
    """The Session verbs, executed by a remote node or cluster."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 60.0,
        retries: int = 2,
        backoff: float = 0.1,
    ):
        # Imported here, not at module top: repro.service.server pulls
        # repro.api in, so an eager import from the api package would
        # be circular.
        from repro.service.client import ServiceClient

        self.client = ServiceClient(
            base_url, timeout=timeout, retries=retries, backoff=backoff
        )

    # -- hashing / interning ---------------------------------------------------

    def hash(self, expr: Expr, **hints) -> int:
        return self.client.hash_corpus([expr], **hints)[0]

    def hash_corpus(self, exprs: Iterable[Expr], **hints) -> list[int]:
        return self.client.hash_corpus(list(exprs), **hints)

    def intern_many(self, exprs: Iterable[Expr], **hints) -> list[int]:
        return self.client.intern_many(list(exprs), **hints)

    def intern(self, expr: Expr, **hints) -> int:
        return self.intern_many([expr], **hints)[0]

    # -- introspection ---------------------------------------------------------

    def health(self) -> dict:
        return self.client.health()

    def stats(self) -> dict:
        return self.client.stats()

    def metrics(self) -> dict:
        return self.client.metrics()

    def ping(self) -> bool:
        """Liveness as a bool (no exception plumbing at call sites)."""
        from repro.service.client import ServiceError

        try:
            return bool(self.health().get("ok"))
        except ServiceError:
            return False

    # -- store movement --------------------------------------------------------

    def pull(self):
        """The remote store as a warm local :class:`~repro.api.Session`.

        Against a coordinator this is the merged union of every
        shard's classes (flat layout, coordinator-assigned ids).
        """
        return self.client.pull_session()

    def push(self, source) -> dict:
        """Merge a local store/session/snapshot into the remote store."""
        return self.client.push_snapshot(source)

    def catch_up(self, target) -> dict:
        """Apply the remote's delta since ``target.store.version``.

        Node-only (a coordinator has no id space of its own); the
        target must have been seeded from this node's snapshot.
        """
        return self.client.catch_up(target)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Nothing to release locally; here for Session symmetry."""

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return f"RemoteSession({self.client.base_url!r})"
