"""A session facade over a remote hashing endpoint.

:class:`RemoteSession` points the :class:`~repro.api.Session` verbs at
a ``repro serve`` node *or* a ``repro cluster serve`` coordinator --
the two speak the same ``/v1`` protocol, so code written against one
store scales to a cluster by changing a URL::

    with RemoteSession("http://coordinator:8656") as remote:
        remote.hash_corpus(corpus)     # bit-identical to local hashing
        remote.intern_many(corpus)
        remote.stats()                 # folded cluster totals

    # replica flow: seed once, then ship only the new classes
    local = remote.pull()                  # full snapshot -> warm Session
    ...
    remote.catch_up(local)                 # /v1/snapshot/delta?since=...

Everything store-shaped stays server-side; the only local state is the
HTTP client (bounded retries with backoff -- see
:class:`~repro.service.client.ServiceClient`).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.lang.expr import Expr

__all__ = ["RemoteSession", "RemoteStreamSession"]


class RemoteSession:
    """The Session verbs, executed by a remote node or cluster."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 60.0,
        retries: int = 2,
        backoff: float = 0.1,
    ):
        # Imported here, not at module top: repro.service.server pulls
        # repro.api in, so an eager import from the api package would
        # be circular.
        from repro.service.client import ServiceClient

        self.client = ServiceClient(
            base_url, timeout=timeout, retries=retries, backoff=backoff
        )

    # -- hashing / interning ---------------------------------------------------

    def hash(self, expr: Expr, **hints) -> int:
        return self.client.hash_corpus([expr], **hints)[0]

    def hash_corpus(self, exprs: Iterable[Expr], **hints) -> list[int]:
        return self.client.hash_corpus(list(exprs), **hints)

    def intern_many(self, exprs: Iterable[Expr], **hints) -> list[int]:
        return self.client.intern_many(list(exprs), **hints)

    def intern(self, expr: Expr, **hints) -> int:
        return self.intern_many([expr], **hints)[0]

    # -- introspection ---------------------------------------------------------

    def health(self) -> dict:
        return self.client.health()

    def stats(self) -> dict:
        return self.client.stats()

    def metrics(self) -> dict:
        return self.client.metrics()

    def ping(self) -> bool:
        """Liveness as a bool (no exception plumbing at call sites)."""
        from repro.service.client import ServiceError

        try:
            return bool(self.health().get("ok"))
        except ServiceError:
            return False

    # -- streaming edit sessions -----------------------------------------------

    def open_stream(
        self, corpus: Iterable[Expr], ttl: Optional[float] = None
    ) -> "RemoteStreamSession":
        """Open a server-side streaming edit session over ``corpus``.

        The remote counterpart of :meth:`Session.open_stream`: the
        corpus is uploaded once (``/v1/session/open``) and each
        :meth:`RemoteStreamSession.edit` ships only the path and the
        replacement subtree -- the server re-hashes the dirty spine
        against its shared store and answers with the updated root
        hash and the nodes-rehashed receipt.  ``ttl`` overrides the
        server's idle-expiry for this session (bounded server-side).
        """
        reply = self.client.session_open(list(corpus), ttl=ttl)
        return RemoteStreamSession(self.client, reply)

    # -- store movement --------------------------------------------------------

    def pull(self):
        """The remote store as a warm local :class:`~repro.api.Session`.

        Against a coordinator this is the merged union of every
        shard's classes (flat layout, coordinator-assigned ids).
        """
        return self.client.pull_session()

    def push(self, source) -> dict:
        """Merge a local store/session/snapshot into the remote store."""
        return self.client.push_snapshot(source)

    def catch_up(self, target) -> dict:
        """Apply the remote's delta since ``target.store.version``.

        Node-only (a coordinator has no id space of its own); the
        target must have been seeded from this node's snapshot.
        """
        return self.client.catch_up(target)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release the client's persistent keep-alive connections."""
        self.client.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return f"RemoteSession({self.client.base_url!r})"


class RemoteStreamSession:
    """Client half of one ``/v1/session`` edit stream.

    Mirrors :class:`~repro.api.stream.StreamSession`'s surface
    (``edit`` / ``report`` / ``close`` / ``root_hashes``) but holds no
    trees locally -- only the session id and the last root hashes.  A
    lost session (server restart, TTL expiry, failed-over cluster
    node) surfaces as a :class:`~repro.service.client.ServiceError`
    with ``status == 409``: reopen with the current corpus and replay.
    """

    def __init__(self, client, opened: dict):
        self.client = client
        self.session_id: str = opened["session"]
        self.root_hashes: list[int] = list(opened.get("roots", ()))
        self.opened = opened
        self.closed = False

    @property
    def items(self) -> int:
        return len(self.root_hashes)

    def edit(self, item: int, path: Sequence[int], new_subexpr: Expr) -> dict:
        """Stream one subtree replacement; returns the server's
        :class:`~repro.api.stream.EditReport` dict."""
        reply = self.client.session_edit(
            self.session_id, item, list(path), new_subexpr
        )
        if 0 <= item < len(self.root_hashes):
            self.root_hashes[item] = reply["root_hash"]
        return reply

    def report(self) -> dict:
        return self.client.session_report(self.session_id)

    def close(self) -> dict:
        if self.closed:
            return {"closed": True, "session": self.session_id}
        self.closed = True
        return self.client.session_close(self.session_id)

    def __enter__(self) -> "RemoteStreamSession":
        return self

    def __exit__(self, *exc_info) -> None:
        from repro.service.client import ServiceError

        try:
            self.close()
        except ServiceError:
            # Expired/lost sessions are already gone server-side.
            pass

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RemoteStreamSession({self.session_id!r}, {self.items} items)"
        )
