"""``AsyncSession``: the asyncio front end over the Session pipeline.

The ROADMAP's "async sessions" item: a server (or any event loop) wants
to interleave several corpus jobs without blocking on the worker pools.
:class:`AsyncSession` wraps a synchronous :class:`~repro.api.session.
Session` and exposes awaitable corpus operations::

    async with AsyncSession(workers=4) as asession:
        hashes = await asession.hash_corpus_async(corpus)
        ids = await asession.intern_many_async(corpus)

        jobs = [asession.hash_corpus_async(c) for c in corpora]
        results = await asyncio.gather(*jobs)      # interleaved

Semantics:

* **Same bits.**  Every job goes through the same request -> plan ->
  execute pipeline as the synchronous session, so results are
  bit-identical to ``Session.hash_corpus`` / ``intern_many``.
* **Bounded in-flight.**  At most ``max_in_flight`` jobs run at once
  (an ``asyncio.Semaphore``); further submissions queue as awaitables
  without spawning threads.
* **Cancellation.**  Cancelling a pending job (still waiting on the
  semaphore, or queued behind the thread bridge) prevents it from ever
  touching the session; cancelling a *running* job lets the worker
  thread finish its store transaction and discards the result -- the
  store is never left mid-write and the session-owned pools stay
  reusable.  (Hashing is pure; interning is transactional per call.)
* **One loop at a time.**  The semaphore binds to the first event loop
  that awaits a job; use one ``AsyncSession`` per loop (they are cheap
  -- the expensive parts, store and pools, live on the inner session,
  which may be shared sequentially across loops).

The blocking work runs on an :class:`~repro.api.executors.AsyncExecutor`
thread bridge.  Jobs against one session are serialised at the store
boundary (the summary memo is the shared mutable resource); the corpus
*inside* a job still fans out over process/thread pools per its plan,
which is where the actual parallelism lives under the GIL.
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Optional

from repro.api.executors import AsyncExecutor
from repro.api.plan import ExecutionPlan
from repro.api.request import HashRequest, InternRequest
from repro.api.session import Session
from repro.lang.expr import Expr

__all__ = ["AsyncSession"]


class AsyncSession:
    """Awaitable corpus hashing/interning over a synchronous session.

    Construct around an existing session (shared store, shared pools)
    or from :class:`~repro.api.session.SessionConfig` keywords, which
    build a private session that :meth:`close` tears down::

        AsyncSession(session)                  # borrow
        AsyncSession(workers=4, engine="auto") # own
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        *,
        max_in_flight: int = 4,
        **session_kwargs,
    ):
        if session is not None and session_kwargs:
            raise TypeError(
                "pass either an existing session or Session keywords, not both"
            )
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.session = Session(**session_kwargs) if session is None else session
        self._owns_session = session is None
        self.max_in_flight = max_in_flight
        self._bridge = AsyncExecutor(max_workers=max_in_flight)
        self._semaphore: Optional[asyncio.Semaphore] = None

    # -- submission ------------------------------------------------------------

    def _sem(self) -> asyncio.Semaphore:
        if self._semaphore is None:
            self._semaphore = asyncio.Semaphore(self.max_in_flight)
        return self._semaphore

    async def execute_async(
        self, request: HashRequest, plan: Optional[ExecutionPlan] = None
    ) -> list[int]:
        """Awaitable :meth:`Session.execute`: plan (cheap, inline) then
        run the executor off-loop, bounded by ``max_in_flight``."""
        if plan is None:
            plan = self.session.plan(request)
        async with self._sem():
            future = self._bridge.submit(self.session, request, plan)
            try:
                # wrap_future propagates asyncio-side cancellation to the
                # concurrent future: a not-yet-started job is withdrawn
                # before it touches the session.
                return await asyncio.wrap_future(future)
            except asyncio.CancelledError:
                future.cancel()
                raise

    async def hash_corpus_async(
        self,
        exprs: Iterable[Expr],
        *,
        backend: Optional[str] = None,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> list[int]:
        """Awaitable corpus hashing; bit-identical to the sync path."""
        return await self.execute_async(
            HashRequest(
                exprs, backend=backend, engine=engine, workers=workers, mode=mode
            )
        )

    async def intern_many_async(
        self,
        exprs: Iterable[Expr],
        *,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> list[int]:
        """Awaitable batch interning (same contract as
        :meth:`Session.intern_many`: classes/hashes bit-identical,
        ids encode arrival order)."""
        return await self.execute_async(
            InternRequest(exprs, engine=engine, workers=workers)
        )

    async def hash_async(self, expr: Expr) -> int:
        """Awaitable single-expression root hash."""
        return (await self.hash_corpus_async([expr]))[0]

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut down the thread bridge (and the session, if owned).

        Idempotent.  A borrowed session is left running -- its owner
        closes it.
        """
        self._bridge.close()
        if self._owns_session:
            self.session.close()

    async def aclose(self) -> None:
        """Awaitable :meth:`close` (runs the blocking shutdown off-loop)."""
        await asyncio.get_running_loop().run_in_executor(None, self.close)

    def __enter__(self) -> "AsyncSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    async def __aenter__(self) -> "AsyncSession":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"AsyncSession({self.session!r}, "
            f"max_in_flight={self.max_in_flight})"
        )
