"""Declarative work requests: what to run, not how to run it.

PRs 3 and 4 grew the execution knobs (``workers``, ``parallel_mode``,
``engine``, shard counts) organically onto every call site; this module
is the other half of the redesign that pulls them back behind one
declarative record.  A request carries *intent* only:

* :class:`HashRequest` -- "alpha-hash this corpus", plus optional
  backend, determinism hints (``bits``/``seed``, validated against the
  executing session) and resource hints (``engine``/``workers``/
  ``mode``);
* :class:`InternRequest` -- "intern this corpus", same hints.

``None`` for any hint means "the session's configured default".  A
:class:`~repro.api.plan.Planner` resolves a request against a session
into an inspectable :class:`~repro.api.plan.ExecutionPlan`, and an
executor (:mod:`repro.api.executors`) runs the plan::

    request = HashRequest(corpus, engine="auto", workers=4)
    plan = session.plan(request)        # look before you leap
    hashes = session.execute(request)   # or execute(request, plan)

Requests are frozen: the same request can be planned against several
sessions, logged, or shipped over the wire (the :mod:`repro.service`
server reconstructs one per HTTP call).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable, Optional

from repro.core.arena import ENGINE_CHOICES
from repro.lang.expr import Expr
from repro.store.parallel import PARALLEL_MODES

__all__ = ["HashRequest", "InternRequest", "ENGINES"]

#: Accepted ``engine`` hints (``None`` defers to the session default).
#: One tuple with the kernel layer (``repro.core.arena``): the arena
#: family splits into ``"arena"`` (kernel auto-picked), ``"arena-vec"``
#: (force the vectorized kernel) and ``"arena-scalar"`` (force the
#: pure-Python kernel).
ENGINES = ENGINE_CHOICES


def _freeze_corpus(exprs: Iterable[Expr]) -> tuple[Expr, ...]:
    corpus = tuple(exprs)
    for item in corpus:
        if not isinstance(item, Expr):
            raise TypeError(
                f"corpus items must be expressions, got {type(item).__name__}"
            )
    return corpus


@dataclass(frozen=True, init=False, repr=False)
class HashRequest:
    """One corpus-hashing job, declaratively.

    Parameters
    ----------
    exprs:
        The corpus (materialised into a tuple; order defines the output
        order).
    backend:
        Unified-registry backend name; ``None`` means the session's.
    engine:
        Corpus strategy hint (:data:`ENGINES`): ``"auto"`` / ``"tree"``
        / ``"arena"`` / ``"arena-vec"`` / ``"arena-scalar"``; ``None``
        defers to the session default.
    workers:
        Pool size hint (``0`` = one per CPU, ``1`` = serial); ``None``
        defers to the session default.
    mode:
        Worker pool flavour (:data:`~repro.store.parallel.PARALLEL_MODES`).
    bits / seed:
        Determinism hints: when set, planning fails loudly unless the
        executing session's combiner family matches -- a request built
        for one hash family can never silently run under another.
    """

    exprs: tuple[Expr, ...] = field(repr=False)
    backend: Optional[str] = None
    engine: Optional[str] = None
    workers: Optional[int] = None
    mode: Optional[str] = None
    bits: Optional[int] = None
    seed: Optional[int] = None

    #: What the planner plans this request as (subclasses override).
    kind = "hash"

    def __init__(self, exprs: Iterable[Expr], **hints):
        object.__setattr__(self, "exprs", _freeze_corpus(exprs))
        allowed = {f.name for f in fields(self)} - {"exprs"}
        for name in allowed:
            object.__setattr__(self, name, hints.pop(name, None))
        if hints:
            raise TypeError(
                f"unknown request hint(s): {sorted(hints)} "
                f"(accepted: {sorted(allowed)})"
            )
        self._validate()

    def _validate(self) -> None:
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.mode is not None and self.mode not in PARALLEL_MODES:
            raise ValueError(
                f"mode must be one of {PARALLEL_MODES}, got {self.mode!r}"
            )
        if self.workers is not None and self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.bits is not None and self.bits < 1:
            raise ValueError(f"bits must be >= 1, got {self.bits}")

    def __len__(self) -> int:
        return len(self.exprs)

    @property
    def total_nodes(self) -> int:
        """Total AST nodes in the corpus (``Expr.size`` is O(1))."""
        return sum(expr.size for expr in self.exprs)

    def hints(self) -> dict:
        """The non-default hints, for logging and wire encoding."""
        out = {}
        for f in fields(self):
            if f.name == "exprs":
                continue
            value = getattr(self, f.name)
            if value is not None:
                out[f.name] = value
        return out

    def __repr__(self) -> str:
        hints = ", ".join(f"{k}={v!r}" for k, v in self.hints().items())
        return (
            f"{type(self).__name__}({len(self.exprs)} exprs"
            + (f", {hints}" if hints else "")
            + ")"
        )


class InternRequest(HashRequest):
    """One corpus-interning job: same hints, interning semantics.

    Interning always needs a store (planning fails on store-less
    sessions) and its parallel path merges worker intern tables back
    shard-by-shard; node *ids* may differ from serial order, classes
    and hashes are bit-identical (the store's contract).
    """

    kind = "intern"
