"""Executors: the things that actually run an :class:`ExecutionPlan`.

The third stage of the request -> plan -> execute pipeline.  An
executor receives the session, the original request and the resolved
plan, and drives exactly the mechanism layers that already existed --
``ExprStore.hash_corpus`` / ``intern_many`` serially,
``parallel_hash_corpus`` / ``parallel_intern_corpus`` over pools -- so
results are bit-identical to the pre-pipeline paths by construction.

Three executors ship:

* :class:`SerialExecutor` (``"serial"``) -- in-process, store-batched
  when the backend is store-backed, otherwise one backend pass per
  expression;
* :class:`PooledExecutor` (``"pool"``) -- fans the corpus out over the
  session-owned persistent :class:`~repro.store.WorkerPool`s (arena
  engine) or a per-call pool (tree engine's publish-then-fork path);
* :class:`AsyncExecutor` (``"async"``) -- a thread-bridge that runs
  either of the above off the calling thread and returns a
  ``concurrent.futures.Future``; :class:`~repro.api.aio.AsyncSession`
  builds its asyncio surface on it.

The registry is pluggable like the backend registry: third parties may
:func:`register_executor` their own (a tracing executor, a remote
dispatcher) and select it by name.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Optional, Protocol, runtime_checkable

from repro.core.arena import engine_family
from repro.store.parallel import parallel_hash_corpus, parallel_intern_corpus

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.plan import ExecutionPlan
    from repro.api.request import HashRequest
    from repro.api.session import Session

__all__ = [
    "Executor",
    "SerialExecutor",
    "PooledExecutor",
    "AsyncExecutor",
    "EXECUTORS",
    "get_executor",
    "register_executor",
]


@runtime_checkable
class Executor(Protocol):
    """What the execute stage needs: a named ``run`` over (session,
    request, plan) returning one result per corpus item."""

    name: str

    def run(
        self, session: "Session", request: "HashRequest", plan: "ExecutionPlan"
    ) -> list[int]:
        ...  # pragma: no cover - protocol


class SerialExecutor:
    """Run the plan in-process, through the store when possible."""

    name = "serial"

    def run(self, session, request, plan) -> list[int]:
        corpus = list(request.exprs)
        if plan.kind == "intern":
            store = session._require_store("intern requests")
            return store.intern_many(corpus, engine=plan.engine)
        if plan.store_backed:
            return session.store.hash_corpus(corpus, engine=plan.engine)
        from repro.api.backends import get_backend

        backend = get_backend(plan.backend)
        return [
            backend.hash_all(e, session.combiners).root_hash for e in corpus
        ]


class PooledExecutor:
    """Fan the corpus out over worker pools (bit-identical to serial).

    Arena-engine hash plans reuse the session-owned persistent
    :class:`~repro.store.WorkerPool` for the plan's ``(mode, workers)``
    shape; the tree engine's fork fast path builds its fresh
    publish-then-fork pool inside :func:`parallel_hash_corpus`, exactly
    as before the redesign.
    """

    name = "pool"

    def run(self, session, request, plan) -> list[int]:
        corpus = list(request.exprs)
        if plan.kind == "intern":
            store = session._require_store("intern requests")
            return parallel_intern_corpus(corpus, store, workers=plan.workers)
        return parallel_hash_corpus(
            corpus,
            workers=plan.workers,
            mode=plan.mode,
            store=session.store,
            engine=plan.engine,
            pool=(
                session._pool_for(plan.mode, plan.workers)
                if engine_family(plan.engine) == "arena"
                else None
            ),
        )


class AsyncExecutor:
    """A thread bridge over the synchronous executors.

    ``submit`` schedules the plan's own executor (serial or pool) on a
    private thread pool and returns a ``concurrent.futures.Future``;
    ``run`` blocks on it, satisfying the :class:`Executor` protocol.
    Jobs against one session are serialised with a lock -- the store's
    summary memo is the shared resource -- while the corpus *inside* a
    job still fans out over worker pools per its plan.  A bounded
    ``max_workers`` caps the threads; :class:`~repro.api.aio.
    AsyncSession` adds the asyncio semantics (awaitables, cancellation,
    bounded in-flight jobs) on top.
    """

    name = "async"

    def __init__(self, max_workers: int = 4):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._threads: Optional[ThreadPoolExecutor] = None
        self._session_lock = threading.Lock()

    def _ensure(self) -> ThreadPoolExecutor:
        if self._threads is None:
            self._threads = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-async",
            )
        return self._threads

    def submit(self, session, request, plan) -> "Future[list[int]]":
        inner = get_executor("pool" if plan.executor == "pool" else "serial")

        def job() -> list[int]:
            with self._session_lock:
                # repro-lint: allow[lock-blocking,lock-cycle] reason=one job per session at a time is this lock's whole contract (the store's summary memo is the shared resource); inner is pinned to serial/pool on the line above, so the async executor can never re-enter itself
                return inner.run(session, request, plan)

        return self._ensure().submit(job)

    def run(self, session, request, plan) -> list[int]:
        return self.submit(session, request, plan).result()

    def close(self) -> None:
        threads, self._threads = self._threads, None
        if threads is not None:
            threads.shutdown(wait=True)

    def __enter__(self) -> "AsyncExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: The executor registry: name -> zero-argument factory.  Stateless
#: executors are shared singletons; the async executor owns threads, so
#: every lookup builds a fresh one for its caller to manage.
EXECUTORS: dict[str, Callable[[], Executor]] = {}


def register_executor(name: str, factory: Callable[[], Executor]) -> None:
    """Add an executor factory under ``name`` (duplicates are errors)."""
    if name in EXECUTORS:
        raise ValueError(f"executor name {name!r} is already registered")
    EXECUTORS[name] = factory


# lint: returns SerialExecutor|PooledExecutor|AsyncExecutor
def get_executor(name: str) -> Executor:
    """Build/fetch the executor registered under ``name``."""
    factory = EXECUTORS.get(name)
    if factory is None:
        raise KeyError(
            f"unknown executor {name!r}; available: {sorted(EXECUTORS)}"
        )
    return factory()


_SERIAL = SerialExecutor()
_POOL = PooledExecutor()
register_executor("serial", lambda: _SERIAL)
register_executor("pool", lambda: _POOL)
register_executor("async", AsyncExecutor)
