"""The unified hasher-backend registry behind :class:`repro.api.Session`.

Before this module the repository had several parallel ways to name a
hashing algorithm: the Table 1 registry
(:data:`repro.baselines.registry.ALGORITHMS`), a second registry of
ablation variants inside the eval harness, the Appendix C variant, and
the store's memoised path.  Every consumer picked one ad hoc.  This
module absorbs all of them into **one** name -> backend mapping:

* the four Table 1 rows (``structural``, ``debruijn``,
  ``locally_nameless``, ``ours``) plus the Appendix C ``ours_lazy``
  variant, carrying their Table 1 metadata;
* the design-choice ablations (``always_left``, ``recompute_vm``) from
  :mod:`repro.baselines.ablated`;
* aliases for historical names (``lazy`` -> ``ours_lazy``, ``default``
  -> ``ours``);
* **third-party backends** advertised through ``importlib.metadata``
  entry points in the ``repro.backends`` group (loaded lazily on the
  first unknown-name lookup, or eagerly via
  :func:`load_entry_point_backends`).  An installed distribution opts
  in with::

      [project.entry-points."repro.backends"]
      myhash = "mypkg.hashing:BACKEND"

  where the target is a ready :class:`HasherBackend` (e.g. a
  :class:`FunctionBackend`) or a bare ``hash_all``-shaped function,
  which is wrapped into a ``kind="plugin"`` backend under the entry
  point's name.

A backend is anything satisfying the :class:`HasherBackend` protocol --
a named object that maps an expression to an
:class:`~repro.core.hashed.AlphaHashes` annotation.  Only the ``ours``
backend is *store-backed*: its hashes agree bit-for-bit with
:class:`repro.store.ExprStore`'s memoised summariser, so a
:class:`~repro.api.Session` routes it through the store (batching,
memoisation, snapshots).  All other backends run their own pass -- that
is the point of selecting them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Protocol, runtime_checkable

from repro.baselines.ablated import (
    alpha_hash_all_always_left,
    alpha_hash_all_recompute_vm,
)
from repro.baselines.registry import ALGORITHMS, TABLE1_ORDER, HashAlgorithm
from repro.core.combiners import HashCombiners
from repro.core.hashed import AlphaHashes
from repro.lang.expr import Expr

__all__ = [
    "HasherBackend",
    "FunctionBackend",
    "BACKENDS",
    "TABLE1_ORDER",
    "ABLATION_ORDER",
    "ENTRY_POINT_GROUP",
    "get_backend",
    "register_backend",
    "backend_names",
    "load_entry_point_backends",
]


@runtime_checkable
class HasherBackend(Protocol):
    """What a :class:`~repro.api.Session` needs from a hashing backend.

    ``name`` is the registry key; ``label`` a human-readable row label;
    ``kind`` one of ``"table1"``, ``"variant"`` or ``"ablation"``;
    ``store_backed`` is True only when the backend's hashes agree
    bit-for-bit with :class:`repro.store.ExprStore`, allowing the
    session to serve it from the store's memo.
    """

    name: str
    label: str
    kind: str
    store_backed: bool

    def hash_all(
        self, expr: Expr, combiners: Optional[HashCombiners] = None
    ) -> AlphaHashes:
        """Annotate every subexpression of ``expr`` with its hash."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class FunctionBackend:
    """A :class:`HasherBackend` wrapping a plain hashing function.

    ``algorithm`` links back to the Table 1 metadata row
    (:class:`~repro.baselines.registry.HashAlgorithm`) when the backend
    is one of the paper's algorithms; ablations carry ``None``.
    """

    name: str
    label: str
    kind: str
    section: str
    store_backed: bool
    run: Callable[[Expr, Optional[HashCombiners]], AlphaHashes] = field(
        repr=False
    )
    algorithm: Optional[HashAlgorithm] = field(default=None, repr=False)

    def hash_all(
        self, expr: Expr, combiners: Optional[HashCombiners] = None
    ) -> AlphaHashes:
        return self.run(expr, combiners)

    __call__ = hash_all


#: The one registry: canonical name -> backend.  Values are
#: :class:`FunctionBackend` for everything in-repo; entry-point plugins
#: may register any :class:`HasherBackend`.
BACKENDS: dict[str, HasherBackend] = {}

#: Alternate spellings accepted by :func:`get_backend`.
_ALIASES: dict[str, str] = {}


def register_backend(
    backend: HasherBackend, aliases: Iterable[str] = ()
) -> HasherBackend:
    """Add ``backend`` (and optional alias names) to the registry."""
    for key in (backend.name, *aliases):
        if key in BACKENDS or key in _ALIASES:
            raise ValueError(f"backend name {key!r} is already registered")
    BACKENDS[backend.name] = backend
    for alias in aliases:
        _ALIASES[alias] = backend.name
    return backend


def get_backend(name: str) -> HasherBackend:
    """Resolve a backend by canonical name or alias (KeyError lists both).

    An unknown name triggers one lazy sweep of the ``repro.backends``
    entry-point group before failing, so installed third-party backends
    resolve without any import-time cost on the common path.
    """
    backend = BACKENDS.get(_ALIASES.get(name, name))
    if backend is None and load_entry_point_backends():
        backend = BACKENDS.get(_ALIASES.get(name, name))
    if backend is None:
        raise KeyError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
            f" (aliases: {sorted(_ALIASES)})"
        )
    return backend


def backend_names(include_aliases: bool = False) -> tuple[str, ...]:
    """All registered backend names, sorted (entry points included)."""
    load_entry_point_backends()
    names = set(BACKENDS)
    if include_aliases:
        names |= set(_ALIASES)
    return tuple(sorted(names))


# -- entry-point discovery -----------------------------------------------------

#: The ``importlib.metadata`` entry-point group third-party backends
#: advertise themselves under.
ENTRY_POINT_GROUP = "repro.backends"

_entry_points_scanned = False


def _iter_entry_points():
    """All entry points in :data:`ENTRY_POINT_GROUP` (test seam)."""
    from importlib import metadata

    return tuple(metadata.entry_points(group=ENTRY_POINT_GROUP))


def _coerce_backend(name: str, obj) -> Optional[HasherBackend]:
    """Adapt an entry-point target to a :class:`HasherBackend`.

    A ready backend object passes through; a bare callable is wrapped
    as a ``kind="plugin"`` :class:`FunctionBackend` named after the
    entry point.  Anything else is rejected (``None``).
    """
    if isinstance(obj, HasherBackend):
        return obj
    if callable(obj):
        return FunctionBackend(
            name=name,
            label=name,
            kind="plugin",
            section="entry-point",
            store_backed=False,
            run=obj,
        )
    return None


def load_entry_point_backends(refresh: bool = False) -> tuple[str, ...]:
    """Register every ``repro.backends`` entry point; return new names.

    Idempotent: the group is scanned once per process unless
    ``refresh=True``.  A broken plugin (import error, wrong shape, name
    collision with an existing backend) is reported as a warning and
    skipped -- one bad distribution must not take down the registry.
    """
    import warnings

    global _entry_points_scanned
    if _entry_points_scanned and not refresh:
        return ()
    _entry_points_scanned = True

    loaded: list[str] = []
    for entry_point in _iter_entry_points():
        if entry_point.name in BACKENDS or entry_point.name in _ALIASES:
            continue  # first registration (or a built-in) wins
        try:
            target = entry_point.load()
        # repro-lint: allow[broad-except] reason=plugin isolation boundary; entry_point.load() runs third-party import code, and the contract is that one broken distribution is warned about (with the exception repr) and skipped, never allowed to take down the registry
        except Exception as exc:  # defensive: plugin code is untrusted
            warnings.warn(
                f"repro.backends entry point {entry_point.name!r} failed to "
                f"load: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        backend = _coerce_backend(entry_point.name, target)
        if backend is None:
            warnings.warn(
                f"repro.backends entry point {entry_point.name!r} is neither "
                "a HasherBackend nor a callable; skipped",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        aliases = (
            (entry_point.name,) if backend.name != entry_point.name else ()
        )
        try:
            register_backend(backend, aliases=aliases)
        except ValueError as exc:
            warnings.warn(str(exc), RuntimeWarning, stacklevel=2)
            continue
        loaded.append(backend.name)
    return tuple(loaded)


for _name, _alg in ALGORITHMS.items():
    register_backend(
        FunctionBackend(
            name=_name,
            label=_alg.label,
            kind="table1" if _name in TABLE1_ORDER else "variant",
            section=_alg.section,
            store_backed=(_name == "ours"),
            run=_alg.run,
            algorithm=_alg,
        )
    )

register_backend(
    FunctionBackend(
        name="always_left",
        label="no smaller-subtree merge",
        kind="ablation",
        section="4.8",
        store_backed=False,
        run=alpha_hash_all_always_left,
    )
)
register_backend(
    FunctionBackend(
        name="recompute_vm",
        label="no XOR maintenance",
        kind="ablation",
        section="5.2",
        store_backed=False,
        run=alpha_hash_all_recompute_vm,
    )
)

_ALIASES["lazy"] = "ours_lazy"
_ALIASES["default"] = "ours"

#: The ablation timing sweep, in its historical order ("lazy" is the
#: alias the old eval-harness registry used for ``ours_lazy``).
ABLATION_ORDER = ("ours", "always_left", "recompute_vm", "lazy")
