"""The unified hasher-backend registry behind :class:`repro.api.Session`.

Before this module the repository had several parallel ways to name a
hashing algorithm: the Table 1 registry
(:data:`repro.baselines.registry.ALGORITHMS`), a second registry of
ablation variants inside the eval harness, the Appendix C variant, and
the store's memoised path.  Every consumer picked one ad hoc.  This
module absorbs all of them into **one** name -> backend mapping:

* the four Table 1 rows (``structural``, ``debruijn``,
  ``locally_nameless``, ``ours``) plus the Appendix C ``ours_lazy``
  variant, carrying their Table 1 metadata;
* the design-choice ablations (``always_left``, ``recompute_vm``) from
  :mod:`repro.baselines.ablated`;
* aliases for historical names (``lazy`` -> ``ours_lazy``, ``default``
  -> ``ours``).

A backend is anything satisfying the :class:`HasherBackend` protocol --
a named object that maps an expression to an
:class:`~repro.core.hashed.AlphaHashes` annotation.  Only the ``ours``
backend is *store-backed*: its hashes agree bit-for-bit with
:class:`repro.store.ExprStore`'s memoised summariser, so a
:class:`~repro.api.Session` routes it through the store (batching,
memoisation, snapshots).  All other backends run their own pass -- that
is the point of selecting them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Protocol, runtime_checkable

from repro.baselines.ablated import (
    alpha_hash_all_always_left,
    alpha_hash_all_recompute_vm,
)
from repro.baselines.registry import ALGORITHMS, TABLE1_ORDER, HashAlgorithm
from repro.core.combiners import HashCombiners
from repro.core.hashed import AlphaHashes
from repro.lang.expr import Expr

__all__ = [
    "HasherBackend",
    "FunctionBackend",
    "BACKENDS",
    "TABLE1_ORDER",
    "ABLATION_ORDER",
    "get_backend",
    "register_backend",
    "backend_names",
]


@runtime_checkable
class HasherBackend(Protocol):
    """What a :class:`~repro.api.Session` needs from a hashing backend.

    ``name`` is the registry key; ``label`` a human-readable row label;
    ``kind`` one of ``"table1"``, ``"variant"`` or ``"ablation"``;
    ``store_backed`` is True only when the backend's hashes agree
    bit-for-bit with :class:`repro.store.ExprStore`, allowing the
    session to serve it from the store's memo.
    """

    name: str
    label: str
    kind: str
    store_backed: bool

    def hash_all(
        self, expr: Expr, combiners: Optional[HashCombiners] = None
    ) -> AlphaHashes:
        """Annotate every subexpression of ``expr`` with its hash."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class FunctionBackend:
    """A :class:`HasherBackend` wrapping a plain hashing function.

    ``algorithm`` links back to the Table 1 metadata row
    (:class:`~repro.baselines.registry.HashAlgorithm`) when the backend
    is one of the paper's algorithms; ablations carry ``None``.
    """

    name: str
    label: str
    kind: str
    section: str
    store_backed: bool
    run: Callable[[Expr, Optional[HashCombiners]], AlphaHashes] = field(
        repr=False
    )
    algorithm: Optional[HashAlgorithm] = field(default=None, repr=False)

    def hash_all(
        self, expr: Expr, combiners: Optional[HashCombiners] = None
    ) -> AlphaHashes:
        return self.run(expr, combiners)

    __call__ = hash_all


#: The one registry: canonical name -> backend.
BACKENDS: dict[str, FunctionBackend] = {}

#: Alternate spellings accepted by :func:`get_backend`.
_ALIASES: dict[str, str] = {}


def register_backend(
    backend: FunctionBackend, aliases: Iterable[str] = ()
) -> FunctionBackend:
    """Add ``backend`` (and optional alias names) to the registry."""
    for key in (backend.name, *aliases):
        if key in BACKENDS or key in _ALIASES:
            raise ValueError(f"backend name {key!r} is already registered")
    BACKENDS[backend.name] = backend
    for alias in aliases:
        _ALIASES[alias] = backend.name
    return backend


def get_backend(name: str) -> FunctionBackend:
    """Resolve a backend by canonical name or alias (KeyError lists both)."""
    backend = BACKENDS.get(_ALIASES.get(name, name))
    if backend is None:
        raise KeyError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
            f" (aliases: {sorted(_ALIASES)})"
        )
    return backend


def backend_names(include_aliases: bool = False) -> tuple[str, ...]:
    """All registered backend names, sorted."""
    names = set(BACKENDS)
    if include_aliases:
        names |= set(_ALIASES)
    return tuple(sorted(names))


for _name, _alg in ALGORITHMS.items():
    register_backend(
        FunctionBackend(
            name=_name,
            label=_alg.label,
            kind="table1" if _name in TABLE1_ORDER else "variant",
            section=_alg.section,
            store_backed=(_name == "ours"),
            run=_alg.run,
            algorithm=_alg,
        )
    )

register_backend(
    FunctionBackend(
        name="always_left",
        label="no smaller-subtree merge",
        kind="ablation",
        section="4.8",
        store_backed=False,
        run=alpha_hash_all_always_left,
    )
)
register_backend(
    FunctionBackend(
        name="recompute_vm",
        label="no XOR maintenance",
        kind="ablation",
        section="5.2",
        store_backed=False,
        run=alpha_hash_all_recompute_vm,
    )
)

_ALIASES["lazy"] = "ours_lazy"
_ALIASES["default"] = "ours"

#: The ablation timing sweep, in its historical order ("lazy" is the
#: alias the old eval-harness registry used for ``ours_lazy``).
ABLATION_ORDER = ("ours", "always_left", "recompute_vm", "lazy")
