"""Streaming rewrite sessions: dirty-spine incremental hashing as a service.

The paper's headline workload (rewriting / CSE, Section 6.3) edits one
spine of a tree per step, yet the batch API re-hashes whole corpora per
call.  :class:`StreamSession` is the stateful middle ground an optimizer
or editor hot loop can sit on: open it over a corpus once (O(corpus) --
hashed through the session's request->plan->execute pipeline), then
stream subtree-replacement edits; each edit re-hashes only the dirty
spine plus the new subtree via :class:`~repro.core.IncrementalHasher`
and answers with the updated root hash, a new-sharing report and the
nodes-rehashed count (the perf receipt: O(spine), not O(corpus)).

Eviction safety: the session **pins** its classes in the shared store
(:meth:`~repro.store.ExprStore.pin`), so an LRU-bounded or sharded
store serving other traffic cannot evict a session's corpus roots or
edit classes mid-stream.  Pinning is guarded: on a bounded store a
class can be evicted between interning and pinning (bulk interning
enforces the LRU bound at batch end, and concurrent writers evict at
will on a sharded store), in which case the session falls back to
recompute-and-repin instead of raising -- ``repins`` in the report
counts those recoveries.

The wire protocol (``/v1/session/{open,edit,report,close}``) in
:mod:`repro.service` is a thin JSON shim over this class; see
:meth:`repro.api.RemoteSession.open_stream` for the client side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.api.request import HashRequest, InternRequest
from repro.core.incremental import IncrementalHasher, PathError
from repro.core.statshape import StatsDictMixin
from repro.lang.expr import Expr

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.plan import ExecutionPlan
    from repro.api.session import Session

__all__ = [
    "StreamSession",
    "StreamError",
    "StoreThrashError",
    "EditReport",
    "PathError",
]


class StreamError(RuntimeError):
    """A streaming session was used after :meth:`StreamSession.close`."""


class StoreThrashError(RuntimeError):
    """Pinning lost the race with eviction too many times in a row."""


@dataclass(repr=False)
class EditReport(StatsDictMixin):
    """The receipt for one streamed edit.

    ``nodes_rehashed`` is the perf claim: spine ancestors plus the new
    subtree, minus nodes served from the store memo -- never the corpus.
    ``shared`` says whether the new subtree's alpha-equivalence class
    already existed in the store before this edit (the new-sharing
    report); ``new_classes`` counts classes this edit created.
    ``built`` flags the item's first edit, which pays a one-time
    O(item) annotation-tree build; ``repinned`` flags an
    evicted-then-recovered pin (see module docs).
    """

    item: int
    path: tuple[int, ...]
    root_hash: int
    edit_hash: int
    nodes_rehashed: int
    spine_depth: int
    path_map_entries: int
    subtree_nodes: int
    unchanged_nodes: int
    store_memo_nodes: int
    shared: bool = False
    new_classes: int = 0
    class_id: Optional[int] = None
    built: bool = False
    repinned: bool = False

    _stats_properties = ()


class StreamSession:
    """A stateful edit stream over one corpus and one (shared) store.

    >>> stream = session.open_stream(corpus)
    >>> report = stream.edit(0, (0, 1), new_subtree)
    >>> report.root_hash, report.nodes_rehashed
    >>> stream.close()                      # unpins everything

    Parameters
    ----------
    corpus:
        The expressions this session edits (item indices address it).
    session:
        The owning :class:`~repro.api.Session`; its store, planner and
        engine defaults are used.  A store-less session still streams
        (pure incremental hashing, no pinning or sharing reports).
    intern_classes:
        Whether to intern + pin corpus roots and edit subtrees in the
        session's store.  Defaults to ``True`` when a store is present.
        Shard-identity service nodes (which refuse foreign classes)
        open their sessions with ``False``: hashing needs no ownership,
        and sharing reports degrade to lookup + session-local history.
    hints:
        Optional request hints (``engine`` / ``workers`` / ...) applied
        to the opening hash and intern requests, exactly like the
        keyword hints of :class:`~repro.api.request.HashRequest`.

    The caller keeps binders unique across each item (the same contract
    as :class:`~repro.core.IncrementalHasher.replace`; real rewrite
    loops maintain it anyway, :class:`repro.lang.names.NameSupply`
    helps).
    """

    def __init__(
        self,
        corpus: Iterable[Expr],
        session: Optional["Session"] = None,
        intern_classes: Optional[bool] = None,
        hints: Optional[dict] = None,
    ):
        if session is None:
            from repro.api.session import Session

            session = Session()
        self.session = session
        self.store = session.store
        self._corpus: list[Expr] = list(corpus)
        for item in self._corpus:
            if not isinstance(item, Expr):
                raise TypeError(
                    f"corpus items must be expressions, got {type(item).__name__}"
                )
        if intern_classes is None:
            intern_classes = self.store is not None
        if intern_classes and self.store is None:
            raise ValueError("intern_classes=True needs a store-backed session")
        self.intern_classes = intern_classes
        self.closed = False

        #: item index -> lazily built annotation tree (first edit pays
        #: the O(item) build; every later edit on the item is O(spine)).
        self._hashers: dict[int, IncrementalHasher] = {}
        #: node ids this session has pinned (unpinned on close).
        self._pinned: list[int] = []
        #: alpha-hashes produced by this session's edits (sharing
        #: reports in intern-free mode consult this as well as the store).
        self._seen_hashes: set[int] = set()

        # Totals for report()/metrics.
        self.edits = 0
        self.nodes_rehashed = 0
        self.spine_nodes = 0
        self.repins = 0
        self.built_items = 0

        # Open: hash the corpus through the plan pipeline (the plan is
        # kept for inspection), then intern + pin the roots so the
        # shared store cannot evict them mid-stream.
        self.plan: Optional["ExecutionPlan"] = None
        hints = dict(hints or {})
        if self._corpus:
            request = HashRequest(self._corpus, **hints)
            self.plan = session.plan(request)
            self.root_hashes: list[int] = session.execute(request, plan=self.plan)
        else:
            self.root_hashes = []
        self.corpus_nodes = sum(item.size for item in self._corpus)
        self.root_ids: list[Optional[int]] = [None] * len(self._corpus)
        if self.intern_classes and self._corpus:
            ids = session.execute(InternRequest(self._corpus, **hints))
            for index, (item, node_id) in enumerate(zip(self._corpus, ids)):
                self.root_ids[index] = self._pin_class(item, node_id)
        self._seen_hashes.update(self.root_hashes)

    # -- pinning ---------------------------------------------------------------

    def _pin_class(self, expr: Expr, node_id: int) -> int:
        """Pin ``node_id``; if the class was already evicted, recompute
        (re-intern ``expr``) and pin the fresh id instead of raising.

        On a bounded store, bulk interning enforces the LRU bound at
        batch end -- so a root interned early in the batch may be gone
        by pin time -- and on a sharded store concurrent writers can
        evict between our intern and our pin.  Re-interning protects
        the fresh root until we pin it, so the loop terminates (in
        practice in one round; the bound guards pathological races).
        """
        assert self.store is not None
        for _ in range(8):
            try:
                self.store.pin(node_id)
            except KeyError:
                self.repins += 1
                node_id = self.store.intern(expr)
                continue
            self._pinned.append(node_id)
            return node_id
        raise StoreThrashError(
            f"could not pin class {node_id} (store under extreme churn)"
        )

    # -- queries ---------------------------------------------------------------

    @property
    def items(self) -> int:
        return len(self._corpus)

    def expr(self, item: int) -> Expr:
        """The current (post-edit) tree of ``item``."""
        hasher = self._hashers.get(item)
        return hasher.expr if hasher is not None else self._corpus[item]

    def _hasher(self, item: int) -> tuple[IncrementalHasher, bool]:
        hasher = self._hashers.get(item)
        if hasher is not None:
            return hasher, False
        hasher = IncrementalHasher(
            self._corpus[item],
            combiners=self.session.combiners,
            store=self.store,
        )
        self._hashers[item] = hasher
        self.built_items += 1
        return hasher, True

    # -- edits -----------------------------------------------------------------

    def edit(
        self, item: int, path: Sequence[int], new_subexpr: Expr
    ) -> EditReport:
        """Replace the subtree of ``item`` at ``path`` with ``new_subexpr``.

        Raises :class:`PathError` on a path that addresses no node,
        ``IndexError`` on an out-of-range item, :class:`StreamError`
        after :meth:`close`.
        """
        if self.closed:
            raise StreamError("session is closed")
        if not 0 <= item < len(self._corpus):
            raise IndexError(
                f"item {item} out of range (corpus has {len(self._corpus)})"
            )
        if not isinstance(new_subexpr, Expr):
            raise TypeError(
                f"replacement must be an expression, got {type(new_subexpr).__name__}"
            )
        path = tuple(int(step) for step in path)
        hasher, built = self._hasher(item)
        stats = hasher.replace(path, new_subexpr)
        edit_hash = hasher.hash_at(path)
        root_hash = hasher.root_hash
        self.root_hashes[item] = root_hash

        shared = edit_hash in self._seen_hashes
        new_classes = 0
        class_id: Optional[int] = None
        repinned = False
        if self.store is not None:
            shared = shared or self.store.lookup_hash(edit_hash) is not None
            if self.intern_classes:
                repins_before = self.repins
                misses_before = self.store.stats.misses
                class_id = self._pin_class(
                    new_subexpr, self.store.intern(new_subexpr)
                )
                new_classes = self.store.stats.misses - misses_before
                repinned = self.repins > repins_before
        self._seen_hashes.add(edit_hash)
        self._seen_hashes.add(root_hash)

        self.edits += 1
        self.nodes_rehashed += stats.touched_nodes
        self.spine_nodes += stats.path_nodes
        return EditReport(
            item=item,
            path=path,
            root_hash=root_hash,
            edit_hash=edit_hash,
            nodes_rehashed=stats.touched_nodes,
            spine_depth=stats.spine_depth,
            path_map_entries=stats.path_map_entries,
            subtree_nodes=stats.subtree_nodes,
            unchanged_nodes=stats.unchanged_nodes,
            store_memo_nodes=stats.store_memo_nodes,
            shared=shared,
            new_classes=new_classes,
            class_id=class_id,
            built=built,
            repinned=repinned,
        )

    # -- reporting -------------------------------------------------------------

    @property
    def rehash_ratio(self) -> float:
        """Mean rehashed-nodes-per-edit over corpus size: the O(spine)
        vs O(corpus) receipt (tiny when incremental is winning)."""
        if not self.edits or not self.corpus_nodes:
            return 0.0
        return (self.nodes_rehashed / self.edits) / self.corpus_nodes

    def report(self) -> dict:
        """Session totals: the wire shape of ``/v1/session/report``."""
        return {
            "items": self.items,
            "corpus_nodes": self.corpus_nodes,
            "edits": self.edits,
            "nodes_rehashed": self.nodes_rehashed,
            "spine_nodes": self.spine_nodes,
            "mean_spine_depth": (
                self.spine_nodes / self.edits if self.edits else 0.0
            ),
            "rehash_ratio": self.rehash_ratio,
            "pinned": len(self._pinned),
            "repins": self.repins,
            "built_items": self.built_items,
            "root_hashes": list(self.root_hashes),
            "plan": self.plan.as_dict() if self.plan is not None else None,
        }

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Unpin every class this session pinned (idempotent)."""
        if self.closed:
            return
        self.closed = True
        if self.store is not None:
            for node_id in self._pinned:
                self.store.unpin(node_id)
        self._pinned.clear()
        self._hashers.clear()

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        state = "closed" if self.closed else "open"
        return (
            f"StreamSession({self.items} items, {self.edits} edits, "
            f"{len(self._pinned)} pinned, {state})"
        )
