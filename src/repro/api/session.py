"""The :class:`Session` facade: one front door for hashing workloads.

A session owns the three things every consumer used to assemble by
hand -- a combiner family, an optional :class:`~repro.store.ExprStore`,
and a named backend from the unified registry -- and exposes the whole
workflow behind one object::

    from repro.api import Session

    session = Session()                       # "ours", 64-bit, store-backed
    session.hash(expr)                        # root alpha-hash
    session.hashes(expr)                      # every subexpression
    session.hash_corpus(corpus)               # store-batched
    session.intern(expr)                      # canonical node id

    # corpus work is a request -> plan -> execute pipeline underneath:
    request = HashRequest(corpus, workers=4, engine="auto")
    session.plan(request)                     # inspectable ExecutionPlan
    session.execute(request)                  # bit-identical to serial
    session.cse(expr); session.share(expr)    # apps, pooled through the store
    session.save("corpus.snap")               # persist intern table + memo
    warm = Session.load("corpus.snap")        # ...in another process

    Session(backend="debruijn").hashes(expr)  # any Table 1 row or ablation

Store routing: only the default ``ours`` backend is bit-compatible with
the store's memoised summariser, so only it is served from the store;
every other backend runs its own pass (selecting ``always_left`` and
then silently timing the store path would defeat the selection).  The
store still backs :meth:`intern` / :meth:`cse` / :meth:`share`
regardless of backend, since interning is defined over the canonical
alpha-hash.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass
from typing import Iterable, Optional, Union

from repro.api.backends import HasherBackend, get_backend
from repro.api.executors import get_executor
from repro.api.plan import ExecutionPlan, Planner
from repro.api.request import HashRequest, InternRequest
from repro.core.arena import ENGINE_CHOICES
from repro.core.combiners import DEFAULT_SEED, HashCombiners
from repro.core.hashed import AlphaHashes
from repro.lang.expr import Expr
from repro.store import (
    ExprStore,
    ShardedExprStore,
    WorkerPool,
    read_snapshot,
)
from repro.store.parallel import PARALLEL_MODES

__all__ = ["Session", "SessionConfig", "SessionError"]

_LEGACY_KWARGS_HINT = (
    "is deprecated; build a repro.api.HashRequest/InternRequest and call "
    "Session.execute() (the kwargs are lowered into a request for now)"
)


class SessionError(RuntimeError):
    """A session was asked for something its configuration rules out."""


@dataclass(frozen=True)
class SessionConfig:
    """Everything a :class:`Session` needs, in one declarative record.

    ``seed=None`` means the shared fixed default (reproducible hashes
    across sessions and processes).  ``use_store=False`` disables the
    store entirely: hashing runs the backend directly and
    intern/save/load become unavailable.  ``max_entries``/``memo_limit``
    configure the store's LRU-bounded mode.

    Scaling knobs: ``num_shards`` (when set) backs the session with a
    lock-striped :class:`~repro.store.ShardedExprStore`; ``workers``
    sets the *default* pool size for :meth:`Session.hash_corpus` /
    :meth:`Session.intern_many` (``1`` = serial, ``0`` = one per CPU);
    ``parallel_mode`` picks the pool flavour (``"process"`` for
    CPU-bound corpus hashing -- the sensible default under the GIL --
    ``"fork"``/``"spawn"`` to force one start method, or ``"thread"``);
    ``engine`` picks the corpus hashing strategy (``"auto"`` compiles
    large corpora into an array arena, ``"tree"``/``"arena"`` force a
    path -- see the README's "Arena kernel" section).
    """

    backend: str = "ours"
    bits: int = 64
    seed: Optional[int] = None
    use_store: bool = True
    max_entries: Optional[int] = None
    memo_limit: Optional[int] = None
    workers: int = 1
    parallel_mode: str = "process"
    num_shards: Optional[int] = None
    engine: str = "auto"

    @property
    def resolved_seed(self) -> int:
        return DEFAULT_SEED if self.seed is None else self.seed


class Session:
    """One coherent entry point over backends, combiners and the store.

    Construct from a :class:`SessionConfig` or from keyword overrides::

        Session()                                   # all defaults
        Session(backend="ours_lazy", bits=32)
        Session(SessionConfig(max_entries=10_000))
    """

    def __init__(self, config: Optional[SessionConfig] = None, **overrides):
        if config is None:
            config = SessionConfig(**overrides)
        elif overrides:
            raise TypeError(
                "pass either a SessionConfig or keyword overrides, not both"
            )
        if config.parallel_mode not in PARALLEL_MODES:
            raise ValueError(
                f"parallel_mode must be one of {PARALLEL_MODES}, got "
                f"{config.parallel_mode!r}"
            )
        if config.engine not in ENGINE_CHOICES:
            raise ValueError(
                f"engine must be one of {', '.join(ENGINE_CHOICES)}, got "
                f"{config.engine!r}"
            )
        self.config = config
        #: Long-lived worker pools keyed by (mode, size), created on
        #: first parallel use and reused across hash_corpus calls until
        #: close() -- the fork/spawn cost is paid once per session, not
        #: once per batch.  (The tree engine's fork path ignores them;
        #: see repro.store.parallel.WorkerPool.)
        self._pools: dict[tuple[str, int], WorkerPool] = {}
        #: The policy stage of the request -> plan -> execute pipeline;
        #: swap it (e.g. ``Planner(arena_threshold=...)``) to retune
        #: decisions without touching execution code.
        self.planner = Planner()
        self.backend: HasherBackend = get_backend(config.backend)
        self.combiners = HashCombiners(
            bits=config.bits, seed=config.resolved_seed
        )
        self.store: Optional[ExprStore] = None
        if config.use_store:
            if config.num_shards is not None:
                self.store = ShardedExprStore(
                    self.combiners,
                    num_shards=config.num_shards,
                    max_entries=config.max_entries,
                    memo_limit=config.memo_limit,
                )
            else:
                self.store = ExprStore(
                    self.combiners,
                    max_entries=config.max_entries,
                    memo_limit=config.memo_limit,
                )

    def __repr__(self) -> str:  # pragma: no cover
        store = f"{len(self.store)} entries" if self.store else "no store"
        return (
            f"Session(backend={self.backend.name!r}, "
            f"bits={self.combiners.bits}, {store})"
        )

    @property
    def _store_backed(self) -> bool:
        return self.store is not None and self.backend.store_backed

    # -- hashing ---------------------------------------------------------------

    def hash(self, expr: Expr) -> int:
        """The root hash of ``expr`` under the session's backend."""
        if self._store_backed:
            return self.store.hash_expr(expr)
        return self.backend.hash_all(expr, self.combiners).root_hash

    def hashes(self, expr: Expr) -> AlphaHashes:
        """Hashes of every subexpression of ``expr``."""
        if self._store_backed:
            return self.store.hashes(expr)
        return self.backend.hash_all(expr, self.combiners)

    def _pool_for(self, mode: str, workers: int) -> WorkerPool:
        key = (mode, workers)
        pool = self._pools.get(key)
        if pool is None:
            pool = WorkerPool(workers, mode)
            self._pools[key] = pool
        return pool

    # -- the request -> plan -> execute pipeline -------------------------------

    def plan(self, request: HashRequest) -> ExecutionPlan:
        """Resolve ``request`` into an inspectable :class:`ExecutionPlan`
        (engine, workers, pool mode, executor) without running anything.
        See :mod:`repro.api.plan` for the policy."""
        return self.planner.plan(self, request)

    # repro-lint: allow[lock-blocking] reason=CPU-bound hashing/interning fan-out; a caller's service lock is what serializes the store mutation this performs, and no executor path touches a service lock of its own
    def execute(
        self, request: HashRequest, plan: Optional[ExecutionPlan] = None
    ) -> list[int]:
        """Run ``request`` (planning it first unless ``plan`` is given).

        The canonical entry point for corpus work::

            session.execute(HashRequest(corpus, workers=4))
            session.execute(InternRequest(corpus))

        Results are bit-identical across executors and engines -- the
        plan only decides *how* the same pure function is evaluated.
        Pool-executor plans run on session-owned persistent pools; call
        :meth:`close` (or use the session as a context manager) to
        release them.
        """
        if plan is None:
            plan = self.plan(request)
        return get_executor(plan.executor).run(self, request, plan)

    def hash_corpus(
        self,
        exprs: Iterable[Expr],
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        engine: Optional[str] = None,
    ) -> list[int]:
        """Root hashes of a whole corpus, store-batched when possible:
        repeated and overlapping subtrees are summarised once.

        Sugar for ``execute(HashRequest(exprs))``: the session's
        configured ``workers`` / ``parallel_mode`` / ``engine`` become
        the planner's defaults, results are **bit-identical** to the
        serial path regardless of the plan.  The per-call ``workers`` /
        ``mode`` / ``engine`` keyword overrides are deprecated -- pass a
        :class:`~repro.api.request.HashRequest` carrying the hints to
        :meth:`execute` instead (they are lowered into exactly that
        request here, under a :class:`DeprecationWarning`).
        """
        if workers is not None or mode is not None or engine is not None:
            warnings.warn(
                "Session.hash_corpus(workers=/mode=/engine=) "
                + _LEGACY_KWARGS_HINT,
                DeprecationWarning,
                stacklevel=2,
            )
        return self.execute(
            HashRequest(exprs, workers=workers, mode=mode, engine=engine)
        )

    def close(self) -> None:
        """Shut down the session's persistent worker pools (idempotent).

        The store and its caches survive -- only pool processes/threads
        are released.  Sessions are also context managers::

            with Session(workers=4) as session:
                session.hash_corpus(corpus)   # pool reused across calls
        """
        pools, self._pools = self._pools, {}
        for pool in pools.values():
            pool.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- interning and apps ----------------------------------------------------

    def _require_store(self, operation: str) -> ExprStore:
        if self.store is None:
            raise SessionError(
                f"{operation} needs a store; this session was built with "
                "use_store=False"
            )
        return self.store

    def intern(self, expr: Expr) -> int:
        """Intern ``expr``; alpha-equivalent trees share one node id."""
        return self._require_store("intern()").intern(expr)

    def intern_many(
        self,
        exprs: Iterable[Expr],
        workers: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> list[int]:
        """Batch :meth:`intern`: one id per input, duplicates collapse.

        Sugar for ``execute(InternRequest(exprs))``.  Pooled plans
        intern slices in worker processes and merge the tables back
        shard-by-shard over the snapshot wire format: the resulting
        *classes and hashes* are bit-identical to the serial path; node
        ids may differ (ids encode arrival order, and were never stable
        across store instances).  The per-call ``workers`` / ``engine``
        keyword overrides are deprecated -- pass an
        :class:`~repro.api.request.InternRequest` to :meth:`execute`.
        """
        if workers is not None or engine is not None:
            warnings.warn(
                "Session.intern_many(workers=/engine=) " + _LEGACY_KWARGS_HINT,
                DeprecationWarning,
                stacklevel=2,
            )
        return self.execute(InternRequest(exprs, workers=workers, engine=engine))

    def open_stream(
        self,
        corpus: Iterable[Expr],
        intern_classes: Optional[bool] = None,
    ):
        """Open a :class:`~repro.api.stream.StreamSession` over ``corpus``.

        The streaming counterpart of :meth:`hash_corpus`: pay the
        O(corpus) open once, then stream subtree-replacement edits that
        re-hash only the dirty spine (see :mod:`repro.api.stream`).
        Corpus roots are interned and pinned in this session's store so
        LRU pressure from other traffic cannot evict them mid-stream.
        """
        from repro.api.stream import StreamSession

        return StreamSession(corpus, session=self, intern_classes=intern_classes)

    def cse(self, expr: Expr, **kwargs):
        """Common-subexpression elimination through the session's store
        (see :func:`repro.apps.cse.cse` for the knobs)."""
        from repro.apps.cse import cse

        return cse(expr, combiners=self.combiners, store=self.store, **kwargs)

    def share(
        self,
        exprs: Union[Expr, Iterable[Expr]],
        engine: Optional[str] = None,
    ):
        """Alpha-share one expression (-> ``SharingResult``) or a corpus
        (-> list of them), pooling the canonical DAG across the session.

        Corpora go through :func:`repro.apps.sharing.share_alpha_corpus`,
        which batch-interns the whole input -- large corpora take the
        store's arena bulk-intern fast path.  ``engine`` overrides the
        session default per call, like :meth:`hash_corpus`."""
        from repro.apps.sharing import share_alpha, share_alpha_corpus

        if isinstance(exprs, Expr):
            return share_alpha(exprs, combiners=self.combiners, store=self.store)
        return share_alpha_corpus(
            list(exprs),
            combiners=self.combiners,
            store=self.store,
            engine=self.config.engine if engine is None else engine,
        )

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """One merged accounting dict: config, backend, store counters."""
        out: dict = {
            "backend": self.backend.name,
            "backend_kind": self.backend.kind,
            "bits": self.combiners.bits,
            "seed": self.combiners.seed,
            "store_enabled": self.store is not None,
        }
        if self.store is not None:
            out["entries"] = len(self.store)
            out["store"] = self.store.stats.as_dict()
            if isinstance(self.store, ShardedExprStore):
                out["num_shards"] = self.store.num_shards
                out["shard_sizes"] = self.store.shard_sizes()
        out["workers"] = self.config.workers
        out["engine"] = self.config.engine
        out["live_pools"] = sorted(
            f"{mode}x{workers}" for mode, workers in self._pools
        )
        return out

    # -- persistence -----------------------------------------------------------

    def save(self, path: str) -> str:
        """Snapshot the session's store (and backend name) to ``path``."""
        store = self._require_store("save()")
        store.save(path, meta={"backend": self.backend.name, "config": asdict(self.config)})
        return path

    @classmethod
    def load(cls, path: str, backend: Optional[str] = None) -> "Session":
        """Rebuild a session from a :meth:`save` snapshot.

        Root hashes are bit-identical to the saving process, and
        interning lands on the saved node ids without growing the
        store.  (Re-parsed copies of saved expressions are summarised
        once -- the memo is per-object -- before resolving to their
        existing class; the restored canonical representatives hash as
        pure memo hits.)  ``backend`` overrides the saved backend name.
        """
        store, header = read_snapshot(path)
        return cls._adopt_snapshot(store, header, backend)

    @classmethod
    def from_snapshot_bytes(
        cls, data: bytes, backend: Optional[str] = None
    ) -> "Session":
        """:meth:`load`, but from in-memory snapshot wire bytes (e.g.
        fetched from a :mod:`repro.service` server)."""
        from repro.store import snapshot_from_bytes

        store, header = snapshot_from_bytes(data)
        return cls._adopt_snapshot(store, header, backend)

    @classmethod
    def _adopt_snapshot(
        cls, store: ExprStore, header: dict, backend: Optional[str]
    ) -> "Session":
        """The one snapshot-adoption path behind :meth:`load` and
        :meth:`from_snapshot_bytes`."""
        meta = header.get("meta") or {}
        saved_config = meta.get("config") or {}
        if isinstance(store, ShardedExprStore):
            # Native v2 sharded snapshot: adopted directly below --
            # original node ids, per-shard recency and counters all
            # survive.
            num_shards: Optional[int] = store.num_shards
        else:
            num_shards = (meta.get("sharded") or {}).get("num_shards")
        config = SessionConfig(
            backend=backend or meta.get("backend", "ours"),
            bits=header["bits"],
            seed=header["seed"],
            use_store=True,
            max_entries=header.get("max_entries"),
            memo_limit=header.get("memo_limit"),
            workers=saved_config.get("workers", 1),
            parallel_mode=saved_config.get("parallel_mode", "process"),
            num_shards=num_shards,
            engine=saved_config.get("engine", "auto"),
        )
        session = cls(config)
        if num_shards is not None and not isinstance(store, ShardedExprStore):
            # A v1 snapshot written by a pre-v2 sharded store: re-shard
            # the decoded flat table (node ids are re-assigned, classes
            # survive).
            session.store = ShardedExprStore.from_flat_store(
                store, num_shards
            )
            session.combiners = session.store.combiners
            return session
        # Adopt the restored store wholesale (same combiner family: the
        # snapshot header is the source of bits and seed).
        session.store = store
        session.combiners = store.combiners
        return session
