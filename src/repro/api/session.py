"""The :class:`Session` facade: one front door for hashing workloads.

A session owns the three things every consumer used to assemble by
hand -- a combiner family, an optional :class:`~repro.store.ExprStore`,
and a named backend from the unified registry -- and exposes the whole
workflow behind one object::

    from repro.api import Session

    session = Session()                       # "ours", 64-bit, store-backed
    session.hash(expr)                        # root alpha-hash
    session.hashes(expr)                      # every subexpression
    session.hash_corpus(corpus)               # store-batched
    session.intern(expr)                      # canonical node id
    session.cse(expr); session.share(expr)    # apps, pooled through the store
    session.save("corpus.snap")               # persist intern table + memo
    warm = Session.load("corpus.snap")        # ...in another process

    Session(backend="debruijn").hashes(expr)  # any Table 1 row or ablation

Store routing: only the default ``ours`` backend is bit-compatible with
the store's memoised summariser, so only it is served from the store;
every other backend runs its own pass (selecting ``always_left`` and
then silently timing the store path would defeat the selection).  The
store still backs :meth:`intern` / :meth:`cse` / :meth:`share`
regardless of backend, since interning is defined over the canonical
alpha-hash.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, Optional, Union

from repro.api.backends import FunctionBackend, get_backend
from repro.core.arena import resolve_engine
from repro.core.combiners import DEFAULT_SEED, HashCombiners
from repro.core.hashed import AlphaHashes
from repro.lang.expr import Expr
from repro.store import (
    ExprStore,
    ShardedExprStore,
    WorkerPool,
    parallel_hash_corpus,
    parallel_intern_corpus,
    read_snapshot,
    resolve_workers,
)
from repro.store.parallel import PARALLEL_MODES

__all__ = ["Session", "SessionConfig", "SessionError"]


class SessionError(RuntimeError):
    """A session was asked for something its configuration rules out."""


@dataclass(frozen=True)
class SessionConfig:
    """Everything a :class:`Session` needs, in one declarative record.

    ``seed=None`` means the shared fixed default (reproducible hashes
    across sessions and processes).  ``use_store=False`` disables the
    store entirely: hashing runs the backend directly and
    intern/save/load become unavailable.  ``max_entries``/``memo_limit``
    configure the store's LRU-bounded mode.

    Scaling knobs: ``num_shards`` (when set) backs the session with a
    lock-striped :class:`~repro.store.ShardedExprStore`; ``workers``
    sets the *default* pool size for :meth:`Session.hash_corpus` /
    :meth:`Session.intern_many` (``1`` = serial, ``0`` = one per CPU);
    ``parallel_mode`` picks the pool flavour (``"process"`` for
    CPU-bound corpus hashing -- the sensible default under the GIL --
    ``"fork"``/``"spawn"`` to force one start method, or ``"thread"``);
    ``engine`` picks the corpus hashing strategy (``"auto"`` compiles
    large corpora into an array arena, ``"tree"``/``"arena"`` force a
    path -- see the README's "Arena kernel" section).
    """

    backend: str = "ours"
    bits: int = 64
    seed: Optional[int] = None
    use_store: bool = True
    max_entries: Optional[int] = None
    memo_limit: Optional[int] = None
    workers: int = 1
    parallel_mode: str = "process"
    num_shards: Optional[int] = None
    engine: str = "auto"

    @property
    def resolved_seed(self) -> int:
        return DEFAULT_SEED if self.seed is None else self.seed


class Session:
    """One coherent entry point over backends, combiners and the store.

    Construct from a :class:`SessionConfig` or from keyword overrides::

        Session()                                   # all defaults
        Session(backend="ours_lazy", bits=32)
        Session(SessionConfig(max_entries=10_000))
    """

    def __init__(self, config: Optional[SessionConfig] = None, **overrides):
        if config is None:
            config = SessionConfig(**overrides)
        elif overrides:
            raise TypeError(
                "pass either a SessionConfig or keyword overrides, not both"
            )
        if config.parallel_mode not in PARALLEL_MODES:
            raise ValueError(
                f"parallel_mode must be one of {PARALLEL_MODES}, got "
                f"{config.parallel_mode!r}"
            )
        if config.engine not in ("auto", "arena", "tree"):
            raise ValueError(
                f"engine must be 'auto', 'arena' or 'tree', got "
                f"{config.engine!r}"
            )
        self.config = config
        #: Long-lived worker pools keyed by (mode, size), created on
        #: first parallel use and reused across hash_corpus calls until
        #: close() -- the fork/spawn cost is paid once per session, not
        #: once per batch.  (The tree engine's fork path ignores them;
        #: see repro.store.parallel.WorkerPool.)
        self._pools: dict[tuple[str, int], WorkerPool] = {}
        self.backend: FunctionBackend = get_backend(config.backend)
        self.combiners = HashCombiners(
            bits=config.bits, seed=config.resolved_seed
        )
        self.store: Optional[ExprStore] = None
        if config.use_store:
            if config.num_shards is not None:
                self.store = ShardedExprStore(
                    self.combiners,
                    num_shards=config.num_shards,
                    max_entries=config.max_entries,
                    memo_limit=config.memo_limit,
                )
            else:
                self.store = ExprStore(
                    self.combiners,
                    max_entries=config.max_entries,
                    memo_limit=config.memo_limit,
                )

    def __repr__(self) -> str:  # pragma: no cover
        store = f"{len(self.store)} entries" if self.store else "no store"
        return (
            f"Session(backend={self.backend.name!r}, "
            f"bits={self.combiners.bits}, {store})"
        )

    @property
    def _store_backed(self) -> bool:
        return self.store is not None and self.backend.store_backed

    # -- hashing ---------------------------------------------------------------

    def hash(self, expr: Expr) -> int:
        """The root hash of ``expr`` under the session's backend."""
        if self._store_backed:
            return self.store.hash_expr(expr)
        return self.backend.hash_all(expr, self.combiners).root_hash

    def hashes(self, expr: Expr) -> AlphaHashes:
        """Hashes of every subexpression of ``expr``."""
        if self._store_backed:
            return self.store.hashes(expr)
        return self.backend.hash_all(expr, self.combiners)

    def _pool_for(self, mode: str, workers: int) -> WorkerPool:
        key = (mode, workers)
        pool = self._pools.get(key)
        if pool is None:
            pool = WorkerPool(workers, mode)
            self._pools[key] = pool
        return pool

    def hash_corpus(
        self,
        exprs: Iterable[Expr],
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        engine: Optional[str] = None,
    ) -> list[int]:
        """Root hashes of a whole corpus, store-batched when possible:
        repeated and overlapping subtrees are summarised once.

        ``workers`` (default: the session's configured ``workers``) fans
        the corpus out over a process or thread pool (``mode``, default
        the session's ``parallel_mode``); results are merged back in
        input order and are **bit-identical** to the serial path.
        ``workers=0`` means one worker per CPU.  ``engine`` (default
        the session's ``engine``) picks tree walking vs the arena
        kernel.  Parallel fan-out is only wired for the
        store-compatible default backend -- other backends time their
        own algorithm and stay serial.

        Parallel arena-engine calls run on a session-owned persistent
        pool (arenas reach workers as picklable payloads; the tree
        engine needs a fresh publish-then-fork pool per call and never
        uses one); call :meth:`close` -- or use the session as a
        context manager -- to release the pools.
        """
        effective = self.config.workers if workers is None else workers
        effective = resolve_workers(effective)
        engine = self.config.engine if engine is None else engine
        if self._store_backed:
            if effective > 1:
                mode = mode or self.config.parallel_mode
                corpus = exprs if isinstance(exprs, list) else list(exprs)
                # Resolve the engine once, here: only the arena engine
                # can run on a reusable pool, and passing the concrete
                # choice down keeps this decision and the fan-out's in
                # one place.
                engine = resolve_engine(
                    engine, sum(e.size for e in corpus)
                )
                return parallel_hash_corpus(
                    corpus,
                    workers=effective,
                    mode=mode,
                    store=self.store,
                    engine=engine,
                    pool=(
                        self._pool_for(mode, effective)
                        if engine == "arena"
                        else None
                    ),
                )
            return self.store.hash_corpus(exprs, engine=engine)
        return [
            self.backend.hash_all(e, self.combiners).root_hash for e in exprs
        ]

    def close(self) -> None:
        """Shut down the session's persistent worker pools (idempotent).

        The store and its caches survive -- only pool processes/threads
        are released.  Sessions are also context managers::

            with Session(workers=4) as session:
                session.hash_corpus(corpus)   # pool reused across calls
        """
        pools, self._pools = self._pools, {}
        for pool in pools.values():
            pool.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- interning and apps ----------------------------------------------------

    def _require_store(self, operation: str) -> ExprStore:
        if self.store is None:
            raise SessionError(
                f"{operation} needs a store; this session was built with "
                "use_store=False"
            )
        return self.store

    def intern(self, expr: Expr) -> int:
        """Intern ``expr``; alpha-equivalent trees share one node id."""
        return self._require_store("intern()").intern(expr)

    def intern_many(
        self,
        exprs: Iterable[Expr],
        workers: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> list[int]:
        """Batch :meth:`intern`: one id per input, duplicates collapse.

        With ``workers > 1`` (default: the session's configured
        ``workers``), slices are interned by worker processes into local
        stores and merged back shard-by-shard over the snapshot wire
        format.  The resulting *classes and hashes* are bit-identical to
        the serial path; node ids may differ (ids encode arrival order,
        and were never stable across store instances).  Serially,
        ``engine`` routes large corpora through the arena bulk-intern
        path on eviction-free flat stores.
        """
        store = self._require_store("intern_many()")
        effective = self.config.workers if workers is None else workers
        effective = resolve_workers(effective)
        if effective > 1:
            return parallel_intern_corpus(exprs, store, workers=effective)
        return store.intern_many(
            exprs, engine=self.config.engine if engine is None else engine
        )

    def cse(self, expr: Expr, **kwargs):
        """Common-subexpression elimination through the session's store
        (see :func:`repro.apps.cse.cse` for the knobs)."""
        from repro.apps.cse import cse

        return cse(expr, combiners=self.combiners, store=self.store, **kwargs)

    def share(
        self,
        exprs: Union[Expr, Iterable[Expr]],
        engine: Optional[str] = None,
    ):
        """Alpha-share one expression (-> ``SharingResult``) or a corpus
        (-> list of them), pooling the canonical DAG across the session.

        Corpora go through :func:`repro.apps.sharing.share_alpha_corpus`,
        which batch-interns the whole input -- large corpora take the
        store's arena bulk-intern fast path.  ``engine`` overrides the
        session default per call, like :meth:`hash_corpus`."""
        from repro.apps.sharing import share_alpha, share_alpha_corpus

        if isinstance(exprs, Expr):
            return share_alpha(exprs, combiners=self.combiners, store=self.store)
        return share_alpha_corpus(
            list(exprs),
            combiners=self.combiners,
            store=self.store,
            engine=self.config.engine if engine is None else engine,
        )

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """One merged accounting dict: config, backend, store counters."""
        out: dict = {
            "backend": self.backend.name,
            "backend_kind": self.backend.kind,
            "bits": self.combiners.bits,
            "seed": self.combiners.seed,
            "store_enabled": self.store is not None,
        }
        if self.store is not None:
            out["entries"] = len(self.store)
            out["store"] = self.store.stats.as_dict()
            if isinstance(self.store, ShardedExprStore):
                out["num_shards"] = self.store.num_shards
                out["shard_sizes"] = self.store.shard_sizes()
        out["workers"] = self.config.workers
        out["engine"] = self.config.engine
        out["live_pools"] = sorted(
            f"{mode}x{workers}" for mode, workers in self._pools
        )
        return out

    # -- persistence -----------------------------------------------------------

    def save(self, path: str) -> str:
        """Snapshot the session's store (and backend name) to ``path``."""
        store = self._require_store("save()")
        store.save(path, meta={"backend": self.backend.name, "config": asdict(self.config)})
        return path

    @classmethod
    def load(cls, path: str, backend: Optional[str] = None) -> "Session":
        """Rebuild a session from a :meth:`save` snapshot.

        Root hashes are bit-identical to the saving process, and
        interning lands on the saved node ids without growing the
        store.  (Re-parsed copies of saved expressions are summarised
        once -- the memo is per-object -- before resolving to their
        existing class; the restored canonical representatives hash as
        pure memo hits.)  ``backend`` overrides the saved backend name.
        """
        store, header = read_snapshot(path)
        meta = header.get("meta") or {}
        saved_config = meta.get("config") or {}
        num_shards = (meta.get("sharded") or {}).get("num_shards")
        config = SessionConfig(
            backend=backend or meta.get("backend", "ours"),
            bits=header["bits"],
            seed=header["seed"],
            use_store=True,
            max_entries=header.get("max_entries"),
            memo_limit=header.get("memo_limit"),
            workers=saved_config.get("workers", 1),
            parallel_mode=saved_config.get("parallel_mode", "process"),
            num_shards=num_shards,
            engine=saved_config.get("engine", "auto"),
        )
        session = cls(config)
        if num_shards is not None:
            # Re-shard the already-decoded flat snapshot (sharded stores
            # snapshot via the flat format; node ids are re-assigned,
            # classes survive).
            session.store = ShardedExprStore.from_flat_store(
                store, num_shards
            )
            session.combiners = session.store.combiners
            return session
        # Adopt the restored store wholesale (same combiner family: the
        # snapshot header is the source of bits and seed).
        session.store = store
        session.combiners = store.combiners
        return session
