"""``repro.api`` -- the user-facing front door of the reproduction.

The package is organised as a request -> plan -> execute pipeline
behind one facade:

* :class:`Session` (:mod:`repro.api.session`) -- owns a combiner
  family, an optional :class:`~repro.store.ExprStore`, and a named
  hasher backend; exposes ``hash`` / ``hashes`` / ``hash_corpus`` /
  ``intern`` / ``cse`` / ``share`` / ``stats`` plus ``save`` / ``load``
  store snapshots, and the pipeline entry points ``plan`` / ``execute``.
* requests (:mod:`repro.api.request`) -- :class:`HashRequest` /
  :class:`InternRequest`, declarative corpus jobs carrying backend,
  determinism and resource hints.
* the planner (:mod:`repro.api.plan`) -- resolves a request against a
  session into an inspectable :class:`ExecutionPlan` (tree vs arena
  engine, workers, pool mode, executor), absorbing the ``engine="auto"``
  heuristic behind one threshold constant.
* executors (:mod:`repro.api.executors`) -- pluggable runners
  (``serial`` / ``pool`` / ``async``) that drive the store and the
  parallel engine; results are bit-identical across all of them.
* :class:`AsyncSession` (:mod:`repro.api.aio`) -- the asyncio front
  end (awaitable corpus jobs, bounded in-flight, cancellation).
* :class:`RemoteSession` (:mod:`repro.api.remote`) -- the same verbs
  against a ``repro serve`` node or a ``repro cluster serve``
  coordinator; swap a URL to scale from one store to a cluster.
* the unified backend registry (:mod:`repro.api.backends`) -- every
  Table 1 algorithm, the Appendix C variant, the design-choice
  ablations, and any third-party backend advertised through the
  ``repro.backends`` entry-point group.

Everything else in the package keeps working, but new code (and all the
in-repo CLIs, harnesses and benchmarks) should come through here.  The
:mod:`repro.service` HTTP server/client speak this API over the wire.
"""

from repro.api.aio import AsyncSession
from repro.api.backends import (
    ABLATION_ORDER,
    BACKENDS,
    ENTRY_POINT_GROUP,
    TABLE1_ORDER,
    FunctionBackend,
    HasherBackend,
    backend_names,
    get_backend,
    load_entry_point_backends,
    register_backend,
)
from repro.api.executors import (
    EXECUTORS,
    AsyncExecutor,
    Executor,
    PooledExecutor,
    SerialExecutor,
    get_executor,
    register_executor,
)
from repro.api.plan import (
    ARENA_NODE_THRESHOLD,
    ExecutionPlan,
    Planner,
    PlanError,
)
from repro.api.remote import RemoteSession, RemoteStreamSession
from repro.api.request import HashRequest, InternRequest
from repro.api.session import Session, SessionConfig, SessionError
from repro.api.stream import (
    EditReport,
    StoreThrashError,
    StreamError,
    StreamSession,
)

__all__ = [
    # facade
    "Session",
    "SessionConfig",
    "SessionError",
    "AsyncSession",
    "RemoteSession",
    # streaming edit sessions
    "StreamSession",
    "RemoteStreamSession",
    "StreamError",
    "StoreThrashError",
    "EditReport",
    # pipeline
    "HashRequest",
    "InternRequest",
    "ExecutionPlan",
    "Planner",
    "PlanError",
    "ARENA_NODE_THRESHOLD",
    "Executor",
    "SerialExecutor",
    "PooledExecutor",
    "AsyncExecutor",
    "EXECUTORS",
    "get_executor",
    "register_executor",
    # backends
    "HasherBackend",
    "FunctionBackend",
    "BACKENDS",
    "TABLE1_ORDER",
    "ABLATION_ORDER",
    "ENTRY_POINT_GROUP",
    "backend_names",
    "get_backend",
    "register_backend",
    "load_entry_point_backends",
]
