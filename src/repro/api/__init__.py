"""``repro.api`` -- the user-facing front door of the reproduction.

Two pieces:

* :class:`Session` (:mod:`repro.api.session`) -- a facade owning a
  combiner family, an optional :class:`~repro.store.ExprStore`, and a
  named hasher backend; it exposes ``hash`` / ``hashes`` /
  ``hash_corpus`` / ``intern`` / ``cse`` / ``share`` / ``stats`` plus
  ``save`` / ``load`` store snapshots.
* the unified backend registry (:mod:`repro.api.backends`) -- every
  Table 1 algorithm, the Appendix C variant and the design-choice
  ablations behind one ``name -> HasherBackend`` mapping.

Everything else in the package keeps working, but new code (and all the
in-repo CLIs, harnesses and benchmarks) should come through here.
"""

from repro.api.backends import (
    ABLATION_ORDER,
    BACKENDS,
    TABLE1_ORDER,
    FunctionBackend,
    HasherBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.api.session import Session, SessionConfig, SessionError

__all__ = [
    "Session",
    "SessionConfig",
    "SessionError",
    "HasherBackend",
    "FunctionBackend",
    "BACKENDS",
    "TABLE1_ORDER",
    "ABLATION_ORDER",
    "backend_names",
    "get_backend",
    "register_backend",
]
