"""A hash-consed expression store keyed by alpha-hashes.

The paper's O(n log n) alpha-hash (Section 5) annotates every
subexpression with a code that is equal iff the subtrees are
alpha-equivalent -- exactly the key a content-addressed store needs.
:class:`ExprStore` builds on that in two layers:

* **Canonical entries.**  Interning an expression assigns every
  alpha-equivalence class of its subexpressions one integer node id and
  one canonical representative tree whose children are themselves
  canonical (a maximally-shared DAG).  ``\\x. x+7`` and ``\\y. y+7``
  intern to the same id.

* **Summary memo.**  Hashing is memoised per subtree *object*: the store
  remembers each node's hashed e-summary (structure hash, free-variable
  map, top hash), so a corpus that repeats or overlaps subtrees -- shared
  objects across corpus items, or the off-path subtrees a rewrite leaves
  untouched -- is hashed once, not once per occurrence.  The memoised
  summary is enough to *resume* hashing mid-tree: a parent containing an
  already-seen subtree merges the cached free-variable map upward without
  revisiting the subtree.

Soundness is the paper's: equal alpha-hash == alpha-equivalent, up to
hash collisions (Theorem 6.7 bounds these below ~n/2^61 at the default
64-bit width).  A cheap structural guard (kind and size must match on
every intern hit) turns the astronomically-unlikely collision into a
loud :class:`StoreCollisionError` instead of silent conflation.

Two capacity modes:

* **eviction-free** (``max_entries=None``) -- entries live forever;
* **LRU-bounded** (``max_entries=N``) -- least-recently-used root
  entries are evicted once the table exceeds ``N``; entries still
  referenced as children of live entries are pinned.  The summary memo
  is flushed wholesale when it exceeds ``memo_limit`` objects.

Long-lived consumers (the streaming edit sessions of
:mod:`repro.api.stream`, most notably) can additionally :meth:`~ExprStore.pin`
individual classes: a pinned entry is never an eviction victim, and
neither are its descendants (children of live entries carry a positive
refcount).  Pins are counted, so overlapping sessions compose; they are
in-memory state and do not survive snapshots.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.core.arena import engine_family, engine_kernel, plan_corpus_engine
from repro.core.combiners import HashCombiners, default_combiners
from repro.core.hashed import AlphaHashes
from repro.core.kernel import MemoRecord, summarise_tree
from repro.core.position_tree import pt_here_hash
from repro.core.statshape import StatsDictMixin
from repro.core.structure import svar_hash
from repro.core.varmap import HashedVarMap
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var
from repro.lang.traversal import preorder

__all__ = ["ExprStore", "StoreEntry", "StoreStats", "StoreCollisionError"]


class StoreCollisionError(RuntimeError):
    """Two non-alpha-equivalent subtrees produced the same alpha-hash.

    At the default 64-bit width this fires with probability ~n^3/2^61
    over the store's lifetime (Theorem 6.8); at the small widths of
    Appendix B it is expected.  Re-seed or widen the combiner family.
    """


@dataclass(repr=False)
class StoreStats(StatsDictMixin):
    """Cache accounting for one :class:`ExprStore`.

    Node-granularity counters (the hashing layer):

    * ``hashed_nodes`` -- nodes summarised from scratch;
    * ``memo_hits`` -- subtree roots served from the summary memo;
    * ``memo_skipped_nodes`` -- total nodes under those roots (work the
      memo avoided).

    Class-granularity counters (the intern table):

    * ``hits`` -- interned subtrees whose equivalence class already had
      a canonical entry;
    * ``misses`` -- fresh canonical entries created;
    * ``evictions`` -- entries dropped by the LRU bound.
    """

    hits: int = 0
    misses: int = 0
    memo_hits: int = 0
    hashed_nodes: int = 0
    memo_skipped_nodes: int = 0
    evictions: int = 0

    _stats_properties = ("hit_rate", "intern_hit_rate", "touched_nodes")

    @property
    def hit_rate(self) -> float:
        """Fraction of node visits served by the summary memo."""
        total = self.hashed_nodes + self.memo_skipped_nodes
        return self.memo_skipped_nodes / total if total else 0.0

    @property
    def intern_hit_rate(self) -> float:
        """Fraction of interned subtrees that hit an existing class."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def touched_nodes(self) -> int:
        """Nodes actually summarised (same key as ``ReplaceStats``)."""
        return self.hashed_nodes


@dataclass
class StoreEntry:
    """One canonical node: an alpha-equivalence class representative.

    ``children`` are node ids of canonical children; ``expr`` is the
    canonical representative tree (its subtrees are the canonical
    representatives of the child entries, so entries form a DAG).
    ``refcount`` counts parent entries referencing this one -- the LRU
    mode only evicts entries with ``refcount == 0``.  ``version`` is the
    store's monotonic intern stamp at creation time: entry ``version``
    values are unique and strictly increasing in creation order, which
    is what incremental snapshot deltas
    (:func:`repro.store.snapshot.delta_to_bytes`) select on.
    """

    node_id: int
    hash: int
    kind: str
    size: int
    children: tuple[int, ...]
    expr: Expr
    refcount: int = 0
    version: int = 0


# The record class moved to repro.core.kernel in PR 4 (the shared
# summarise loop creates it); the old private name stays importable for
# the snapshot codec and the sharded store.
_MemoRecord = MemoRecord


class ExprStore:
    """Intern expressions modulo alpha-equivalence; memoise their hashes.

    >>> store = ExprStore()
    >>> a = store.intern(parse(r"\\x. x + 7"))
    >>> b = store.intern(parse(r"\\y. y + 7"))   # alpha-equivalent copy
    >>> a == b                                    # same canonical class
    True
    >>> store.stats.hits >= 1                     # intern-table hits
    True

    Parameters
    ----------
    combiners:
        Hash-combiner family; defaults to the shared 64-bit fixed-seed
        family, so two default stores agree on every hash.
    max_entries:
        ``None`` for the eviction-free mode; an integer bounds the
        canonical-entry table with LRU eviction of unreferenced entries.
    memo_limit:
        Cap on the per-object summary memo (defaults to unbounded in
        eviction-free mode, ``64 * max_entries`` in LRU mode); when
        exceeded the memo is flushed wholesale.
    """

    def __init__(
        self,
        combiners: Optional[HashCombiners] = None,
        max_entries: Optional[int] = None,
        memo_limit: Optional[int] = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.combiners = combiners if combiners is not None else default_combiners()
        self.max_entries = max_entries
        if memo_limit is None and max_entries is not None:
            memo_limit = 64 * max_entries
        self.memo_limit = memo_limit
        self.stats = StoreStats()

        self._here = pt_here_hash(self.combiners)
        self._svar = svar_hash(self.combiners)
        self._var_entry_cache: dict[str, int] = {}
        self._lit_cache: dict[tuple[type, object], int] = {}
        #: id(node) -> cached summary; holds a strong ref to the node.
        self._memo: dict[int, _MemoRecord] = {}
        #: id(root) -> (root, top hash): the arena engine's root cache.
        #: Cheaper than a full memo record (no varmap snapshot) but only
        #: answers whole-corpus-item repeats; flushed with the memo.
        self._arena_root_memo: dict[int, tuple[Expr, int]] = {}
        #: The last serial arena compile: (arena, corpus objects,
        #: id(expr) -> root index, per-node tops).  Lets a bulk intern
        #: that follows a hash pass over the same corpus (the ``repro
        #: session`` flow) reuse the compile instead of re-flattening
        #: and re-hashing; replaced wholesale by each hash pass.
        self._arena_compile_cache: Optional[tuple] = None
        #: node_id -> entry, in LRU order (oldest first).
        self._entries: "OrderedDict[int, StoreEntry]" = OrderedDict()
        #: alpha-hash -> node_id.
        self._by_hash: dict[int, int] = {}
        #: node_id -> pin count; pinned classes are never LRU victims.
        self._pinned: dict[int, int] = {}
        self._next_id = 0
        #: Monotonic intern stamp: +1 per canonical entry ever created
        #: (never reused, never decremented -- evictions leave gaps).
        #: ``delta_to_bytes(store, since)`` ships exactly the live
        #: entries with ``entry.version > since``; replicas track the
        #: primary's counter through snapshots and deltas.
        self.version = 0

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        """Number of live canonical entries."""
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries

    def entry(self, node_id: int) -> StoreEntry:
        """The canonical entry for ``node_id`` (touches LRU recency)."""
        entry = self._entries[node_id]
        self._entries.move_to_end(node_id)
        return entry

    def expr_of(self, node_id: int) -> Expr:
        """Canonical representative tree of the class ``node_id``."""
        return self.entry(node_id).expr

    def hash_of(self, node_id: int) -> int:
        """The alpha-hash keying the class ``node_id``."""
        return self.entry(node_id).hash

    def size_of(self, node_id: int) -> int:
        """Node count of any member of the class ``node_id``."""
        return self.entry(node_id).size

    def lookup_hash(self, hash_value: int) -> Optional[int]:
        """Node id of the class with this alpha-hash, if interned."""
        return self._by_hash.get(hash_value)

    def entries(self) -> Iterator[StoreEntry]:
        """All live entries, least-recently-used first."""
        return iter(list(self._entries.values()))

    # -- pinning ---------------------------------------------------------------

    def pin(self, node_id: int) -> None:
        """Exempt the class ``node_id`` from LRU eviction.

        Pins are counted (a class pinned twice needs two unpins) and
        protect the whole canonical subtree: descendants of a live entry
        already carry a positive refcount, so only roots need pinning.
        Raises ``KeyError`` if the class is not (or no longer) live --
        callers that may race eviction should re-intern first.
        """
        if node_id not in self:
            raise KeyError(node_id)
        self._pinned[node_id] = self._pinned.get(node_id, 0) + 1

    def unpin(self, node_id: int) -> bool:
        """Drop one pin from ``node_id``; ``True`` if a pin was held.

        Forgiving on unknown ids (a crashed session may unpin classes
        that were never successfully pinned)."""
        count = self._pinned.get(node_id)
        if count is None:
            return False
        if count <= 1:
            del self._pinned[node_id]
        else:
            self._pinned[node_id] = count - 1
        return True

    def is_pinned(self, node_id: int) -> bool:
        return node_id in self._pinned

    @property
    def pinned_count(self) -> int:
        """Number of distinct pinned classes."""
        return len(self._pinned)

    def cached_summary(
        self, node: Expr
    ) -> Optional[tuple[int, HashedVarMap, int]]:
        """``(structure_hash, owned varmap copy, top_hash)`` for a subtree
        object this store has hashed before, else ``None``.

        The returned map is an independent copy: callers (the incremental
        hasher's ancestor re-summarise, most notably) may consume it
        destructively.
        """
        rec = self._memo.get(id(node))
        if rec is None:
            return None
        return rec.s_hash, HashedVarMap(dict(rec.vm_entries), rec.vm_hash), rec.top

    def cached_top(self, node: Expr) -> Optional[int]:
        """The memoised top-level alpha-hash of ``node``, if any."""
        rec = self._memo.get(id(node))
        return None if rec is None else rec.top

    def clear_memo(self) -> None:
        """Drop the per-object summary memo (canonical entries survive)."""
        self._memo.clear()
        self._arena_root_memo.clear()
        self._arena_compile_cache = None

    def prune_memo(self, roots: Iterable[Expr]) -> int:
        """Drop memo records unreachable from ``roots``; return the count.

        The memo pins every expression object it has summarised, so
        long-running rewrite loops (CSE most notably) call this between
        rounds with the current program as the root: dead spines from
        earlier rounds are released while everything still in the program
        stays warm.  Reachability is closed over children, which
        preserves the record-implies-full-subtree-coverage invariant the
        resume-above-cached-roots optimisation relies on.
        """
        self._arena_compile_cache = None  # pins a corpus; prune drops it
        keep: set[int] = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if id(node) in keep:
                continue
            keep.add(id(node))
            stack.extend(node.children())
        before = len(self._memo) + len(self._arena_root_memo)
        self._memo = {
            key: rec for key, rec in self._memo.items() if key in keep
        }
        self._arena_root_memo = {
            key: rec
            for key, rec in self._arena_root_memo.items()
            if key in keep
        }
        return before - len(self._memo) - len(self._arena_root_memo)

    def resolve_combiners(
        self, combiners: Optional[HashCombiners]
    ) -> HashCombiners:
        """The effective combiner family for a consumer attached to this
        store: the store's own, after checking that any explicitly
        requested family agrees with it (same bits and seed)."""
        if combiners is not None and (
            combiners.bits != self.combiners.bits
            or combiners.seed != self.combiners.seed
        ):
            raise ValueError(
                "combiners disagree with the attached store's family"
            )
        return self.combiners

    # -- hashing (memoised) ----------------------------------------------------

    def hash_expr(self, expr: Expr) -> int:
        """The root alpha-hash of ``expr``, reusing every cached subtree."""
        top = self._hash_tree(expr).top
        self._maybe_flush_memo()
        return top

    def hash_corpus(self, exprs: Iterable[Expr], engine: str = "auto") -> list[int]:
        """Batch :meth:`hash_expr`; repeated/overlapping trees hash once.

        ``engine`` picks the batch strategy: ``"tree"`` walks each item
        through the memoised summariser; ``"arena"`` compiles the corpus
        into a post-order array arena and runs the array kernel
        (bit-identical hashes, no per-node memo warming -- see
        :mod:`repro.store.arena_intern`), with ``"arena-vec"`` /
        ``"arena-scalar"`` forcing the vectorized or scalar kernel;
        ``"auto"`` (default) takes the arena above the planner's one
        threshold constant (:data:`repro.api.plan.ARENA_NODE_THRESHOLD`,
        resolved through :func:`repro.core.arena.plan_corpus_engine`).
        """
        corpus = exprs if isinstance(exprs, list) else list(exprs)
        planned = plan_corpus_engine(engine, corpus) if corpus else engine
        if corpus and engine_family(planned) == "arena":
            from repro.store.arena_intern import hash_corpus_arena

            return hash_corpus_arena(self, corpus, kernel=engine_kernel(planned))
        return [self.hash_expr(e) for e in corpus]

    def hashes(self, expr: Expr) -> AlphaHashes:
        """An :class:`AlphaHashes` view over ``expr`` computed through the
        memo -- a drop-in replacement for
        :func:`repro.core.hashed.alpha_hash_all` for equivalence-class
        clients that rehash overlapping trees repeatedly."""
        self._hash_tree(expr)
        memo = self._memo
        by_id: dict[int, int] = {}
        for node in preorder(expr):
            rec = memo.get(id(node))
            if rec is None:  # pragma: no cover - coverage-invariant breach
                # Defensive: never hand out a partial view.
                from repro.core.hashed import alpha_hash_all

                return alpha_hash_all(expr, self.combiners)
            by_id[id(node)] = rec.top
        self._maybe_flush_memo()
        return AlphaHashes(expr, self.combiners, by_id)

    def _hash_tree(self, expr: Expr) -> _MemoRecord:
        """Summarise ``expr`` bottom-up, skipping memoised subtrees.

        Delegates to the shared :func:`repro.core.kernel.summarise_tree`
        loop (the same one :func:`repro.core.hashed.alpha_hash_all`
        runs, so hashes agree bit-for-bit) with the memo hooks enabled:
        the walk (a) resumes from cached summaries and (b) snapshots
        every node's map into the memo -- the same one-copy-per-node
        cost the Section 6.3 incremental hasher pays, bought back many
        times over on corpus reuse.
        """
        memo = self._memo
        root = memo.get(id(expr))
        if root is not None:
            self.stats.memo_hits += 1
            self.stats.memo_skipped_nodes += expr.size
            return root

        summarise_tree(
            expr,
            self.combiners,
            here=self._here,
            svar=self._svar,
            var_entry_cache=self._var_entry_cache,
            lit_cache=self._lit_cache,
            memo=memo,
            store_stats=self.stats,
        )
        return memo[id(expr)]

    def _maybe_flush_memo(self) -> None:
        """Wholesale memo flush at public-operation boundaries.

        Never called mid-operation: :meth:`intern` reads every node's
        record right after hashing.  The memo is a pure cache, so losing
        warmth is the only cost of a flush.
        """
        if self.memo_limit is not None:
            if len(self._memo) > self.memo_limit:
                self._memo.clear()
            if len(self._arena_root_memo) > self.memo_limit:
                self._arena_root_memo.clear()
            # The compile cache pins a whole corpus: a memo-bounded
            # store gives up the hash->intern reuse to keep its
            # memory contract.
            self._arena_compile_cache = None

    # -- persistence -----------------------------------------------------------

    def save(self, path: str, meta: Optional[dict] = None) -> None:
        """Snapshot this store to ``path`` (intern table + summary memo).

        See :mod:`repro.store.snapshot` for the versioned, checksummed
        JSON-lines format; ``meta`` rides along in the header.
        """
        from repro.store.snapshot import write_snapshot

        write_snapshot(self, path, meta)

    @classmethod
    def load(cls, path: str) -> "ExprStore":
        """Rebuild a store saved with :meth:`save` (fully warm)."""
        from repro.store.snapshot import read_snapshot

        store, _header = read_snapshot(path)
        return store

    # -- interning -------------------------------------------------------------

    def intern(self, expr: Expr) -> int:
        """Intern ``expr``, returning the node id of its class.

        Every subexpression of ``expr`` is interned along the way; two
        alpha-equivalent subtrees (within one call or across calls) map
        to the same id.
        """
        self._hash_tree(expr)
        memo = self._memo
        ids: list[int] = []
        stack: list[tuple[Expr, bool]] = [(expr, False)]
        while stack:
            node, visited = stack.pop()
            rec = memo[id(node)]
            if not visited:
                if rec.node_id is not None and rec.node_id in self._entries:
                    self._entries.move_to_end(rec.node_id)
                    self.stats.hits += 1
                    ids.append(rec.node_id)
                    continue
                stack.append((node, True))
                for child in reversed(node.children()):
                    stack.append((child, False))
                continue

            arity = len(node.children())
            kid_ids = tuple(ids[len(ids) - arity :]) if arity else ()
            if arity:
                del ids[len(ids) - arity :]
            rec.node_id = self._intern_one(node, rec, kid_ids)
            ids.append(rec.node_id)
        assert len(ids) == 1
        # Evict only once the whole tree is interned: children created
        # moments ago must not vanish before their parent references them.
        self._evict_if_needed(protect=ids[0])
        self._maybe_flush_memo()
        return ids[0]

    #: Whether :meth:`intern_many` may take the arena bulk-intern path.
    #: Subclasses with their own write discipline (the sharded store's
    #: lock striping) opt out and keep the per-item path.
    _arena_intern_ok = True

    def intern_many(self, exprs: Iterable[Expr], engine: str = "auto") -> list[int]:
        """Batch :meth:`intern`: one id per input, duplicates collapse.

        ``engine="arena"`` (or ``"auto"`` above the node threshold)
        compiles the corpus once and resolves every unique subtree class
        against the intern table directly -- same classes, hashes and
        ids as the serial path, with ``hits``/``misses`` counted per
        unique class instead of per occurrence (see
        :mod:`repro.store.arena_intern`).  LRU-bounded stores enforce
        their bound once at the end of the batch (arena child links
        need every class live mid-batch), so the table may transiently
        exceed ``max_entries`` by the batch's unique-class count.
        """
        corpus = exprs if isinstance(exprs, list) else list(exprs)
        planned = plan_corpus_engine(engine, corpus) if corpus else engine
        if (
            corpus
            and self._arena_intern_ok
            and engine_family(planned) == "arena"
        ):
            from repro.store.arena_intern import intern_corpus_arena

            return intern_corpus_arena(self, corpus, kernel=engine_kernel(planned))
        return [self.intern(e) for e in corpus]

    def _intern_one(
        self, node: Expr, rec: _MemoRecord, kid_ids: tuple[int, ...]
    ) -> int:
        existing = self._by_hash.get(rec.top)
        if existing is not None:
            entry = self._entries[existing]
            if entry.kind != node.kind or entry.size != node.size:
                raise StoreCollisionError(
                    f"alpha-hash 0x{rec.top:x} maps both a {entry.kind} of "
                    f"size {entry.size} and a {node.kind} of size {node.size}"
                )
            self._entries.move_to_end(existing)
            self.stats.hits += 1
            return existing

        canonical = self._canonical_expr(node, kid_ids)
        node_id = self._next_id
        self._next_id += 1
        self.version += 1
        entry = StoreEntry(
            node_id=node_id,
            hash=rec.top,
            kind=node.kind,
            size=node.size,
            children=kid_ids,
            expr=canonical,
            version=self.version,
        )
        for kid in kid_ids:
            self._entries[kid].refcount += 1
        self._entries[node_id] = entry
        self._by_hash[rec.top] = node_id
        self.stats.misses += 1
        # The canonical tree is made of canonical subtrees, so hashing it
        # later can be a pure memo hit: seed its summary from this one.
        # Only when the memo still covers every canonical child, though --
        # a record must always imply full-subtree coverage (hashing and
        # interning resume above cached roots without descending), and a
        # flush may have dropped the children's records.
        if id(canonical) not in self._memo and all(
            id(self._entries[kid].expr) in self._memo for kid in kid_ids
        ):
            self._memo[id(canonical)] = _MemoRecord(
                canonical, rec.s_hash, dict(rec.vm_entries), rec.vm_hash, rec.top
            )
            self._memo[id(canonical)].node_id = node_id
        return node_id

    def merge_store(self, other: "ExprStore") -> dict[int, int]:
        """Fold every canonical class of ``other`` into this store.

        Returns the id remapping ``{other_node_id: self_node_id}``.
        Interning the canonical representatives largest-first lets the
        smaller classes resolve as memo/intern hits inside the larger
        trees; hashes are preserved bit-for-bit, ids are re-assigned by
        this store.  ``other`` is not modified.  (The sharded store
        inherits this as-is -- ``self.intern`` is the override point
        that routes every class through its lock-striped shards; the
        parallel intern engine and the service's snapshot-upload
        endpoint both merge worker/client stores through it.)
        """
        self.resolve_combiners(other.combiners)
        mapping: dict[int, int] = {}
        for entry in sorted(
            other.entries(), key=lambda e: e.size, reverse=True
        ):
            mapping[entry.node_id] = self.intern(entry.expr)
        return mapping

    def _get_entry(self, node_id: int) -> StoreEntry:
        """Entry lookup without LRU side effects (overridable storage hook)."""
        return self._entries[node_id]

    def _canonical_expr(self, node: Expr, kid_ids: tuple[int, ...]) -> Expr:
        if isinstance(node, (Var, Lit)):
            return node
        kids = tuple(self._get_entry(kid).expr for kid in kid_ids)
        if isinstance(node, Lam):
            return Lam(node.binder, kids[0])
        if isinstance(node, App):
            return App(kids[0], kids[1])
        assert isinstance(node, Let)
        return Let(node.binder, kids[0], kids[1])

    # -- eviction --------------------------------------------------------------

    def _evict_if_needed(self, protect: Optional[int] = None) -> None:
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            victim = None
            for node_id, entry in self._entries.items():
                if (
                    entry.refcount == 0
                    and node_id != protect
                    and node_id not in self._pinned
                ):
                    victim = node_id
                    break
            if victim is None:
                # Every remaining entry is either the protected fresh root,
                # pinned by a session, or referenced by a live parent; the
                # table cannot shrink further without breaking child links.
                break
            entry = self._entries.pop(victim)
            del self._by_hash[entry.hash]
            for kid in entry.children:
                self._entries[kid].refcount -= 1
            rec = self._memo.get(id(entry.expr))
            if rec is not None:
                rec.node_id = None
            self.stats.evictions += 1
