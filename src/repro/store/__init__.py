"""Hash-consed expression storage built on the paper's alpha-hash.

:class:`ExprStore` interns expressions modulo alpha-equivalence (one
canonical node per class, children stored as node ids) and memoises
hashed e-summaries so repeated and overlapping corpus expressions are
hashed once.  See :mod:`repro.store.store` for the design notes.
"""

from repro.store.snapshot import (
    SNAPSHOT_FORMAT,
    SnapshotError,
    read_snapshot,
    write_snapshot,
)
from repro.store.store import (
    ExprStore,
    StoreCollisionError,
    StoreEntry,
    StoreStats,
)

__all__ = [
    "ExprStore",
    "StoreCollisionError",
    "StoreEntry",
    "StoreStats",
    "SnapshotError",
    "SNAPSHOT_FORMAT",
    "read_snapshot",
    "write_snapshot",
]
