"""Hash-consed expression storage built on the paper's alpha-hash.

:class:`ExprStore` interns expressions modulo alpha-equivalence (one
canonical node per class, children stored as node ids) and memoises
hashed e-summaries so repeated and overlapping corpus expressions are
hashed once.  See :mod:`repro.store.store` for the design notes.
"""

from repro.store.arena_intern import hash_corpus_arena, intern_corpus_arena
from repro.store.parallel import (
    WorkerPool,
    parallel_hash_corpus,
    parallel_intern_corpus,
    resolve_workers,
)
from repro.store.sharded import DEFAULT_NUM_SHARDS, ShardedExprStore
from repro.store.journal import Journal, JournalError
from repro.store.snapshot import (
    DELTA_FORMAT,
    SHARDED_SNAPSHOT_FORMAT,
    SNAPSHOT_FORMAT,
    SnapshotError,
    apply_delta_bytes,
    content_checksum,
    delta_to_bytes,
    read_snapshot,
    snapshot_from_bytes,
    snapshot_to_bytes,
    write_snapshot,
)
from repro.store.store import (
    ExprStore,
    StoreCollisionError,
    StoreEntry,
    StoreStats,
)

__all__ = [
    "ExprStore",
    "ShardedExprStore",
    "DEFAULT_NUM_SHARDS",
    "StoreCollisionError",
    "StoreEntry",
    "StoreStats",
    "SnapshotError",
    "SNAPSHOT_FORMAT",
    "SHARDED_SNAPSHOT_FORMAT",
    "DELTA_FORMAT",
    "read_snapshot",
    "write_snapshot",
    "snapshot_from_bytes",
    "snapshot_to_bytes",
    "delta_to_bytes",
    "apply_delta_bytes",
    "content_checksum",
    "Journal",
    "JournalError",
    "parallel_hash_corpus",
    "parallel_intern_corpus",
    "resolve_workers",
    "WorkerPool",
    "hash_corpus_arena",
    "intern_corpus_arena",
]
