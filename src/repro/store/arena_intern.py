"""Arena-backed fast paths for the expression store (``engine="arena"``).

Two entry points, both invoked from :class:`~repro.store.ExprStore`
when a corpus is large enough for the compile-then-hash trade to win
(:data:`repro.core.arena.ARENA_MIN_NODES`, overridable per call):

* :func:`hash_corpus_arena` -- batch hashing.  Items the store already
  knows (per-object summary memo, or the arena root cache from an
  earlier batch) are answered locally; the rest are compiled into one
  :class:`~repro.core.arena.ExprArena` and hashed by the array kernel.
  Hashes are bit-identical to the tree path; what changes is the cache
  discipline -- the arena path does **not** snapshot a per-object memo
  record for every interior node (that one-dict-copy-per-node cost is
  precisely what it avoids).  Instead each corpus *root* lands in the
  store's arena root cache, so re-hashing the same corpus objects is
  O(1) per item, while ``hash_expr``/``hashes`` on interior subtrees
  falls back to the tree path's memo as before.

* :func:`intern_corpus_arena` -- bulk interning.  The corpus is
  compiled once, hashed once, and then every *unique* arena node is
  resolved against the intern table directly: duplicates never reach
  ``_hash_tree``, and a class interned by an earlier batch costs one
  dict probe.  Canonical entries, hashes, ids and refcounts come out
  exactly as the serial path would produce for the same arrival order;
  the summary memo is left cold (see above), and ``hits``/``misses``
  count unique arena nodes rather than subtree occurrences.  Flat
  stores take a direct-dict hot loop; sharded stores take a
  lock-striped branch (writers are already serialised by the store's
  memo lock, but every table mutation still happens under the owning
  shard's lock so concurrent readers never see a torn table).
  LRU-bounded stores enforce their bound once at the end of the batch
  -- mid-batch eviction could invalidate the arena's child-class
  links -- so the table may transiently exceed ``max_entries``.

Both paths fold their work into ``store.stats`` so delegated hashing
stays visible: ``hashed_nodes`` counts unique arena nodes summarised,
``memo_skipped_nodes`` counts the nodes flatten-dedup avoided.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.arena import (
    OP_APP,
    OP_LAM,
    OP_LET,
    OP_LIT,
    OP_VAR,
    arena_hash_any,
    flatten_corpus,
)
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.store import ExprStore

__all__ = ["hash_corpus_arena", "intern_corpus_arena"]

_KIND_OF_OP = ("Var", "Lit", "Lam", "App", "Let")


def hash_corpus_arena(
    store: Optional["ExprStore"],
    corpus: Sequence[Expr],
    combiners=None,
    fanout=None,
    kernel: str = "auto",
) -> list[int]:
    """Root alpha-hashes of ``corpus`` through the arena kernel.

    ``store`` may be ``None`` (pure function mode: no memo consults, no
    stats; ``combiners`` must then be given).  ``fanout``, when set, is
    ``fanout(arena, unique_roots) -> {root_index: top}`` and replaces
    the local kernel run -- the parallel engine plugs its worker pools
    in here, so serial and parallel share every other line of this
    path.  ``kernel`` picks the vectorized or scalar array kernel
    (``"auto"`` prefers vectorized when NumPy is importable).
    """
    # Sharded stores guard their memo behind an RLock; every touch of
    # root_memo / stats / the flush below happens under it (re-entrant,
    # so arriving via the already-locked ShardedExprStore.hash_corpus
    # is fine).  The flatten and kernel run outside the lock.
    lock = getattr(store, "_memo_lock", None) if store is not None else None
    if lock is None:
        lock = contextlib.nullcontext()
    if store is not None:
        combiners = store.combiners
        root_memo = store._arena_root_memo
        stats = store.stats
    results: list = [None] * len(corpus)
    pending: list[Expr] = []
    pending_at: list[int] = []
    if store is None:
        pending = list(corpus)
        pending_at = list(range(len(corpus)))
    else:
        with lock:
            for index, expr in enumerate(corpus):
                top = store.cached_top(expr)
                if top is None:
                    cached = root_memo.get(id(expr))
                    if cached is not None:
                        top = cached[1]
                if top is None:
                    pending.append(expr)
                    pending_at.append(index)
                else:
                    stats.memo_hits += 1
                    stats.memo_skipped_nodes += expr.size
                    results[index] = top

    if pending:
        arena, roots = flatten_corpus(pending)
        if fanout is None:
            tops = arena_hash_any(arena, combiners, kernel=kernel)
        else:
            tops = fanout(arena, sorted(set(roots)))
        if store is None:
            for root, index in zip(roots, pending_at):
                results[index] = tops[root]
        else:
            with lock:
                unique_nodes = len(arena)
                stats.hashed_nodes += unique_nodes
                walked = sum(expr.size for expr in pending)
                if walked > unique_nodes:
                    stats.memo_skipped_nodes += walked - unique_nodes
                for expr, root, index in zip(pending, roots, pending_at):
                    top = tops[root]
                    root_memo[id(expr)] = (expr, top)
                    results[index] = top
                if (
                    fanout is None
                    and store._arena_intern_ok
                    and store.memo_limit is None
                ):
                    # Serial passes produce per-node tops: stash the
                    # compile so a following bulk intern of the same
                    # corpus reuses it (one-shot; the consumer clears
                    # it).  Fanned-out passes only have root tops, and
                    # stores that cannot take the bulk-intern path
                    # would pin the corpus for nothing.
                    store._arena_compile_cache = (
                        arena,
                        pending,
                        {id(e): r for e, r in zip(pending, roots)},
                        tops,
                    )

    if store is not None:
        with lock:
            store._maybe_flush_memo()
    return results


def intern_corpus_arena(
    store: "ExprStore", corpus: Sequence[Expr], kernel: str = "auto"
) -> list[int]:
    """Intern ``corpus`` via one arena pass (flat or sharded stores)."""
    stats = store.stats
    arena = None
    cached = store._arena_compile_cache
    store._arena_compile_cache = None  # one-shot: consumed or dropped
    if cached is not None:
        c_arena, _pinned, root_by_id, c_tops = cached
        cached_roots = [root_by_id.get(id(expr)) for expr in corpus]
        if all(root is not None for root in cached_roots):
            # The hash pass just compiled this corpus: reuse its arena
            # and per-node tops (counted there -- no stats double-add).
            arena, roots, tops = c_arena, cached_roots, c_tops
    if arena is None:
        arena, roots = flatten_corpus(corpus)
        tops = arena_hash_any(arena, store.combiners, kernel=kernel)
        stats.hashed_nodes += len(arena)
        walked = sum(expr.size for expr in corpus)
        if walked > len(arena):
            stats.memo_skipped_nodes += walked - len(arena)

    op = bytes(arena.op)
    left, right = arena.left.tolist(), arena.right.tolist()
    aux, sizes = arena.aux.tolist(), arena.sizes.tolist()
    names, literals = arena.names, arena.literals

    if getattr(store, "_shards", None) is not None:
        class_id = _resolve_sharded(
            store, op, left, right, aux, sizes, names, literals, tops
        )
    else:
        class_id = _resolve_flat(
            store, op, left, right, aux, sizes, names, literals, tops
        )

    # Bounded stores enforce their LRU bound once per batch: evicting
    # mid-loop could drop a class a later arena row links to as a child.
    # Protect the last root, matching the serial path's final state.
    store._evict_if_needed(protect=class_id[roots[-1]])
    store._maybe_flush_memo()
    return [class_id[root] for root in roots]


def _resolve_flat(
    store: "ExprStore", op, left, right, aux, sizes, names, literals, tops
) -> list[int]:
    """The direct-dict hot loop: one table transaction per unique node."""
    from repro.store.store import StoreCollisionError, StoreEntry

    stats = store.stats
    entries = store._entries
    by_hash = store._by_hash
    class_id = [0] * len(op)

    for i in range(len(op)):
        top = tops[i]
        existing = by_hash.get(top)
        if existing is not None:
            entry = entries[existing]
            kind = _KIND_OF_OP[op[i]]
            if entry.kind != kind or entry.size != sizes[i]:
                raise StoreCollisionError(
                    f"alpha-hash 0x{top:x} maps both a {entry.kind} of "
                    f"size {entry.size} and a {kind} of size {sizes[i]}"
                )
            entries.move_to_end(existing)
            stats.hits += 1
            class_id[i] = existing
            continue

        opc = op[i]
        if opc == OP_VAR:
            canonical: Expr = Var(names[aux[i]])
            kid_ids: tuple[int, ...] = ()
        elif opc == OP_LIT:
            canonical = Lit(literals[aux[i]])
            kid_ids = ()
        elif opc == OP_LAM:
            kid_ids = (class_id[left[i]],)
            canonical = Lam(names[aux[i]], entries[kid_ids[0]].expr)
        elif opc == OP_APP:
            kid_ids = (class_id[left[i]], class_id[right[i]])
            canonical = App(entries[kid_ids[0]].expr, entries[kid_ids[1]].expr)
        else:
            kid_ids = (class_id[left[i]], class_id[right[i]])
            canonical = Let(
                names[aux[i]], entries[kid_ids[0]].expr, entries[kid_ids[1]].expr
            )

        node_id = store._next_id
        store._next_id += 1
        store.version += 1
        entries[node_id] = StoreEntry(
            node_id=node_id,
            hash=top,
            kind=_KIND_OF_OP[opc],
            size=sizes[i],
            children=kid_ids,
            expr=canonical,
            version=store.version,
        )
        for kid in kid_ids:
            entries[kid].refcount += 1
        by_hash[top] = node_id
        stats.misses += 1
        class_id[i] = node_id

    return class_id


def _resolve_sharded(
    store, op, left, right, aux, sizes, names, literals, tops
) -> list[int]:
    """Lock-striped resolve for :class:`~repro.store.ShardedExprStore`.

    The caller (``intern_many``) already holds the store's memo lock,
    so this loop is the only writer; shard locks are still taken for
    every mutation (and only one at a time) so lock-free readers on
    other threads observe the same invariants the serial
    ``_intern_one`` path maintains.  Ids come out of the per-shard
    counters (``local * num_shards + shard``), exactly as serial
    interning would assign them.
    """
    from repro.store.store import StoreCollisionError, StoreEntry

    stats = store.stats
    num_shards = store.num_shards
    get_entry = store._get_entry
    class_id = [0] * len(op)

    for i in range(len(op)):
        top = tops[i]
        shard = store._shard_of_hash(top)
        with shard.lock:
            existing = shard.by_hash.get(top)
            if existing is not None:
                entry = shard.entries[existing]
                kind = _KIND_OF_OP[op[i]]
                if entry.kind != kind or entry.size != sizes[i]:
                    raise StoreCollisionError(
                        f"alpha-hash 0x{top:x} maps both a {entry.kind} of "
                        f"size {entry.size} and a {kind} of size {sizes[i]}"
                    )
                shard.entries.move_to_end(existing)
                shard.stats.hits += 1
                stats.hits += 1
                class_id[i] = existing
                continue

        opc = op[i]
        if opc == OP_VAR:
            canonical: Expr = Var(names[aux[i]])
            kid_ids: tuple[int, ...] = ()
        elif opc == OP_LIT:
            canonical = Lit(literals[aux[i]])
            kid_ids = ()
        elif opc == OP_LAM:
            kid_ids = (class_id[left[i]],)
            canonical = Lam(names[aux[i]], get_entry(kid_ids[0]).expr)
        elif opc == OP_APP:
            kid_ids = (class_id[left[i]], class_id[right[i]])
            canonical = App(get_entry(kid_ids[0]).expr, get_entry(kid_ids[1]).expr)
        else:
            kid_ids = (class_id[left[i]], class_id[right[i]])
            canonical = Let(
                names[aux[i]], get_entry(kid_ids[0]).expr, get_entry(kid_ids[1]).expr
            )

        with shard.lock:
            node_id = shard.next_local * num_shards + shard.index
            shard.next_local += 1
            store.version += 1
            shard.entries[node_id] = StoreEntry(
                node_id=node_id,
                hash=top,
                kind=_KIND_OF_OP[opc],
                size=sizes[i],
                children=kid_ids,
                expr=canonical,
                version=store.version,
            )
            shard.by_hash[top] = node_id
            shard.stats.misses += 1
            stats.misses += 1
        # Child refcounts live in other shards: one lock at a time.
        for kid in kid_ids:
            kid_shard = store._shard_of_id(kid)
            with kid_shard.lock:
                kid_shard.entries[kid].refcount += 1
        class_id[i] = node_id

    return class_id
