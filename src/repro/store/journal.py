"""Write-ahead durability for an :class:`~repro.store.ExprStore`.

A :class:`Journal` is a directory of segment-rotated, checksummed
frames, each frame holding one incremental snapshot delta
(:func:`repro.store.delta_to_bytes`).  A server that appends the delta
of every intern batch *before acknowledging it* can be SIGKILLed at any
instant and recover its exact pre-crash store by replaying the journal
on boot -- the ``repro-store-delta-v1`` version stamps give every frame
a natural, gap-checked position in the store's history.

Directory layout::

    DIR/
      journal-00000001.wal     # frames, oldest segment first
      journal-00000002.wal
      checkpoint.snap          # optional full snapshot covering a prefix

Frame layout (binary, back to back inside a segment)::

    magic    b"RJNL"                      4 bytes
    length   payload byte count           8 bytes big-endian
    digest   sha256(payload)             32 bytes
    payload  delta_to_bytes() document    `length` bytes

Guarantees:

* **Durability before acknowledgement.**  :meth:`Journal.append_delta`
  flushes and ``fsync``\\ s the segment before returning; callers ack
  only after it returns.
* **Torn tails truncate, corruption fails loudly.**  A crash mid-write
  leaves a partial final frame; :meth:`replay` detects it (short read
  or digest mismatch *at the tail of the last segment*), truncates the
  file back to the last good frame and continues.  The same damage
  anywhere else -- a bad digest mid-segment, a torn frame in a
  non-final segment, segments replayed out of order (a version gap) --
  is not a crash artefact and raises :class:`JournalError`.
* **Idempotent replay.**  Frames are deltas, and
  :func:`repro.store.apply_delta_bytes` verifies-and-skips entries the
  store already holds, so duplicated frames and overlapping windows
  re-apply cleanly; replaying an already-recovered journal is a no-op.
* **Bounded disk.**  Segments rotate at ``max_segment_bytes``;
  :meth:`checkpoint` writes a full snapshot (atomic rename) and
  :meth:`gc` drops every segment the snapshot's version already
  covers.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import TYPE_CHECKING, Iterator, Optional

from repro.store.snapshot import (
    SnapshotError,
    apply_delta_bytes,
    delta_to_bytes,
    snapshot_to_bytes,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.store import ExprStore

__all__ = ["Journal", "JournalError", "FRAME_MAGIC"]

FRAME_MAGIC = b"RJNL"
_FRAME_HEADER_BYTES = len(FRAME_MAGIC) + 8 + 32
_SEGMENT_PREFIX = "journal-"
_SEGMENT_SUFFIX = ".wal"
_CHECKPOINT_NAME = "checkpoint.snap"


class JournalError(RuntimeError):
    """A journal directory that cannot be safely recovered or appended."""


def _frame_bytes(payload: bytes) -> bytes:
    return (
        FRAME_MAGIC
        + len(payload).to_bytes(8, "big")
        + hashlib.sha256(payload).digest()
        + payload
    )


def _delta_header(payload: bytes) -> dict:
    """The JSON header line of a delta document, cheaply."""
    newline = payload.find(b"\n")
    head = payload if newline < 0 else payload[:newline]
    try:
        header = json.loads(head)
    except json.JSONDecodeError as exc:
        raise JournalError(f"frame payload has no delta header: {exc}") from None
    if not isinstance(header, dict) or "version" not in header:
        raise JournalError("frame payload is not a snapshot delta document")
    return header


def _fsync_dir(path: str) -> None:
    """Make a rename/create in ``path`` itself durable (POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class Journal:
    """A write-ahead log of snapshot deltas in one directory.

    >>> journal = Journal(dirname)
    >>> journal.replay(store)                 # crash-safe recovery on boot
    >>> ...
    >>> since = journal.version
    >>> store.intern_many(batch)
    >>> journal.append_delta(store)           # durable *before* the ack

    ``fsync=False`` trades durability for test speed (the frames still
    flush to the OS); production callers keep the default.
    """

    def __init__(
        self,
        directory: str,
        *,
        max_segment_bytes: int = 8 * 1024 * 1024,
        fsync: bool = True,
    ):
        if max_segment_bytes < 1:
            raise ValueError(
                f"max_segment_bytes must be >= 1, got {max_segment_bytes}"
            )
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.max_segment_bytes = max_segment_bytes
        self.fsync = fsync
        #: The store version the last appended/replayed frame reached;
        #: `append_delta` defaults its window to ``(version, now]``, so
        #: a failed append self-heals on the next successful one.
        self.version = 0
        self._handle = None
        self._seq = 0
        self._size = 0
        #: Appending to an existing final segment is only safe after
        #: replay() has verified (and possibly truncated) its tail.
        self._tail_verified = False
        self._closed = False
        #: Guards the open-segment state (``_handle``/``_seq``/``_size``)
        #: and segment-file scans.  Appends rotate segments while
        #: :meth:`gc` lists, re-reads and unlinks them, and a service
        #: deliberately runs checkpoint GC *off* the lock that
        #: serializes its appends -- so the journal must not rely on
        #: callers for that mutual exclusion.  The checkpoint body
        #: write itself (the multi-megabyte fsync in
        #: :meth:`write_checkpoint`) stays outside this mutex: it only
        #: touches ``checkpoint.snap``, never the segment state.
        self._mutex = threading.Lock()

    # -- directory layout ------------------------------------------------------

    def _segment_path(self, seq: int) -> str:
        return os.path.join(
            self.directory, f"{_SEGMENT_PREFIX}{seq:08d}{_SEGMENT_SUFFIX}"
        )

    def segments(self) -> list[str]:
        """Existing segment paths, oldest first."""
        names = [
            name
            for name in os.listdir(self.directory)
            if name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)
        ]
        return [os.path.join(self.directory, name) for name in sorted(names)]

    @staticmethod
    def _seq_of(path: str) -> int:
        name = os.path.basename(path)
        return int(name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)])

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.directory, _CHECKPOINT_NAME)

    def load_checkpoint_bytes(self) -> Optional[bytes]:
        """The checkpoint snapshot's bytes, if one has been written."""
        try:
            with open(self.checkpoint_path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    # -- appending -------------------------------------------------------------

    def _open_for_append(self) -> None:
        if self._handle is not None:
            return
        existing = self.segments()
        if not existing:
            self._seq = 1
        elif self._tail_verified:
            self._seq = self._seq_of(existing[-1])
        else:
            # Never append to an unverified tail: a torn final frame
            # followed by a fresh valid frame would read as mid-segment
            # corruption on the next recovery.  A new segment is always
            # safe.
            self._seq = self._seq_of(existing[-1]) + 1
        path = self._segment_path(self._seq)
        self._handle = open(path, "ab")
        self._size = self._handle.tell()
        if self._size == 0:
            _fsync_dir(self.directory)

    def _rotate_if_needed(self) -> None:
        if self._size < self.max_segment_bytes:
            return
        self._handle.close()
        self._seq += 1
        self._handle = open(self._segment_path(self._seq), "ab")
        self._size = self._handle.tell()
        _fsync_dir(self.directory)

    # repro-lint: allow[lock-blocking] reason=fsync-before-ack: callers hold the service lock across the append on purpose; the client ack must not outrun the durable journal write, or a crash acks data that was never persisted
    def append_bytes(self, payload: bytes) -> dict:
        """Append one already-encoded delta document as a frame.

        Durable (flushed + fsync'd) before returning.  Returns the
        delta's header.  Used directly by follower nodes: the delta
        bytes fetched from a primary journal verbatim.
        """
        if self._closed:
            raise JournalError("journal is closed")
        header = _delta_header(payload)
        with self._mutex:
            self._open_for_append()
            self._rotate_if_needed()
            frame = _frame_bytes(payload)
            self._handle.write(frame)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self._size += len(frame)
            self.version = max(self.version, header["version"])
        return header

    def append_delta(self, store: "ExprStore", since: Optional[int] = None):
        """Journal the entries interned after ``since`` (default: the
        last journaled version).  No frame is written for an empty
        window.  Returns the delta header, or ``None`` if nothing new.
        """
        if since is None:
            since = self.version
        if store.version <= since:
            return None
        data = delta_to_bytes(store, since, meta={"journal": True})
        return self.append_bytes(data)

    # -- reading / recovery ----------------------------------------------------

    def _read_frames(
        self, path: str, tolerate_torn_tail: bool
    ) -> tuple[list[bytes], Optional[int]]:
        """All frame payloads of one segment.

        Returns ``(payloads, torn_offset)``: ``torn_offset`` is the
        byte offset of a torn tail to truncate at (only ever non-None
        when ``tolerate_torn_tail``), a crash artefact.  Damage that is
        not a tail -- in the middle of the file, or in a segment that
        is not the journal's last -- raises :class:`JournalError`.
        """
        with open(path, "rb") as handle:
            data = handle.read()
        payloads: list[bytes] = []
        offset = 0
        while offset < len(data):
            torn_reason = None
            head = data[offset : offset + _FRAME_HEADER_BYTES]
            if len(head) < _FRAME_HEADER_BYTES:
                torn_reason = "partial frame header"
            elif not head.startswith(FRAME_MAGIC):
                torn_reason = "bad frame magic"
            else:
                length = int.from_bytes(head[4:12], "big")
                digest = head[12:44]
                start = offset + _FRAME_HEADER_BYTES
                payload = data[start : start + length]
                if len(payload) < length:
                    torn_reason = "frame shorter than its declared length"
                elif hashlib.sha256(payload).digest() != digest:
                    torn_reason = "frame digest mismatch"
            if torn_reason is None:
                payloads.append(payload)
                offset = start + length
                continue
            if tolerate_torn_tail:
                return payloads, offset
            raise JournalError(
                f"corrupt frame in {os.path.basename(path)} at byte "
                f"{offset}: {torn_reason} (not the journal tail, so not "
                "a crash artefact -- refusing to guess)"
            )
        return payloads, None

    def iter_frames(self) -> Iterator[tuple[str, bytes]]:
        """``(segment_path, payload)`` for every intact frame, in order.

        Read-only: torn tails are reported as if already truncated, but
        the files are untouched.
        """
        paths = self.segments()
        for index, path in enumerate(paths):
            payloads, _torn = self._read_frames(
                path, tolerate_torn_tail=index == len(paths) - 1
            )
            for payload in payloads:
                yield path, payload

    def replay(self, store: "ExprStore") -> dict:
        """Recover ``store`` from the journal; returns a report dict.

        Frames whose version the store has already reached are skipped
        wholesale (idempotent); the rest apply through
        :func:`repro.store.apply_delta_bytes`, which is all-or-nothing
        per frame and validates the version chain -- a gap (a missing
        or reordered segment) fails loudly as :class:`SnapshotError`
        rather than silently skipping history.  A torn final frame in
        the final segment is truncated away first.
        """
        report = {
            "segments": 0,
            "frames": 0,
            "applied": 0,
            "skipped_entries": 0,
            "skipped_frames": 0,
            "truncated_bytes": 0,
            "version": store.version,
        }
        paths = self.segments()
        last_seq = None
        for index, path in enumerate(paths):
            seq = self._seq_of(path)
            if last_seq is not None and seq != last_seq + 1:
                raise JournalError(
                    f"segment sequence gap: {last_seq:08d} is followed by "
                    f"{seq:08d} (missing or misnamed segment)"
                )
            last_seq = seq
            report["segments"] += 1
            payloads, torn_offset = self._read_frames(
                path, tolerate_torn_tail=index == len(paths) - 1
            )
            if torn_offset is not None:
                size = os.path.getsize(path)
                with open(path, "r+b") as handle:
                    handle.truncate(torn_offset)
                    handle.flush()
                    if self.fsync:
                        os.fsync(handle.fileno())
                report["truncated_bytes"] = size - torn_offset
            for payload in payloads:
                report["frames"] += 1
                header = _delta_header(payload)
                if header["version"] <= store.version:
                    report["skipped_frames"] += 1
                    continue
                applied = apply_delta_bytes(store, payload)
                report["applied"] += applied["applied"]
                report["skipped_entries"] += applied["skipped"]
        report["version"] = store.version
        self.version = max(self.version, store.version)
        self._tail_verified = True
        return report

    # -- checkpoint + GC -------------------------------------------------------

    def checkpoint(self, store: "ExprStore", meta: Optional[dict] = None):
        """Write a full snapshot covering the store's history, then GC.

        The snapshot lands atomically (tmp + rename), so a crash during
        the checkpoint leaves the previous one intact; segments fully
        covered by the new snapshot's version are removed.  Returns the
        GC report.

        This is ``encode_checkpoint`` + ``write_checkpoint`` in one
        call; services that serialize store access with a lock should
        use the two halves so only the *encode* (which reads the store)
        runs under the lock, keeping snapshot disk I/O off the hot path.
        """
        data = self.encode_checkpoint(store, meta=meta)
        return self.write_checkpoint(data, store.version)

    def encode_checkpoint(
        self, store: "ExprStore", meta: Optional[dict] = None
    ) -> bytes:
        """Encode a checkpoint snapshot of the store; no disk I/O.

        Safe (and intended) to call while holding whatever lock
        guarantees store consistency.
        """
        meta = dict(meta or {})
        meta.setdefault("journal_checkpoint", True)
        return snapshot_to_bytes(store, meta=meta)

    def write_checkpoint(self, data: bytes, covered_version: int) -> dict:
        """Persist pre-encoded checkpoint bytes atomically, then GC.

        The store is not touched: the bytes and the version they cover
        were fixed by ``encode_checkpoint``, so this may run outside
        the store lock -- a checkpoint is only ever a prefix of the
        fsync'd journal, so a concurrent intern landing between encode
        and write is replayed from the surviving segments on recovery.
        """
        tmp = self.checkpoint_path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.checkpoint_path)
        _fsync_dir(self.directory)
        return self.gc(covered_version)

    def _segment_last_version(self, path: str, is_last: bool) -> Optional[int]:
        payloads, _torn = self._read_frames(path, tolerate_torn_tail=is_last)
        if not payloads:
            return None
        return _delta_header(payloads[-1])["version"]

    # repro-lint: allow[lock-blocking] reason=the segment scan and unlink must not interleave with append-side rotation; the mutex covers one directory fsync, never the checkpoint body write
    def gc(self, covered_version: int) -> dict:
        """Remove segments whose every frame is ``<= covered_version``.

        The open (current) segment is never removed.  Returns
        ``{"removed": [paths], "kept": N}``.  Runs under the journal
        mutex: a concurrent append may be rotating segments, and the
        open-segment guard and last-version reads below must see a
        settled layout.
        """
        with self._mutex:
            removed = []
            paths = self.segments()
            for index, path in enumerate(paths):
                if self._handle is not None and self._seq_of(path) == self._seq:
                    break
                last = self._segment_last_version(
                    path, is_last=index == len(paths) - 1
                )
                if last is not None and last > covered_version:
                    break
                removed.append(path)
            for path in removed:
                os.remove(path)
            if removed:
                _fsync_dir(self.directory)
            return {"removed": removed, "kept": len(paths) - len(removed)}

    # -- lifecycle -------------------------------------------------------------

    # repro-lint: allow[lock-blocking] reason=final flush+fsync at shutdown; holds the journal mutex so a late checkpoint GC cannot observe the handle mid-close
    def close(self) -> None:
        with self._mutex:
            if self._handle is not None:
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
                self._handle.close()
                self._handle = None
            self._closed = True

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Journal({self.directory!r}, version={self.version}, "
            f"segments={len(self.segments())})"
        )
