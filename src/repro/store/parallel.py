"""Parallel corpus hashing: fan a corpus out over worker pools.

The corpus workload is embarrassingly parallel -- each expression's
alpha-hash is a pure function of the tree and the combiner family -- so
:func:`parallel_hash_corpus` splits a corpus into deterministic chunks,
hashes every chunk in a worker (process or thread), and reassembles the
results by input position.  The result is **bit-identical** to the
serial path: same combiners, same per-expression hash, same order.

Engine design notes
-------------------

* **Deduplication first.**  Corpora produced by rewrite pipelines repeat
  items *by object identity*; the serial store path absorbs those via
  its summary memo.  Workers do not share a memo, so the parent
  deduplicates by ``id()`` up front and only unique objects are fanned
  out; duplicates are filled in from the first occurrence's result.

* **Fork, not pickle.**  On platforms with ``fork`` (Linux), the corpus
  is published in a module-level global before the pool starts and the
  workers inherit it through the forked address space: the tasks on the
  wire are index ranges (two ints) and the results are flat hash lists.
  Expression trees are never pickled, so arbitrarily deep corpora
  (pickling recurses; see ``tests/test_degenerate.py``) parallelise
  fine and the per-task IPC cost stays O(1).

* **Spawn fallback.**  Without ``fork``, chunks are pickled with a
  recursion-limit guard scaled to the chunk's known maximum depth
  (``Expr.depth`` is O(1)); beyond ``MAX_PICKLE_DEPTH`` the engine
  refuses loudly rather than risk a C-stack overflow.

* **Deterministic chunking.**  Chunk boundaries depend only on the
  number of unique expressions and the worker count -- never on timing
  -- and results are placed by index, so the output permutation-merges
  identically on every run.

* **Store cooperation.**  When the caller owns a store, its memoised
  top-level hashes are consulted before fanning out (a warm corpus
  never leaves the parent), and worker-side hashing counters are folded
  back into the store's stats so the work done on the corpus' behalf
  stays visible.  Worker *intern tables* can also be merged back -- see
  :func:`parallel_intern_corpus` -- via the snapshot wire format, which
  serialises iteratively (deep trees survive) and arrives as real
  canonical classes in the parent.

* **Arena chunks (PR 4).**  With ``engine="arena"`` (the default above
  the node threshold) the parent compiles the corpus into one
  :class:`~repro.core.arena.ExprArena` and fans out *index ranges over
  the unique roots*; each worker hashes the downward closure of its
  roots with the array kernel.  Arenas are a handful of flat arrays, so
  they pickle iteratively and cheaply -- which lifts the fork-only
  restriction: ``mode="spawn"`` ships the arena over the wire with no
  depth limit, and a long-lived :class:`WorkerPool` can be reused
  across calls because nothing depends on fork-time globals.

* **Persistent pools.**  :class:`WorkerPool` is a session-owned
  long-lived pool (process or thread) that amortises the per-call
  fork/spawn cost across many ``hash_corpus`` batches; data reaches the
  workers through task payloads, never through fork-inherited globals.
  The tree engine's fork fast path still wants a fresh pool per call
  (workers inherit the corpus at fork time) and ignores a supplied
  pool.

Threads vs processes: CPython's GIL serialises the pure-Python hashing
loops, so ``mode="thread"`` exists for API symmetry, free-threaded
builds and latency-hiding around I/O; CPU-bound corpus hashing wants
a process mode (``"process"`` = fork where available else spawn, or
explicitly ``"fork"`` / ``"spawn"``).
"""

from __future__ import annotations

import sys
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, Optional, Sequence

from repro.core.arena import (
    ArenaMemo,
    ExprArena,
    arena_hash_any,
    engine_family,
    engine_kernel,
    plan_corpus_engine,
    resolve_kernel,
)
from repro.core.combiners import HashCombiners, default_combiners
from repro.core.cpus import available_cpus
from repro.lang.expr import Expr
from repro.store.store import ExprStore

__all__ = [
    "parallel_hash_corpus",
    "parallel_intern_corpus",
    "resolve_workers",
    "WorkerPool",
    "MAX_PICKLE_DEPTH",
    "PARALLEL_MODES",
]

#: Accepted ``mode`` values: ``"process"`` picks fork when the platform
#: has it (falling back to spawn), ``"fork"`` / ``"spawn"`` force one
#: start method, ``"thread"`` uses an in-process pool.
PARALLEL_MODES = ("process", "fork", "spawn", "thread")

#: Spawn-mode ceiling on expression depth: pickling recurses roughly
#: once per level, and recursion limits far beyond this risk exhausting
#: the C stack instead of raising cleanly.  Fork mode has no such limit.
MAX_PICKLE_DEPTH = 20_000

_HASH_COUNTERS = ("memo_hits", "hashed_nodes", "memo_skipped_nodes")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` request: ``None``/``0`` means one worker
    per *available* CPU (affinity/cgroup aware -- see
    :func:`repro.core.cpus.available_cpus`); negatives are rejected."""
    if workers is None or workers == 0:
        return available_cpus()
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _chunk_ranges(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into up to ``n_chunks`` near-even spans.

    Purely arithmetic -- the same inputs always produce the same spans,
    which is half of the engine's determinism guarantee (the other half
    is placing results by index).
    """
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    ranges = []
    start = 0
    for i in range(n_chunks):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def _hash_span(
    exprs: Sequence[Expr], combiners: HashCombiners
) -> tuple[list[int], dict[str, int]]:
    """Hash ``exprs`` through a fresh local store; return (hashes, stats).

    The local store gives the span the same intra-chunk subtree reuse
    the serial path enjoys; its hashing counters ride back so the parent
    can account for the delegated work.
    """
    local = ExprStore(combiners)
    hashes = [local.hash_expr(expr) for expr in exprs]
    counters = {name: getattr(local.stats, name) for name in _HASH_COUNTERS}
    return hashes, counters


# -- fork-mode worker state ---------------------------------------------------
#
# Published by the parent immediately before the pool is created and
# inherited by the forked children; cleared afterwards.  The tasks on
# the wire are (start, stop) index pairs only.  _FORK_PUBLISH_LOCK makes
# concurrent parallel_* calls (several threads, or the ROADMAP's async
# sessions) safe: without it, caller B could overwrite the globals
# between caller A's publish and fork, handing A's workers B's corpus.
# Holding it for the pool's lifetime serialises process-mode calls,
# which compete for the same CPUs anyway.

_FORK_PUBLISH_LOCK = threading.Lock()
_FORK_EXPRS: Optional[Sequence[Expr]] = None  # guarded-by: _FORK_PUBLISH_LOCK
_FORK_ARENA: Optional[ExprArena] = None  # guarded-by: _FORK_PUBLISH_LOCK
_FORK_AROOTS: Optional[list] = None  # guarded-by: _FORK_PUBLISH_LOCK
_FORK_BITS = 64  # guarded-by: _FORK_PUBLISH_LOCK
_FORK_SEED: Optional[int] = None  # guarded-by: _FORK_PUBLISH_LOCK
_FORK_KERNEL = "scalar"  # guarded-by: _FORK_PUBLISH_LOCK


def _fork_hash_range(span: tuple[int, int]) -> tuple[list[int], dict[str, int]]:
    start, stop = span
    assert _FORK_EXPRS is not None, "fork worker started without a corpus"
    combiners = HashCombiners(bits=_FORK_BITS, seed=_FORK_SEED)
    return _hash_span(_FORK_EXPRS[start:stop], combiners)


def _fork_intern_range(span: tuple[int, int]) -> tuple[list[int], bytes]:
    from repro.store.snapshot import snapshot_to_bytes

    start, stop = span
    assert _FORK_EXPRS is not None, "fork worker started without a corpus"
    combiners = HashCombiners(bits=_FORK_BITS, seed=_FORK_SEED)
    local = ExprStore(combiners)
    roots = [local.hash_expr(expr) for expr in _FORK_EXPRS[start:stop]]
    local.intern_many(_FORK_EXPRS[start:stop])
    return roots, snapshot_to_bytes(local)


def _fork_arena_range(span: tuple[int, int]) -> list[int]:
    start, stop = span
    assert _FORK_ARENA is not None, "fork worker started without an arena"
    roots = _FORK_AROOTS[start:stop]
    combiners = HashCombiners(bits=_FORK_BITS, seed=_FORK_SEED)
    tops = arena_hash_any(
        _FORK_ARENA, combiners, only=roots, kernel=_FORK_KERNEL
    )
    return [tops[r] for r in roots]


def _shm_arena_tops(payload) -> list[int]:
    """Spawn / persistent-pool task: attach the shared-memory arena.

    The payload carries only an attach recipe (segment name + leaf
    tables) and the chunk's roots; the columns themselves are mapped
    zero-copy from the parent's segment, replacing the per-task arena
    pickle that used to cost O(arena bytes x tasks).  Works under any
    start method and at any expression depth.
    """
    from repro.core.arena_shm import attach_arena_cached

    meta, roots, bits, seed, kernel = payload
    arena = attach_arena_cached(meta)
    tops = arena_hash_any(
        arena, HashCombiners(bits=bits, seed=seed), only=roots, kernel=kernel
    )
    return [tops[r] for r in roots]


def _spawn_hash_chunk(
    payload: tuple[list[Expr], int, int],
) -> tuple[list[int], dict[str, int]]:
    exprs, bits, seed = payload
    return _hash_span(exprs, HashCombiners(bits=bits, seed=seed))


class _DeepPickleGuard:
    """Temporarily raise the recursion limit for spawn-mode pickling.

    Pickling an expression recurses roughly once per tree level; this
    guard sizes the limit from the chunk's known maximum ``depth``
    (maintained O(1) on every node) with headroom, and restores the old
    limit on exit.  Depths beyond :data:`MAX_PICKLE_DEPTH` are refused
    loudly -- raising the limit further trades a clean error for a
    possible C-stack overflow.  Fork mode never pickles trees and has no
    depth ceiling.
    """

    def __init__(self, max_depth: int):
        if max_depth > MAX_PICKLE_DEPTH:
            raise ValueError(
                f"corpus depth {max_depth} exceeds MAX_PICKLE_DEPTH "
                f"({MAX_PICKLE_DEPTH}) for spawn-mode workers; use fork "
                "mode (Linux default) or hash serially"
            )
        self._target = max(sys.getrecursionlimit(), 4 * max_depth + 1000)
        self._saved: Optional[int] = None

    def __enter__(self):
        self._saved = sys.getrecursionlimit()
        sys.setrecursionlimit(self._target)
        return self

    def __exit__(self, *exc_info):
        assert self._saved is not None
        sys.setrecursionlimit(self._saved)
        return False


def _dedup(exprs: Sequence[Expr]) -> tuple[list[Expr], list[int]]:
    """Unique expression objects plus each input's index into them."""
    uniq: list[Expr] = []
    first_seen: dict[int, int] = {}
    positions: list[int] = []
    for expr in exprs:
        key = id(expr)
        slot = first_seen.get(key)
        if slot is None:
            slot = len(uniq)
            first_seen[key] = slot
            uniq.append(expr)
        positions.append(slot)
    return uniq, positions


def _fold_counters(store: ExprStore, counters: dict[str, int]) -> None:
    for name in _HASH_COUNTERS:
        setattr(
            store.stats, name, getattr(store.stats, name) + counters.get(name, 0)
        )


def parallel_hash_corpus(
    exprs: Iterable[Expr],
    combiners: Optional[HashCombiners] = None,
    workers: Optional[int] = None,
    mode: str = "process",
    store: Optional[ExprStore] = None,
    chunks_per_worker: int = 4,
    engine: str = "auto",
    pool: Optional[WorkerPool] = None,
) -> list[int]:
    """Root alpha-hashes of a corpus, computed by a worker pool.

    Bit-identical to hashing the same corpus serially with the same
    ``combiners`` (hashing is a pure function; results are reassembled
    by input position).  See the module docstring for the engine design.

    Parameters
    ----------
    exprs:
        The corpus.  Materialised once; order defines the output order.
    combiners:
        Combiner family; taken from ``store`` when one is given,
        defaulting to the shared fixed-seed family.
    workers:
        Pool size; ``None``/``0`` means one per CPU.  ``1`` short-cuts
        to the serial path (through ``store`` when given).
    mode:
        ``"process"`` (CPU-bound default) or ``"thread"``.
    store:
        Optional parent-side store: already-memoised expressions are
        answered locally, and worker hashing counters are folded into
        ``store.stats`` afterwards.
    chunks_per_worker:
        Fan-out granularity (more chunks -> better balance, more IPC).
    engine:
        ``"tree"`` fans out expression chunks (the PR-3 engine);
        ``"arena"`` compiles the corpus once and fans out root-index
        ranges over the arena (shipped zero-copy through shared memory
        under any start method); ``"arena-vec"`` / ``"arena-scalar"``
        additionally pin the arena kernel; ``"auto"`` picks the arena
        above the node threshold.
    pool:
        An optional long-lived :class:`WorkerPool` to run on (its mode
        overrides ``mode``).  Only the arena engine and thread mode can
        use it -- the tree engine's fork path needs a fresh pool whose
        workers inherit the published corpus, and ignores ``pool``.
    """
    corpus = list(exprs)
    if pool is not None:
        mode = pool.mode
    if mode not in PARALLEL_MODES:
        raise ValueError(f"mode must be one of {PARALLEL_MODES}, got {mode!r}")
    n_workers = resolve_workers(workers)
    if store is not None:
        combiners = store.resolve_combiners(combiners)
    elif combiners is None:
        combiners = default_combiners()

    if n_workers <= 1 or len(corpus) <= 1:
        if store is not None:
            return store.hash_corpus(corpus, engine=engine)
        return ExprStore(combiners).hash_corpus(corpus, engine=engine)

    # One shared auto decision point (the planner's threshold constant).
    engine = plan_corpus_engine(engine, corpus)
    if engine_family(engine) == "arena":
        return _parallel_hash_arena(
            corpus,
            combiners,
            n_workers,
            mode,
            store,
            chunks_per_worker,
            pool,
            kernel=resolve_kernel(engine_kernel(engine)),
        )

    uniq, positions = _dedup(corpus)

    # Answer what the parent store already knows; fan out only the rest.
    uniq_results: list[Optional[int]] = [None] * len(uniq)
    pending: list[int] = []
    if store is not None:
        for index, expr in enumerate(uniq):
            cached = store.cached_top(expr)
            if cached is None:
                pending.append(index)
            else:
                uniq_results[index] = cached
    else:
        pending = list(range(len(uniq)))

    if pending:
        todo = [uniq[i] for i in pending]
        spans = _chunk_ranges(len(todo), n_workers * chunks_per_worker)
        if mode == "thread":
            chunk_results = _run_thread_chunks(todo, spans, combiners, n_workers)
        else:
            chunk_results = _run_process_chunks(
                todo, spans, combiners, n_workers, mode
            )
        cursor = 0
        for hashes, counters in chunk_results:
            for value in hashes:
                uniq_results[pending[cursor]] = value
                cursor += 1
            if store is not None:
                _fold_counters(store, counters)
        assert cursor == len(pending)

    assert all(value is not None for value in uniq_results)
    return [uniq_results[slot] for slot in positions]  # type: ignore[misc]


def _parallel_hash_arena(
    corpus, combiners, n_workers, mode, store, chunks_per_worker, pool,
    kernel="scalar",
):
    """Arena engine: compile once in the parent, fan out root spans.

    Workers hash the downward closure of their roots; thread mode
    shares an :class:`~repro.core.arena.ArenaMemo` across chunks (merge
    at batch boundaries), so overlapping closures are summarised once
    per batch instead of once per chunk.  Process modes attach the
    arena's columns from one shared-memory segment (zero-copy; the
    segment is unlinked in a ``finally`` even when a worker dies
    mid-batch), except the poolless fork path, where the forked address
    space is already zero-copy.  Results are keyed by arena root index,
    which the shared
    :func:`~repro.store.arena_intern.hash_corpus_arena` epilogue maps
    back to corpus positions (bit-identical to serial by construction).
    """
    from repro.store.arena_intern import hash_corpus_arena

    def fanout(arena, uroots):
        global _FORK_ARENA, _FORK_AROOTS, _FORK_BITS, _FORK_SEED, _FORK_KERNEL
        context = has_fork = None
        if mode != "thread" and pool is None:
            context, has_fork = _context_for(mode)
        # Shared memory (or the forked address space) makes per-task
        # shipping cost O(roots), so every mode can afford fine chunks.
        spans = _chunk_ranges(len(uroots), n_workers * chunks_per_worker)
        if len(spans) <= 1:
            tops = arena_hash_any(arena, combiners, kernel=kernel)
            return {root: tops[root] for root in uroots}

        if mode == "thread":
            memo = ArenaMemo(len(arena))

            def run(span):
                start, stop = span
                roots = uroots[start:stop]
                tops = arena_hash_any(
                    arena,
                    HashCombiners(bits=combiners.bits, seed=combiners.seed),
                    only=roots,
                    kernel=kernel,
                    memo=memo,
                )
                return [tops[r] for r in roots]

            if pool is not None:
                span_results = pool.map(run, spans)
            else:
                with ThreadPoolExecutor(
                    max_workers=min(n_workers, len(spans))
                ) as executor:
                    span_results = list(executor.map(run, spans))
        elif pool is not None or not has_fork:
            from repro.core.arena_shm import share_arena

            handle = share_arena(arena)
            try:
                meta = handle.meta()
                payloads = [
                    (meta, uroots[start:stop], combiners.bits,
                     combiners.seed, kernel)
                    for start, stop in spans
                ]
                if pool is not None:
                    span_results = pool.map(_shm_arena_tops, payloads)
                else:
                    n_procs = min(n_workers, len(spans))
                    with context.Pool(processes=n_procs) as procs:
                        span_results = procs.map(_shm_arena_tops, payloads)
            finally:
                # The parent owns the segment: unlink unconditionally,
                # including when a dead worker broke the pool mid-batch.
                handle.close_unlink()
        else:
            n_procs = min(n_workers, len(spans))
            with _FORK_PUBLISH_LOCK:
                _FORK_ARENA = arena
                _FORK_AROOTS = uroots
                _FORK_BITS = combiners.bits
                _FORK_SEED = combiners.seed
                _FORK_KERNEL = kernel
                try:
                    with context.Pool(processes=n_procs) as procs:
                        # repro-lint: allow[lock-blocking] reason=publish-to-fork window; the arena globals must stay pinned for the pool's whole lifetime so late-forking workers inherit them
                        span_results = procs.map(_fork_arena_range, spans)
                finally:
                    _FORK_ARENA = None
                    _FORK_AROOTS = None

        out = {}
        for (start, stop), tops_list in zip(spans, span_results):
            for position, top in zip(range(start, stop), tops_list):
                out[uroots[position]] = top
        return out

    return hash_corpus_arena(store, corpus, combiners=combiners, fanout=fanout)


def _run_thread_chunks(todo, spans, combiners, n_workers):
    """Thread pool: shared memory, per-thread local stores, no pickling.

    The pool is capped at the *requested* worker count -- excess chunks
    queue -- so the caller's concurrency bound holds even though the
    fan-out produces more chunks than workers for balance.
    """
    def run(span):
        start, stop = span
        # A fresh combiner family per task keeps the name-cache dict
        # unshared (same (bits, seed) -> identical hashes).
        return _hash_span(
            todo[start:stop], HashCombiners(bits=combiners.bits, seed=combiners.seed)
        )

    with ThreadPoolExecutor(max_workers=min(n_workers, len(spans))) as pool:
        return list(pool.map(run, spans))


def _pool_context():
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork"), True
    return multiprocessing.get_context("spawn"), False


def _context_for(mode: str):
    """The multiprocessing context for an explicit process ``mode``."""
    import multiprocessing

    if mode == "fork":
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ValueError("mode='fork' is unavailable on this platform")
        return multiprocessing.get_context("fork"), True
    if mode == "spawn":
        return multiprocessing.get_context("spawn"), False
    return _pool_context()


class WorkerPool:
    """A long-lived worker pool reused across ``parallel_*`` calls.

    Owned by a :class:`~repro.api.Session` (or used standalone as a
    context manager); the underlying pool is created lazily on first
    use and survives until :meth:`close`, amortising the per-call
    fork/spawn cost the ROADMAP flagged.  Tasks reach the workers
    through pickled payloads only, so the pool is agnostic to when it
    was created -- which is exactly why the tree engine's
    publish-then-fork fast path cannot use it and ignores it.

    Process mode runs on :class:`concurrent.futures.ProcessPoolExecutor`
    rather than ``multiprocessing.Pool``: a worker that dies mid-batch
    raises :class:`~concurrent.futures.process.BrokenProcessPool` (a
    clean error -- ``Pool.map`` would hang), the broken executor is
    discarded so the *next* call transparently gets a fresh pool, and
    ``concurrent.futures`` drains its workers through an interpreter
    atexit hook, so a never-closed pool (a dropped, un-``close()``\\ d
    Session) cannot leave orphaned children past interpreter exit.  The
    GC finalizer additionally drains the pool as soon as the owner is
    collected.
    """

    def __init__(self, workers: Optional[int] = None, mode: str = "process"):
        if mode not in PARALLEL_MODES:
            raise ValueError(
                f"mode must be one of {PARALLEL_MODES}, got {mode!r}"
            )
        self.workers = resolve_workers(workers)
        self.mode = mode
        self._pool = None
        self._finalizer = None

    def _ensure(self):
        if self._pool is None:
            # The finalizer drains worker processes as soon as an
            # un-closed WorkerPool (e.g. a one-shot Session never
            # close()d) is garbage-collected; close() detaches it and
            # shuts down cleanly instead.  shutdown(wait=False) is safe
            # from a finalizer/atexit context: it signals the workers
            # and lets concurrent.futures' own exit hook join them.
            if self.mode == "thread":
                pool = ThreadPoolExecutor(max_workers=self.workers)
            else:
                from concurrent.futures import ProcessPoolExecutor

                context, _ = _context_for(self.mode)
                pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
            self._finalizer = weakref.finalize(self, pool.shutdown, False)
            self._pool = pool
        return self._pool

    def map(self, fn, payloads) -> list:
        try:
            return list(self._ensure().map(fn, payloads))
        except BrokenProcessPool:
            # A worker died mid-batch.  Drop the broken executor so the
            # next call starts a fresh pool, then let the caller see
            # the error (its finally blocks release shared resources).
            self.close()
            raise

    @property
    def started(self) -> bool:
        return self._pool is not None

    def close(self) -> None:
        pool = self._pool
        self._pool = None
        finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _run_process_chunks(todo, spans, combiners, n_workers, mode="process"):
    global _FORK_EXPRS, _FORK_BITS, _FORK_SEED
    context, has_fork = _context_for(mode)
    n_procs = min(n_workers, len(spans))
    if has_fork:
        with _FORK_PUBLISH_LOCK:
            _FORK_EXPRS = todo
            _FORK_BITS = combiners.bits
            _FORK_SEED = combiners.seed
            try:
                with context.Pool(processes=n_procs) as pool:
                    # repro-lint: allow[lock-blocking] reason=publish-to-fork window; the globals must stay pinned for the pool's whole lifetime so late-forking workers inherit them, and serializing overlapping fan-outs is the lock's entire job
                    return pool.map(_fork_hash_range, spans)
            finally:
                _FORK_EXPRS = None
    max_depth = max(expr.depth for expr in todo)
    with _DeepPickleGuard(max_depth):
        payloads = [
            (todo[start:stop], combiners.bits, combiners.seed)
            for start, stop in spans
        ]
        with context.Pool(processes=n_procs) as pool:
            return pool.map(_spawn_hash_chunk, payloads)


def parallel_intern_corpus(
    exprs: Iterable[Expr],
    store: ExprStore,
    workers: Optional[int] = None,
    chunks_per_worker: int = 2,
) -> list[int]:
    """Intern a corpus through process workers, merging their tables.

    Workers intern contiguous slices into fresh local stores and ship
    them back over the snapshot wire format (iterative -- deep trees
    survive); the parent folds each worker store into ``store`` (a
    :class:`~repro.store.sharded.ShardedExprStore` merges shard-by-
    shard via ``merge_store``; a flat store interns the canonical
    entries directly) and resolves every input to its node id in the
    parent table.  Node *ids* may differ from a serial
    ``store.intern_many`` -- ids encode arrival order -- but the classes
    and their hashes are bit-identical, which is the store's contract.

    Requires ``fork`` (worker results are bytes, but the corpus itself
    is inherited, never pickled); without it, falls back to the serial
    path.  The win over serial interning scales with the corpus'
    duplication factor: workers dedup their slices in parallel and the
    parent only re-interns each *unique* class once.
    """
    from repro.store.snapshot import snapshot_from_bytes

    global _FORK_EXPRS, _FORK_BITS, _FORK_SEED
    corpus = list(exprs)
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(corpus) <= 1:
        return store.intern_many(corpus)
    context, has_fork = _pool_context()
    if not has_fork:
        return store.intern_many(corpus)

    spans = _chunk_ranges(len(corpus), n_workers * chunks_per_worker)
    with _FORK_PUBLISH_LOCK:
        _FORK_EXPRS = corpus
        _FORK_BITS = store.combiners.bits
        _FORK_SEED = store.combiners.seed
        try:
            with context.Pool(processes=min(n_workers, len(spans))) as pool:
                # repro-lint: allow[lock-blocking] reason=publish-to-fork window; the corpus global must stay pinned until every worker has forked, and overlapping corpus-wide interns are meant to serialize here
                results = pool.map(_fork_intern_range, spans)
        finally:
            _FORK_EXPRS = None

    root_hashes: list[int] = []
    for roots, snapshot_bytes in results:
        worker_store, _header = snapshot_from_bytes(snapshot_bytes)
        store.merge_store(worker_store)
        root_hashes.extend(roots)

    # Spans partition the corpus in order, so root_hashes[i] is corpus[i].
    ids = []
    for index, value in enumerate(root_hashes):
        node_id = store.lookup_hash(value)
        if node_id is None:
            # An LRU-bounded parent may have evicted the class during the
            # merge; re-intern the original to restore the contract.
            node_id = store.intern(corpus[index])
        ids.append(node_id)
    return ids
