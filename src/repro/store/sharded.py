"""A lock-striped, sharded expression store for concurrent writers.

:class:`ShardedExprStore` partitions the intern table of
:class:`~repro.store.ExprStore` into ``num_shards`` independent shards,
each guarded by its own lock and keyed by alpha-hash: the class with
alpha-hash ``h`` lives in shard ``h % num_shards``.  Because the
paper's alpha-hashes are uniformly mixed (splitmix64 finalisation),
classes spread evenly across shards without any balancing logic.

Layering:

* **Summary memo** (inherited from :class:`ExprStore`) -- hashing stays
  a store-level concern.  The memo is guarded by a single re-entrant
  lock: summarisation is cheap relative to the table work and the memo
  is keyed by object identity, so striping it would buy nothing under
  the GIL.  (A per-thread memo for free-threaded builds is a recorded
  ROADMAP item.)
* **Intern table** -- lock-striped.  Entry lookup, creation, LRU
  touching and eviction all happen under the owning shard's lock only;
  no operation ever holds two shard locks at once (cross-shard refcount
  updates take the locks one at a time), so there is no lock ordering
  to get wrong and no deadlock.

Node ids encode their shard: a class created as the ``k``-th entry of
shard ``s`` gets id ``k * num_shards + s``, so ``id % num_shards``
recovers the owning shard in O(1) and ids never collide across shards.
Ids therefore differ from a plain :class:`ExprStore` interning the same
corpus -- ids were never stable identifiers across store instances, and
the class *hashes* (the real keys) are bit-identical.

Capacity: ``max_entries`` bounds the whole table; each shard enforces
``ceil(max_entries / num_shards)`` with the same refcount-aware LRU
policy as the flat store.

Shard merging: :meth:`merge_store` folds another store (flat or
sharded -- e.g. one built by a parallel worker process) into this one
by re-interning its canonical entries, returning the id remapping.

Snapshots: :meth:`save` writes the native v2 sharded layout (shard
sections encoded in parallel; node ids, per-shard recency and counters
preserved -- see :mod:`repro.store.snapshot`), and :meth:`load` reads
either that or a flat v1 snapshot, re-sharding the classes in the
latter case.  Flat stores can likewise ingest sharded snapshots
through :func:`~repro.store.snapshot.snapshot_from_bytes` plus
:meth:`ExprStore.merge_store`, so the two layouts interoperate in both
directions.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterator, Optional

from repro.core.combiners import HashCombiners
from repro.store.store import (
    ExprStore,
    StoreCollisionError,
    StoreEntry,
    StoreStats,
)
from repro.lang.expr import Expr

__all__ = ["ShardedExprStore", "DEFAULT_NUM_SHARDS"]

DEFAULT_NUM_SHARDS = 8


class _Shard:
    """One lock-striped slice of the intern table.

    ``entries`` is in LRU order (oldest first) like the flat store's
    table; ``stats`` counts only this shard's intern-layer events
    (hits / misses / evictions -- the hashing-layer counters live on
    the store, which is where hashing happens).
    """

    __slots__ = ("index", "lock", "entries", "by_hash", "stats", "next_local")

    def __init__(self, index: int):
        self.index = index
        self.lock = threading.Lock()
        #: node_id -> entry, LRU order (oldest first).
        self.entries: "OrderedDict[int, StoreEntry]" = OrderedDict()  # guarded-by: lock
        #: alpha-hash -> node_id (hashes owned by this shard only).
        self.by_hash: dict[int, int] = {}  # guarded-by: lock
        self.stats = StoreStats()  # guarded-by: lock
        self.next_local = 0  # guarded-by: lock


class ShardedExprStore(ExprStore):
    """An :class:`ExprStore` whose intern table is lock-striped shards.

    Drop-in for the flat store's public API: hashing, interning,
    entry/expr/hash/size lookups, stats, save/load.  Node *ids* differ
    from a flat store over the same corpus (they encode the shard);
    class hashes are bit-identical.

    Parameters mirror :class:`ExprStore`, plus ``num_shards``.
    ``max_entries`` bounds the whole table (split evenly over shards).
    """

    def __init__(
        self,
        combiners: Optional[HashCombiners] = None,
        num_shards: int = DEFAULT_NUM_SHARDS,
        max_entries: Optional[int] = None,
        memo_limit: Optional[int] = None,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        super().__init__(
            combiners, max_entries=max_entries, memo_limit=memo_limit
        )
        self.num_shards = num_shards
        self._shards = [_Shard(i) for i in range(num_shards)]
        # ceil-split the global bound so the shard bounds sum to >= it
        # (never evicting more aggressively than the flat store would).
        self._per_shard_max = (
            None
            if max_entries is None
            else max(1, -(-max_entries // num_shards))
        )
        #: Guards the summary memo and intern walks (re-entrant so the
        #: public wrappers can nest).  Shard locks nest strictly inside.
        self._memo_lock = threading.RLock()
        # The base class's flat containers are unused; drop them so any
        # code path that still touches them fails loudly instead of
        # silently splitting the table in two.
        del self._entries
        del self._by_hash

    # -- shard routing ---------------------------------------------------------

    def _shard_of_hash(self, hash_value: int) -> _Shard:
        return self._shards[hash_value % self.num_shards]

    def _shard_of_id(self, node_id: int) -> _Shard:
        return self._shards[node_id % self.num_shards]

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._shard_of_id(node_id).entries

    def entry(self, node_id: int) -> StoreEntry:
        shard = self._shard_of_id(node_id)
        with shard.lock:
            entry = shard.entries[node_id]
            shard.entries.move_to_end(node_id)
            return entry

    def _get_entry(self, node_id: int) -> StoreEntry:
        return self._shard_of_id(node_id).entries[node_id]

    def lookup_hash(self, hash_value: int) -> Optional[int]:
        return self._shard_of_hash(hash_value).by_hash.get(hash_value)

    def entries(self) -> Iterator[StoreEntry]:
        """All live entries: shard 0's LRU order, then shard 1's, ...

        (A single global recency order does not exist in a sharded
        table; each shard preserves its own.)
        """
        snapshot: list[StoreEntry] = []
        for shard in self._shards:
            with shard.lock:
                snapshot.extend(shard.entries.values())
        return iter(snapshot)

    def shard_sizes(self) -> list[int]:
        """Live entry count per shard (occupancy balance diagnostics)."""
        return [len(shard.entries) for shard in self._shards]

    def shard_stats(self) -> list[StoreStats]:
        """Per-shard intern-layer counters (hits / misses / evictions).

        Invariant: each counter summed over shards equals the same
        counter on ``self.stats`` -- interning increments both under the
        owning shard's lock.
        """
        return [shard.stats for shard in self._shards]

    # -- hashing (same algorithm, memo under the store lock) -------------------

    def hash_expr(self, expr: Expr) -> int:
        with self._memo_lock:
            return super().hash_expr(expr)

    def hashes(self, expr: Expr):
        with self._memo_lock:
            return super().hashes(expr)

    def hash_corpus(self, exprs, engine: str = "auto") -> list[int]:
        with self._memo_lock:
            return super().hash_corpus(exprs, engine=engine)

    def cached_summary(self, node: Expr):
        with self._memo_lock:
            return super().cached_summary(node)

    def cached_top(self, node: Expr) -> Optional[int]:
        with self._memo_lock:
            return super().cached_top(node)

    def clear_memo(self) -> None:
        with self._memo_lock:
            super().clear_memo()

    def prune_memo(self, roots) -> int:
        with self._memo_lock:
            return super().prune_memo(roots)

    # -- interning -------------------------------------------------------------

    #: The arena bulk-intern path has a lock-striped write branch for
    #: sharded stores (see :func:`repro.store.arena_intern.intern_corpus_arena`);
    #: :meth:`intern_many` wraps the whole batch in the memo lock so the
    #: arena walk sees a consistent memo, exactly like serial interning.
    _arena_intern_ok = True

    def intern_many(self, exprs, engine: str = "auto") -> list[int]:
        with self._memo_lock:
            return super().intern_many(exprs, engine=engine)

    def intern(self, expr: Expr) -> int:
        """Intern ``expr`` (same contract as the flat store).

        The summarisation walk runs under the memo lock; each node's
        table transaction runs under its owning shard's lock only.
        """
        with self._memo_lock:
            self._hash_tree(expr)
            memo = self._memo
            ids: list[int] = []
            stack: list[tuple[Expr, bool]] = [(expr, False)]
            while stack:
                node, visited = stack.pop()
                rec = memo[id(node)]
                if not visited:
                    known = rec.node_id
                    if known is not None and known in self:
                        shard = self._shard_of_id(known)
                        with shard.lock:
                            shard.entries.move_to_end(known)
                            shard.stats.hits += 1
                        self.stats.hits += 1
                        ids.append(known)
                        continue
                    stack.append((node, True))
                    for child in reversed(node.children()):
                        stack.append((child, False))
                    continue

                arity = len(node.children())
                kid_ids = tuple(ids[len(ids) - arity :]) if arity else ()
                if arity:
                    del ids[len(ids) - arity :]
                rec.node_id = self._intern_one(node, rec, kid_ids)
                ids.append(rec.node_id)
            assert len(ids) == 1
            self._evict_if_needed(protect=ids[0])
            self._maybe_flush_memo()
            return ids[0]

    def _intern_one(self, node: Expr, rec, kid_ids: tuple[int, ...]) -> int:
        shard = self._shard_of_hash(rec.top)
        with shard.lock:
            existing = shard.by_hash.get(rec.top)
            if existing is not None:
                entry = shard.entries[existing]
                if entry.kind != node.kind or entry.size != node.size:
                    raise StoreCollisionError(
                        f"alpha-hash 0x{rec.top:x} maps both a {entry.kind} "
                        f"of size {entry.size} and a {node.kind} of size "
                        f"{node.size}"
                    )
                shard.entries.move_to_end(existing)
                shard.stats.hits += 1
                self.stats.hits += 1
                return existing

            canonical = self._canonical_expr(node, kid_ids)
            node_id = shard.next_local * self.num_shards + shard.index
            shard.next_local += 1
            # The store-global version stamp is safe here: every intern
            # walk runs under the store's re-entrant memo lock, so
            # _intern_one calls are serialised across threads.
            self.version += 1
            entry = StoreEntry(
                node_id=node_id,
                hash=rec.top,
                kind=node.kind,
                size=node.size,
                children=kid_ids,
                expr=canonical,
                version=self.version,
            )
            shard.entries[node_id] = entry
            shard.by_hash[rec.top] = node_id
            shard.stats.misses += 1
            self.stats.misses += 1

        # Child refcounts live in other shards: bump them after releasing
        # this shard's lock (one lock at a time, never two).
        for kid in kid_ids:
            kid_shard = self._shard_of_id(kid)
            with kid_shard.lock:
                kid_shard.entries[kid].refcount += 1

        # Seed the canonical tree's memo record, exactly as the flat
        # store does (a record must imply full-subtree coverage).
        if id(canonical) not in self._memo and all(
            id(self._get_entry(kid).expr) in self._memo for kid in kid_ids
        ):
            from repro.store.store import _MemoRecord

            seeded = _MemoRecord(
                canonical, rec.s_hash, dict(rec.vm_entries), rec.vm_hash, rec.top
            )
            seeded.node_id = node_id
            self._memo[id(canonical)] = seeded
        return node_id

    # -- eviction --------------------------------------------------------------

    def _evict_if_needed(self, protect: Optional[int] = None) -> None:
        # Evicting in one shard can unpin children living in shards that
        # were already swept (refcounts cross shards), so sweep rounds
        # repeat until a full round evicts nothing.  Each round ends with
        # every shard at its bound or holding only pinned entries (plus
        # possibly the protected fresh root), matching the flat store's
        # soft-bound semantics.
        if self._per_shard_max is None:
            return
        progressed = True
        while progressed:
            progressed = False
            for shard in self._shards:
                while True:
                    victim_entry = None
                    with shard.lock:
                        if len(shard.entries) <= self._per_shard_max:
                            break
                        for node_id, entry in shard.entries.items():
                            if (
                                entry.refcount == 0
                                and node_id != protect
                                and node_id not in self._pinned
                            ):
                                victim_entry = entry
                                break
                        if victim_entry is None:
                            # Everything left is the protected fresh root
                            # or referenced by a live parent.
                            break
                        shard.entries.pop(victim_entry.node_id)
                        del shard.by_hash[victim_entry.hash]
                        shard.stats.evictions += 1
                        self.stats.evictions += 1
                        progressed = True
                    # Cross-shard refcount decrements outside this
                    # shard's lock (never two shard locks at once).
                    for kid in victim_entry.children:
                        kid_shard = self._shard_of_id(kid)
                        with kid_shard.lock:
                            kid_shard.entries[kid].refcount -= 1
                    rec = self._memo.get(id(victim_entry.expr))
                    if rec is not None:
                        rec.node_id = None

    # -- merging ---------------------------------------------------------------
    #
    # merge_store is inherited from ExprStore: interning the canonical
    # representatives largest-first routes every class through this
    # store's lock-striped shards, which is exactly the override point
    # the base implementation leaves to self.intern().

    # -- persistence -----------------------------------------------------------

    def save(self, path: str, meta: Optional[dict] = None) -> None:
        """Snapshot natively as the v2 sharded layout.

        Shard sections are encoded in parallel and **node ids are
        preserved** across the round-trip (so are per-shard recency and
        counters) -- unlike the PR 3 path, which flattened to the v1
        format and re-assigned ids on load.  See
        :mod:`repro.store.snapshot` for the layout; flat v1 snapshots
        remain loadable via :meth:`load`.
        """
        from repro.store.snapshot import write_snapshot

        write_snapshot(self, path, meta)

    def to_flat_store(self) -> ExprStore:
        """A plain :class:`ExprStore` holding every class of this store.

        Hashing/intern counters are copied over so accounting survives
        the flattening (the flat re-intern itself is bookkeeping and is
        not counted).
        """
        with self._memo_lock:
            flat = ExprStore(
                self.combiners,
                max_entries=self.max_entries,
                memo_limit=self.memo_limit,
            )
            for entry in sorted(
                self.entries(), key=lambda e: e.size, reverse=True
            ):
                flat.intern(entry.expr)
            for name in (
                "hits",
                "misses",
                "memo_hits",
                "hashed_nodes",
                "memo_skipped_nodes",
                "evictions",
            ):
                setattr(flat.stats, name, getattr(self.stats, name))
            return flat

    @classmethod
    def from_flat_store(
        cls, flat: ExprStore, num_shards: int
    ) -> "ShardedExprStore":
        """Re-shard an already-built flat store (e.g. a decoded
        snapshot) without touching ``flat``.

        Accounting starts fresh and consistent: every adopted class is
        one miss of its owning shard, nothing else (per-shard counters
        must always sum to the store totals).
        """
        store = cls(
            flat.combiners,
            num_shards=num_shards,
            max_entries=flat.max_entries,
            memo_limit=flat.memo_limit,
        )
        store.merge_store(flat)
        for shard in store._shards:
            shard.stats.hits = 0
            shard.stats.misses = len(shard.entries)
            shard.stats.evictions = 0
        store.stats = StoreStats(misses=len(store))
        return store

    @classmethod
    def load(
        cls, path: str, num_shards: Optional[int] = None
    ) -> "ShardedExprStore":
        """Rebuild from a :meth:`save` snapshot (either layout).

        A v2 sharded snapshot restores directly -- original node ids,
        per-shard recency and counters intact; a flat v1 snapshot (or a
        v2 one loaded with a different ``num_shards``) re-shards the
        classes, re-assigning ids and starting accounting fresh (see
        :meth:`from_flat_store`)."""
        from repro.store.snapshot import read_snapshot

        store, header = read_snapshot(path)
        if isinstance(store, cls):
            if num_shards is None or num_shards == store.num_shards:
                return store
            return cls.from_flat_store(store.to_flat_store(), num_shards)
        meta = header.get("meta") or {}
        saved = (meta.get("sharded") or {}).get("num_shards")
        return cls.from_flat_store(
            store, num_shards or saved or DEFAULT_NUM_SHARDS
        )
