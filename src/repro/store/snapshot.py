"""Versioned on-disk snapshots of an :class:`~repro.store.ExprStore`.

A snapshot makes a corpus interned once reusable across processes: the
intern table (canonical entries, child links, LRU recency) and the
summary memo of every canonical tree are written to a JSON-lines file
and restored bit-identically.  Re-hashing the same corpus in another
process yields the same root hashes and lands on the existing classes
without growing the store.  Note the memo is keyed by Python object
identity, so freshly *re-parsed* trees are still summarised once before
their intern lookups hit; only the restored canonical representatives
themselves (``expr_of``) hash as pure memo hits.

File layout (one JSON document per line)::

    {"format": "repro-store-snapshot-v1", "bits": 64, "seed": ..,
     "max_entries": null, "memo_limit": null, "next_id": N,
     "entries": K, "stats": {..}, "meta": {..},
     "checksum": "sha256:<hex of the body bytes>"}
    {"i": 0, "h": .., "k": "Var", "z": 1, "c": [], "p": "x",
     "s": .., "v": .., "m": {"x": ..}}
    ... one line per canonical entry, in LRU order (oldest first) ...

Per entry: ``i`` node id, ``h`` alpha-hash, ``k`` kind, ``z`` size,
``c`` child node ids, ``p`` the node payload (variable name, binder, or
``["<tag>", value]`` for literals), and the memoised summary (``s``
structure hash, ``v`` variable-map hash, ``m`` name -> position-hash
entries).  Children always intern before parents, so child ids are
strictly smaller than their parent's and ascending-id order is a valid
rebuild order; the *file* order is LRU order so recency survives the
round-trip.  The header checksum is over the exact body bytes --
truncation or tampering fails loudly as :class:`SnapshotError`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields
from typing import TYPE_CHECKING, Any, Optional

from repro.core.combiners import HashCombiners
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.store import ExprStore

__all__ = [
    "SnapshotError",
    "write_snapshot",
    "read_snapshot",
    "snapshot_to_bytes",
    "snapshot_from_bytes",
    "SNAPSHOT_FORMAT",
]

SNAPSHOT_FORMAT = "repro-store-snapshot-v1"

_LIT_TAGS = {"int": int, "float": float, "bool": bool, "str": str}


class SnapshotError(ValueError):
    """Raised when a snapshot file is malformed, truncated or tampered."""


def _checksum(body: bytes) -> str:
    return "sha256:" + hashlib.sha256(body).hexdigest()


def _lit_payload(value: Any) -> list:
    if isinstance(value, bool):  # bool first: bool subclasses int
        return ["bool", value]
    if isinstance(value, int):
        return ["int", value]
    if isinstance(value, float):
        return ["float", value]
    if isinstance(value, str):
        return ["str", value]
    raise SnapshotError(f"cannot snapshot literal {value!r}")


def _decode_lit(payload: Any) -> Lit:
    if (
        not isinstance(payload, list)
        or len(payload) != 2
        or payload[0] not in _LIT_TAGS
    ):
        raise SnapshotError(f"malformed literal payload {payload!r}")
    tag, value = payload
    expected = _LIT_TAGS[tag]
    if expected is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)  # JSON may render 1.0 as 1
    if not isinstance(value, expected) or (
        expected is int and isinstance(value, bool)
    ):
        raise SnapshotError(f"literal value/tag mismatch {payload!r}")
    return Lit(value)


def snapshot_to_bytes(store: "ExprStore", meta: Optional[dict] = None) -> bytes:
    """Serialise ``store`` to the snapshot wire format, in memory.

    Exactly the bytes :func:`write_snapshot` would put on disk (header
    line + body).  Used by the parallel intern engine to ship worker
    stores back to the parent process without touching the filesystem --
    the JSON-lines encoding is iteration-only, so arbitrarily deep
    expressions serialise without recursion (unlike pickling the trees).

    ``meta`` is an arbitrary JSON-compatible dict stored in the header
    (the Session facade records its backend name there).  The store is
    left observably unchanged: the memo backfill needed to summarise
    entries whose records were flushed alters neither ``store.stats``
    nor the set of memoised objects.
    """
    # Snapshot the user-visible counters and memo keys, then make sure
    # every canonical tree has a memo record to persist (a flush or
    # prune may have dropped some); the backfill is bookkeeping, not
    # workload, so both are restored afterwards.
    counters = {
        f.name: getattr(store.stats, f.name) for f in fields(store.stats)
    }
    memo_keys_before = set(store._memo)
    entries_by_id = {entry.node_id: entry for entry in store.entries()}
    for node_id in sorted(entries_by_id):
        store._hash_tree(entries_by_id[node_id].expr)
    for name, value in counters.items():
        setattr(store.stats, name, value)

    body_lines: list[str] = []
    for entry in store.entries():  # LRU order, oldest first
        rec = store._memo[id(entry.expr)]
        node = entry.expr
        if isinstance(node, Var):
            payload: Any = node.name
        elif isinstance(node, Lit):
            payload = _lit_payload(node.value)
        elif isinstance(node, (Lam, Let)):
            payload = node.binder
        else:
            payload = None
        body_lines.append(
            json.dumps(
                {
                    "i": entry.node_id,
                    "h": entry.hash,
                    "k": entry.kind,
                    "z": entry.size,
                    "c": list(entry.children),
                    "p": payload,
                    "s": rec.s_hash,
                    "v": rec.vm_hash,
                    "m": rec.vm_entries,
                },
                separators=(",", ":"),
                sort_keys=True,
            )
        )
    body = ("".join(line + "\n" for line in body_lines)).encode("utf-8")

    header = {
        "format": SNAPSHOT_FORMAT,
        "bits": store.combiners.bits,
        "seed": store.combiners.seed,
        "max_entries": store.max_entries,
        "memo_limit": store.memo_limit,
        "next_id": store._next_id,
        "entries": len(body_lines),
        "stats": counters,
        "meta": meta or {},
        "checksum": _checksum(body),
    }
    header_bytes = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    # Drop only the records the backfill created; a wholesale
    # _maybe_flush_memo here could wipe records that were legitimately
    # warm (and under the limit) before save() was called.
    for key in list(store._memo):
        if key not in memo_keys_before:
            del store._memo[key]
    return header_bytes + b"\n" + body


def write_snapshot(
    store: "ExprStore", path: str, meta: Optional[dict] = None
) -> None:
    """Write ``store`` to ``path`` (see module docstring for the format).

    A thin file wrapper over :func:`snapshot_to_bytes`.
    """
    data = snapshot_to_bytes(store, meta)
    with open(path, "wb") as handle:
        handle.write(data)


def snapshot_from_bytes(data: bytes) -> tuple["ExprStore", dict]:
    """Rebuild a store from :func:`snapshot_to_bytes` output; return
    ``(store, header)``.

    The restored store matches the saved one bit-identically: intern
    table, LRU recency, memo records of every canonical tree, and the
    saved stats counters all survive.  Hashing a restored canonical
    representative is a pure memo hit; a re-parsed copy of a saved
    expression is summarised once (the memo is per-object) and then
    resolves to its existing class.
    """
    from repro.store.store import ExprStore, StoreEntry, _MemoRecord

    newline = data.find(b"\n")
    if newline < 0:
        header_line, body = data, b""
    else:
        header_line, body = data[:newline], data[newline + 1 :]
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"unreadable snapshot header: {exc}") from None
    if not isinstance(header, dict) or header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"not a {SNAPSHOT_FORMAT} file: {header_line[:80]!r}"
        )
    if header.get("checksum") != _checksum(body):
        raise SnapshotError("snapshot body does not match header checksum")
    missing_fields = [
        key
        for key in ("bits", "seed", "next_id", "entries")
        if key not in header
    ]
    if missing_fields:
        raise SnapshotError(
            f"snapshot header is missing required field(s): {missing_fields}"
        )

    records = []
    for line in body.splitlines():
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"unreadable snapshot entry: {exc}") from None
    if len(records) != header.get("entries"):
        raise SnapshotError(
            f"snapshot holds {len(records)} entries, header says "
            f"{header.get('entries')}"
        )

    store = ExprStore(
        HashCombiners(bits=header["bits"], seed=header["seed"]),
        max_entries=header.get("max_entries"),
        memo_limit=header.get("memo_limit"),
    )

    # Children always have smaller ids than their parents, so ascending
    # id order rebuilds the canonical trees bottom-up.  Schema breaches
    # that slip past the checksum (buggy writer, hand-edited file with a
    # recomputed checksum) must still fail as SnapshotError, not leak a
    # bare KeyError/TypeError from the rebuild.
    exprs: dict[int, Expr] = {}
    try:
        for rec in sorted(records, key=lambda r: r["i"]):
            kind, payload = rec["k"], rec["p"]
            kids = [exprs[c] for c in rec["c"]]
            if kind == "Var":
                node: Expr = Var(payload)
            elif kind == "Lit":
                node = _decode_lit(payload)
            elif kind == "Lam":
                node = Lam(payload, kids[0])
            elif kind == "App":
                node = App(kids[0], kids[1])
            elif kind == "Let":
                node = Let(payload, kids[0], kids[1])
            else:
                raise SnapshotError(f"unknown entry kind {kind!r}")
            exprs[rec["i"]] = node

        # File order is LRU order: inserting in it restores recency.
        for rec in records:
            node_id = rec["i"]
            entry = StoreEntry(
                node_id=node_id,
                hash=rec["h"],
                kind=rec["k"],
                size=rec["z"],
                children=tuple(rec["c"]),
                expr=exprs[node_id],
            )
            store._entries[node_id] = entry
            store._by_hash[entry.hash] = node_id
        for entry in store._entries.values():
            for kid in entry.children:
                store._entries[kid].refcount += 1

        # Warm the memo.  A record must imply full-subtree coverage,
        # which holds here because every canonical child is restored.
        for rec in sorted(records, key=lambda r: r["i"]):
            node = exprs[rec["i"]]
            memo_rec = _MemoRecord(
                node, rec["s"], dict(rec["m"]), rec["v"], rec["h"]
            )
            memo_rec.node_id = rec["i"]
            store._memo[id(node)] = memo_rec
    except SnapshotError:
        raise
    except (KeyError, IndexError, TypeError, AttributeError) as exc:
        raise SnapshotError(
            f"malformed snapshot entry: {exc!r}"
        ) from exc

    store._next_id = header["next_id"]
    saved_stats = header.get("stats", {})
    for f in fields(store.stats):
        if f.name in saved_stats:
            setattr(store.stats, f.name, saved_stats[f.name])
    return store, header


def read_snapshot(path: str) -> tuple["ExprStore", dict]:
    """Rebuild a store saved with :func:`write_snapshot`; return
    ``(store, header)``.  A thin file wrapper over
    :func:`snapshot_from_bytes`."""
    with open(path, "rb") as handle:
        data = handle.read()
    return snapshot_from_bytes(data)
