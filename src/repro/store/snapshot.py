"""Versioned on-disk snapshots of an :class:`~repro.store.ExprStore`.

A snapshot makes a corpus interned once reusable across processes: the
intern table (canonical entries, child links, LRU recency) and the
summary memo of every canonical tree are written to a JSON-lines file
and restored bit-identically.  Re-hashing the same corpus in another
process yields the same root hashes and lands on the existing classes
without growing the store.  Note the memo is keyed by Python object
identity, so freshly *re-parsed* trees are still summarised once before
their intern lookups hit; only the restored canonical representatives
themselves (``expr_of``) hash as pure memo hits.

File layout (one JSON document per line)::

    {"format": "repro-store-snapshot-v1", "bits": 64, "seed": ..,
     "max_entries": null, "memo_limit": null, "next_id": N,
     "entries": K, "stats": {..}, "meta": {..},
     "checksum": "sha256:<hex of the body bytes>"}
    {"i": 0, "h": .., "k": "Var", "z": 1, "c": [], "p": "x",
     "s": .., "v": .., "m": {"x": ..}}
    ... one line per canonical entry, in LRU order (oldest first) ...

Per entry: ``i`` node id, ``h`` alpha-hash, ``k`` kind, ``z`` size,
``c`` child node ids, ``p`` the node payload (variable name, binder, or
``["<tag>", value]`` for literals), and the memoised summary (``s``
structure hash, ``v`` variable-map hash, ``m`` name -> position-hash
entries).  Children always intern before parents, so child ids are
strictly smaller than their parent's and ascending-id order is a valid
rebuild order; the *file* order is LRU order so recency survives the
round-trip.  The header checksum is over the exact body bytes --
truncation or tampering fails loudly as :class:`SnapshotError`.

Sharded layout (v2)
-------------------

A :class:`~repro.store.sharded.ShardedExprStore` snapshots natively as
``repro-store-snapshot-v2-sharded``: the same header-line + JSON-lines
body, but the body is the concatenation of one *section per shard*
(entry schema unchanged, each section in its shard's LRU order) and the
header carries ``num_shards`` plus per-shard metadata::

    {"format": "repro-store-snapshot-v2-sharded", ..., "num_shards": K,
     "shards": [{"entries": N, "next_local": L, "bytes": B,
                 "stats": {..}}, ...], "checksum": "sha256:..."}

Unlike the v1 flatten-and-re-shard path, the v2 layout **preserves
node ids** (shard-encoded: ``id % num_shards`` is the owning shard),
per-shard LRU recency and per-shard counters, and the sections are
encoded/decoded as one independent task per shard on a thread pool
(JSON work holds the GIL on classic builds, where this is mostly
structural; free-threaded builds get real overlap).  Sharded ids are not
ascending parent-over-child, so the rebuild orders records by subtree
*size* -- every child is strictly smaller than its parent, making
ascending size a valid bottom-up order.  Flat v1 snapshots remain
readable (and loadable into sharded stores, re-sharding classes as
before); :func:`snapshot_from_bytes` dispatches on the format tag.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import fields
from typing import TYPE_CHECKING, Any, Optional

from repro.core.combiners import HashCombiners
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.sharded import ShardedExprStore
    from repro.store.store import ExprStore

__all__ = [
    "SnapshotError",
    "write_snapshot",
    "read_snapshot",
    "snapshot_to_bytes",
    "snapshot_from_bytes",
    "SNAPSHOT_FORMAT",
    "SHARDED_SNAPSHOT_FORMAT",
]

SNAPSHOT_FORMAT = "repro-store-snapshot-v1"
SHARDED_SNAPSHOT_FORMAT = "repro-store-snapshot-v2-sharded"

_LIT_TAGS = {"int": int, "float": float, "bool": bool, "str": str}


class SnapshotError(ValueError):
    """Raised when a snapshot file is malformed, truncated or tampered."""


def _checksum(body: bytes) -> str:
    return "sha256:" + hashlib.sha256(body).hexdigest()


def _lit_payload(value: Any) -> list:
    if isinstance(value, bool):  # bool first: bool subclasses int
        return ["bool", value]
    if isinstance(value, int):
        return ["int", value]
    if isinstance(value, float):
        return ["float", value]
    if isinstance(value, str):
        return ["str", value]
    raise SnapshotError(f"cannot snapshot literal {value!r}")


def _decode_lit(payload: Any) -> Lit:
    if (
        not isinstance(payload, list)
        or len(payload) != 2
        or payload[0] not in _LIT_TAGS
    ):
        raise SnapshotError(f"malformed literal payload {payload!r}")
    tag, value = payload
    expected = _LIT_TAGS[tag]
    if expected is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)  # JSON may render 1.0 as 1
    if not isinstance(value, expected) or (
        expected is int and isinstance(value, bool)
    ):
        raise SnapshotError(f"literal value/tag mismatch {payload!r}")
    return Lit(value)


def _node_payload(node: Expr) -> Any:
    """The ``p`` field of one entry record."""
    if isinstance(node, Var):
        return node.name
    if isinstance(node, Lit):
        return _lit_payload(node.value)
    if isinstance(node, (Lam, Let)):
        return node.binder
    return None


def _entry_record(entry, rec) -> dict:
    """One entry + its memoised summary as a plain JSON-ready dict."""
    return {
        "i": entry.node_id,
        "h": entry.hash,
        "k": entry.kind,
        "z": entry.size,
        "c": list(entry.children),
        "p": _node_payload(entry.expr),
        "s": rec.s_hash,
        "v": rec.vm_hash,
        "m": rec.vm_entries,
    }


def _encode_records(records: list[dict]) -> bytes:
    """JSON-lines encode one run of entry records."""
    return (
        "".join(
            json.dumps(rec, separators=(",", ":"), sort_keys=True) + "\n"
            for rec in records
        )
    ).encode("utf-8")


class _MemoBackfill:
    """Backfill memo records for every entry, observably side-effect free.

    A flush or prune may have dropped some canonical trees' summary
    records; persisting needs them all.  On enter the user-visible
    counters and the memo key set are captured and every entry's tree is
    (re)summarised; on exit the counters are restored and only the
    records the backfill created are dropped -- records that were
    legitimately warm before the save stay warm.
    """

    def __init__(self, store: "ExprStore", entries: list):
        self.store = store
        self.entries = entries

    def __enter__(self) -> "_MemoBackfill":
        store = self.store
        self.counters = {
            f.name: getattr(store.stats, f.name) for f in fields(store.stats)
        }
        self.memo_keys_before = set(store._memo)
        for entry in sorted(self.entries, key=lambda e: e.node_id):
            store._hash_tree(entry.expr)
        for name, value in self.counters.items():
            setattr(store.stats, name, value)
        return self

    def __exit__(self, *exc_info) -> None:
        store = self.store
        for key in list(store._memo):
            if key not in self.memo_keys_before:
                del store._memo[key]


def snapshot_to_bytes(store: "ExprStore", meta: Optional[dict] = None) -> bytes:
    """Serialise ``store`` to the snapshot wire format, in memory.

    Exactly the bytes :func:`write_snapshot` would put on disk (header
    line + body).  Used by the parallel intern engine to ship worker
    stores back to the parent process (and by the :mod:`repro.service`
    endpoints to ship stores between machines) without touching the
    filesystem -- the JSON-lines encoding is iteration-only, so
    arbitrarily deep expressions serialise without recursion (unlike
    pickling the trees).

    Dispatches on the store's shape: a
    :class:`~repro.store.sharded.ShardedExprStore` produces the native
    v2 sharded layout (ids preserved, sections encoded in parallel), a
    flat store the v1 layout.  ``meta`` is an arbitrary JSON-compatible
    dict stored in the header (the Session facade records its backend
    name there).  The store is left observably unchanged.
    """
    from repro.store.sharded import ShardedExprStore

    if isinstance(store, ShardedExprStore):
        return _sharded_snapshot_to_bytes(store, meta)
    return _flat_snapshot_to_bytes(store, meta)


def _flat_snapshot_to_bytes(
    store: "ExprStore", meta: Optional[dict] = None
) -> bytes:
    entries = list(store.entries())  # LRU order, oldest first
    with _MemoBackfill(store, entries) as backfill:
        records = [
            _entry_record(entry, store._memo[id(entry.expr)])
            for entry in entries
        ]
    body = _encode_records(records)

    header = {
        "format": SNAPSHOT_FORMAT,
        "bits": store.combiners.bits,
        "seed": store.combiners.seed,
        "max_entries": store.max_entries,
        "memo_limit": store.memo_limit,
        "next_id": store._next_id,
        "entries": len(records),
        "stats": backfill.counters,
        "meta": meta or {},
        "checksum": _checksum(body),
    }
    header_bytes = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return header_bytes + b"\n" + body


def _sharded_snapshot_to_bytes(
    store: "ShardedExprStore", meta: Optional[dict] = None
) -> bytes:
    """The native v2 sharded layout (see module docstring).

    Record extraction runs under the store's locks; section encoding --
    the bulk of the work -- runs as one independent task per shard on a
    thread pool (see the module docstring's GIL caveat).
    """
    from repro.core.cpus import available_cpus

    with store._memo_lock:
        shard_entries: list[list] = []
        for shard in store._shards:
            with shard.lock:
                shard_entries.append(list(shard.entries.values()))
        all_entries = [e for entries in shard_entries for e in entries]
        with _MemoBackfill(store, all_entries) as backfill:
            shard_records = [
                [
                    _entry_record(entry, store._memo[id(entry.expr)])
                    for entry in entries
                ]
                for entries in shard_entries
            ]
        shard_meta = [
            {
                "entries": len(records),
                "next_local": shard.next_local,
                "stats": {
                    f.name: getattr(shard.stats, f.name)
                    for f in fields(shard.stats)
                },
            }
            for shard, records in zip(store._shards, shard_records)
        ]

    # Encoding works on plain dicts -- no store state -- so it can fan
    # out without holding any lock.
    n_tasks = max(1, min(store.num_shards, available_cpus()))
    with ThreadPoolExecutor(max_workers=n_tasks) as pool:
        sections = list(pool.map(_encode_records, shard_records))
    for meta_entry, section in zip(shard_meta, sections):
        meta_entry["bytes"] = len(section)
    body = b"".join(sections)

    header = {
        "format": SHARDED_SNAPSHOT_FORMAT,
        "bits": store.combiners.bits,
        "seed": store.combiners.seed,
        "max_entries": store.max_entries,
        "memo_limit": store.memo_limit,
        "num_shards": store.num_shards,
        "entries": sum(m["entries"] for m in shard_meta),
        "shards": shard_meta,
        "stats": backfill.counters,
        "meta": meta or {},
        "checksum": _checksum(body),
    }
    header_bytes = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return header_bytes + b"\n" + body


def write_snapshot(
    store: "ExprStore", path: str, meta: Optional[dict] = None
) -> None:
    """Write ``store`` to ``path`` (see module docstring for the format).

    A thin file wrapper over :func:`snapshot_to_bytes`.
    """
    data = snapshot_to_bytes(store, meta)
    with open(path, "wb") as handle:
        handle.write(data)


def snapshot_from_bytes(data: bytes) -> tuple["ExprStore", dict]:
    """Rebuild a store from :func:`snapshot_to_bytes` output; return
    ``(store, header)``.

    Dispatches on the header's format tag: a v1 document rebuilds a
    flat :class:`~repro.store.store.ExprStore`, a v2 sharded document a
    :class:`~repro.store.sharded.ShardedExprStore` with its original
    node ids, per-shard recency and counters.  Either way the restored
    store matches the saved one bit-identically: intern table, LRU
    recency, memo records of every canonical tree, and the saved stats
    counters all survive.  Hashing a restored canonical representative
    is a pure memo hit; a re-parsed copy of a saved expression is
    summarised once (the memo is per-object) and then resolves to its
    existing class.
    """
    newline = data.find(b"\n")
    if newline < 0:
        header_line, body = data, b""
    else:
        header_line, body = data[:newline], data[newline + 1 :]
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"unreadable snapshot header: {exc}") from None
    fmt = header.get("format") if isinstance(header, dict) else None
    if fmt not in (SNAPSHOT_FORMAT, SHARDED_SNAPSHOT_FORMAT):
        raise SnapshotError(
            f"not a {SNAPSHOT_FORMAT} / {SHARDED_SNAPSHOT_FORMAT} file: "
            f"{header_line[:80]!r}"
        )
    if header.get("checksum") != _checksum(body):
        raise SnapshotError("snapshot body does not match header checksum")
    if fmt == SHARDED_SNAPSHOT_FORMAT:
        return _sharded_snapshot_from_bytes(header, body)
    return _flat_snapshot_from_bytes(header, body)


def _parse_records(body: bytes, expected: Any) -> list[dict]:
    records = []
    for line in body.splitlines():
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"unreadable snapshot entry: {exc}") from None
    if len(records) != expected:
        raise SnapshotError(
            f"snapshot holds {len(records)} entries, header says {expected}"
        )
    return records


def _build_exprs(records: list[dict]) -> dict[int, Expr]:
    """Rebuild every record's canonical tree, bottom-up.

    Ascending *size* order (ties broken by id for determinism) is valid
    for both layouts: every child is strictly smaller than its parent.
    For v1's ascending ids this coincides with the historical order.
    """
    exprs: dict[int, Expr] = {}
    for rec in sorted(records, key=lambda r: (r["z"], r["i"])):
        kind, payload = rec["k"], rec["p"]
        kids = [exprs[c] for c in rec["c"]]
        if kind == "Var":
            node: Expr = Var(payload)
        elif kind == "Lit":
            node = _decode_lit(payload)
        elif kind == "Lam":
            node = Lam(payload, kids[0])
        elif kind == "App":
            node = App(kids[0], kids[1])
        elif kind == "Let":
            node = Let(payload, kids[0], kids[1])
        else:
            raise SnapshotError(f"unknown entry kind {kind!r}")
        exprs[rec["i"]] = node
    return exprs


def _flat_snapshot_from_bytes(
    header: dict, body: bytes
) -> tuple["ExprStore", dict]:
    from repro.store.store import ExprStore, StoreEntry, _MemoRecord

    missing_fields = [
        key
        for key in ("bits", "seed", "next_id", "entries")
        if key not in header
    ]
    if missing_fields:
        raise SnapshotError(
            f"snapshot header is missing required field(s): {missing_fields}"
        )

    records = _parse_records(body, header.get("entries"))

    store = ExprStore(
        HashCombiners(bits=header["bits"], seed=header["seed"]),
        max_entries=header.get("max_entries"),
        memo_limit=header.get("memo_limit"),
    )

    # Schema breaches that slip past the checksum (buggy writer,
    # hand-edited file with a recomputed checksum) must still fail as
    # SnapshotError, not leak a bare KeyError/TypeError from the rebuild.
    try:
        exprs = _build_exprs(records)

        # File order is LRU order: inserting in it restores recency.
        for rec in records:
            node_id = rec["i"]
            entry = StoreEntry(
                node_id=node_id,
                hash=rec["h"],
                kind=rec["k"],
                size=rec["z"],
                children=tuple(rec["c"]),
                expr=exprs[node_id],
            )
            store._entries[node_id] = entry
            store._by_hash[entry.hash] = node_id
        for entry in store._entries.values():
            for kid in entry.children:
                store._entries[kid].refcount += 1

        # Warm the memo.  A record must imply full-subtree coverage,
        # which holds here because every canonical child is restored.
        for rec in sorted(records, key=lambda r: r["i"]):
            node = exprs[rec["i"]]
            memo_rec = _MemoRecord(
                node, rec["s"], dict(rec["m"]), rec["v"], rec["h"]
            )
            memo_rec.node_id = rec["i"]
            store._memo[id(node)] = memo_rec
    except SnapshotError:
        raise
    except (KeyError, IndexError, TypeError, AttributeError) as exc:
        raise SnapshotError(
            f"malformed snapshot entry: {exc!r}"
        ) from exc

    store._next_id = header["next_id"]
    _restore_stats(store.stats, header.get("stats", {}))
    return store, header


def _restore_stats(stats, saved: dict) -> None:
    for f in fields(stats):
        if f.name in saved:
            setattr(stats, f.name, saved[f.name])


def _sharded_snapshot_from_bytes(
    header: dict, body: bytes
) -> tuple["ShardedExprStore", dict]:
    """Decode the v2 sharded layout; node ids and recency survive."""
    from repro.core.cpus import available_cpus
    from repro.store.sharded import ShardedExprStore
    from repro.store.store import StoreEntry, _MemoRecord

    missing_fields = [
        key
        for key in ("bits", "seed", "num_shards", "entries", "shards")
        if key not in header
    ]
    if missing_fields:
        raise SnapshotError(
            f"snapshot header is missing required field(s): {missing_fields}"
        )
    shard_meta = header["shards"]
    num_shards = header["num_shards"]
    if not isinstance(shard_meta, list) or len(shard_meta) != num_shards:
        raise SnapshotError(
            f"header lists {len(shard_meta)} shard section(s) for "
            f"num_shards={num_shards}"
        )

    # Split the body into per-shard sections by the recorded byte runs,
    # then parse them in parallel (mirror of the writer's fan-out).
    sections: list[bytes] = []
    cursor = 0
    try:
        for meta_entry in shard_meta:
            run = meta_entry["bytes"]
            sections.append(body[cursor : cursor + run])
            cursor += run
    except (KeyError, TypeError) as exc:
        raise SnapshotError(f"malformed shard metadata: {exc!r}") from exc
    if cursor != len(body):
        raise SnapshotError(
            f"shard sections cover {cursor} bytes, body holds {len(body)}"
        )
    n_tasks = max(1, min(num_shards, available_cpus()))
    with ThreadPoolExecutor(max_workers=n_tasks) as pool:
        shard_records = list(
            pool.map(
                _parse_records,
                sections,
                [m.get("entries") for m in shard_meta],
            )
        )

    store = ShardedExprStore(
        HashCombiners(bits=header["bits"], seed=header["seed"]),
        num_shards=num_shards,
        max_entries=header.get("max_entries"),
        memo_limit=header.get("memo_limit"),
    )
    records = [rec for section in shard_records for rec in section]
    if len(records) != header["entries"]:
        raise SnapshotError(
            f"snapshot holds {len(records)} entries, header says "
            f"{header['entries']}"
        )

    try:
        exprs = _build_exprs(records)

        for shard, meta_entry, section in zip(
            store._shards, shard_meta, shard_records
        ):
            # Section order is the shard's LRU order.
            for rec in section:
                node_id = rec["i"]
                if node_id % num_shards != shard.index:
                    raise SnapshotError(
                        f"node id {node_id} landed in shard section "
                        f"{shard.index} (ids encode their shard)"
                    )
                entry = StoreEntry(
                    node_id=node_id,
                    hash=rec["h"],
                    kind=rec["k"],
                    size=rec["z"],
                    children=tuple(rec["c"]),
                    expr=exprs[node_id],
                )
                shard.entries[node_id] = entry
                shard.by_hash[entry.hash] = node_id
            shard.next_local = meta_entry.get(
                "next_local", len(shard.entries)
            )
            _restore_stats(shard.stats, meta_entry.get("stats", {}))

        for shard in store._shards:
            for entry in shard.entries.values():
                for kid in entry.children:
                    store._shard_of_id(kid).entries[kid].refcount += 1

        # Warm the memo exactly like the flat layout.
        for rec in sorted(records, key=lambda r: (r["z"], r["i"])):
            node = exprs[rec["i"]]
            memo_rec = _MemoRecord(
                node, rec["s"], dict(rec["m"]), rec["v"], rec["h"]
            )
            memo_rec.node_id = rec["i"]
            store._memo[id(node)] = memo_rec
    except SnapshotError:
        raise
    except (KeyError, IndexError, TypeError, AttributeError) as exc:
        raise SnapshotError(f"malformed snapshot entry: {exc!r}") from exc

    _restore_stats(store.stats, header.get("stats", {}))
    return store, header


def read_snapshot(path: str) -> tuple["ExprStore", dict]:
    """Rebuild a store saved with :func:`write_snapshot`; return
    ``(store, header)``.  A thin file wrapper over
    :func:`snapshot_from_bytes`."""
    with open(path, "rb") as handle:
        data = handle.read()
    return snapshot_from_bytes(data)
