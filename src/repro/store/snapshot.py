"""Versioned on-disk snapshots of an :class:`~repro.store.ExprStore`.

A snapshot makes a corpus interned once reusable across processes: the
intern table (canonical entries, child links, LRU recency) and the
summary memo of every canonical tree are written to a JSON-lines file
and restored bit-identically.  Re-hashing the same corpus in another
process yields the same root hashes and lands on the existing classes
without growing the store.  Note the memo is keyed by Python object
identity, so freshly *re-parsed* trees are still summarised once before
their intern lookups hit; only the restored canonical representatives
themselves (``expr_of``) hash as pure memo hits.

File layout (one JSON document per line)::

    {"format": "repro-store-snapshot-v1", "bits": 64, "seed": ..,
     "max_entries": null, "memo_limit": null, "next_id": N,
     "entries": K, "stats": {..}, "meta": {..},
     "checksum": "sha256:<hex of the body bytes>"}
    {"i": 0, "h": .., "k": "Var", "z": 1, "c": [], "p": "x",
     "s": .., "v": .., "m": {"x": ..}}
    ... one line per canonical entry, in LRU order (oldest first) ...

Per entry: ``i`` node id, ``h`` alpha-hash, ``k`` kind, ``z`` size,
``c`` child node ids, ``p`` the node payload (variable name, binder, or
``["<tag>", value]`` for literals), and the memoised summary (``s``
structure hash, ``v`` variable-map hash, ``m`` name -> position-hash
entries).  Children always intern before parents, so child ids are
strictly smaller than their parent's and ascending-id order is a valid
rebuild order; the *file* order is LRU order so recency survives the
round-trip.  The header checksum is over the exact body bytes --
truncation or tampering fails loudly as :class:`SnapshotError`.

Sharded layout (v2)
-------------------

A :class:`~repro.store.sharded.ShardedExprStore` snapshots natively as
``repro-store-snapshot-v2-sharded``: the same header-line + JSON-lines
body, but the body is the concatenation of one *section per shard*
(entry schema unchanged, each section in its shard's LRU order) and the
header carries ``num_shards`` plus per-shard metadata::

    {"format": "repro-store-snapshot-v2-sharded", ..., "num_shards": K,
     "shards": [{"entries": N, "next_local": L, "bytes": B,
                 "stats": {..}}, ...], "checksum": "sha256:..."}

Unlike the v1 flatten-and-re-shard path, the v2 layout **preserves
node ids** (shard-encoded: ``id % num_shards`` is the owning shard),
per-shard LRU recency and per-shard counters, and the sections are
encoded/decoded as one independent task per shard on a thread pool
(JSON work holds the GIL on classic builds, where this is mostly
structural; free-threaded builds get real overlap).  Sharded ids are not
ascending parent-over-child, so the rebuild orders records by subtree
*size* -- every child is strictly smaller than its parent, making
ascending size a valid bottom-up order.  Flat v1 snapshots remain
readable (and loadable into sharded stores, re-sharding classes as
before); :func:`snapshot_from_bytes` dispatches on the format tag.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import fields
from typing import TYPE_CHECKING, Any, Optional

from repro.core.combiners import HashCombiners
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

if TYPE_CHECKING:  # pragma: no cover
    from repro.store.sharded import ShardedExprStore
    from repro.store.store import ExprStore

__all__ = [
    "SnapshotError",
    "write_snapshot",
    "read_snapshot",
    "snapshot_to_bytes",
    "snapshot_from_bytes",
    "delta_to_bytes",
    "apply_delta_bytes",
    "content_checksum",
    "SNAPSHOT_FORMAT",
    "SHARDED_SNAPSHOT_FORMAT",
    "DELTA_FORMAT",
]

SNAPSHOT_FORMAT = "repro-store-snapshot-v1"
SHARDED_SNAPSHOT_FORMAT = "repro-store-snapshot-v2-sharded"
DELTA_FORMAT = "repro-store-delta-v1"

_LIT_TAGS = {"int": int, "float": float, "bool": bool, "str": str}


class SnapshotError(ValueError):
    """Raised when a snapshot file is malformed, truncated or tampered."""


def _checksum(body: bytes) -> str:
    return "sha256:" + hashlib.sha256(body).hexdigest()


def _lit_payload(value: Any) -> list:
    if isinstance(value, bool):  # bool first: bool subclasses int
        return ["bool", value]
    if isinstance(value, int):
        return ["int", value]
    if isinstance(value, float):
        return ["float", value]
    if isinstance(value, str):
        return ["str", value]
    raise SnapshotError(f"cannot snapshot literal {value!r}")


def _decode_lit(payload: Any) -> Lit:
    if (
        not isinstance(payload, list)
        or len(payload) != 2
        or payload[0] not in _LIT_TAGS
    ):
        raise SnapshotError(f"malformed literal payload {payload!r}")
    tag, value = payload
    expected = _LIT_TAGS[tag]
    if expected is float and isinstance(value, int) and not isinstance(value, bool):
        value = float(value)  # JSON may render 1.0 as 1
    if not isinstance(value, expected) or (
        expected is int and isinstance(value, bool)
    ):
        raise SnapshotError(f"literal value/tag mismatch {payload!r}")
    return Lit(value)


def _node_payload(node: Expr) -> Any:
    """The ``p`` field of one entry record."""
    if isinstance(node, Var):
        return node.name
    if isinstance(node, Lit):
        return _lit_payload(node.value)
    if isinstance(node, (Lam, Let)):
        return node.binder
    return None


def _entry_record(entry, rec) -> dict:
    """One entry + its memoised summary as a plain JSON-ready dict."""
    return {
        "i": entry.node_id,
        "h": entry.hash,
        "k": entry.kind,
        "z": entry.size,
        "c": list(entry.children),
        "p": _node_payload(entry.expr),
        "s": rec.s_hash,
        "v": rec.vm_hash,
        "m": rec.vm_entries,
        "t": entry.version,
    }


def _encode_records(records: list[dict]) -> bytes:
    """JSON-lines encode one run of entry records."""
    return (
        "".join(
            json.dumps(rec, separators=(",", ":"), sort_keys=True) + "\n"
            for rec in records
        )
    ).encode("utf-8")


class _MemoBackfill:
    """Backfill memo records for every entry, observably side-effect free.

    A flush or prune may have dropped some canonical trees' summary
    records; persisting needs them all.  On enter the user-visible
    counters and the memo key set are captured and every entry's tree is
    (re)summarised; on exit the counters are restored and only the
    records the backfill created are dropped -- records that were
    legitimately warm before the save stay warm.
    """

    def __init__(self, store: "ExprStore", entries: list):
        self.store = store
        self.entries = entries

    def __enter__(self) -> "_MemoBackfill":
        store = self.store
        self.counters = {
            f.name: getattr(store.stats, f.name) for f in fields(store.stats)
        }
        self.memo_keys_before = set(store._memo)
        for entry in sorted(self.entries, key=lambda e: e.node_id):
            store._hash_tree(entry.expr)
        for name, value in self.counters.items():
            setattr(store.stats, name, value)
        return self

    def __exit__(self, *exc_info) -> None:
        store = self.store
        for key in list(store._memo):
            if key not in self.memo_keys_before:
                del store._memo[key]


def snapshot_to_bytes(store: "ExprStore", meta: Optional[dict] = None) -> bytes:
    """Serialise ``store`` to the snapshot wire format, in memory.

    Exactly the bytes :func:`write_snapshot` would put on disk (header
    line + body).  Used by the parallel intern engine to ship worker
    stores back to the parent process (and by the :mod:`repro.service`
    endpoints to ship stores between machines) without touching the
    filesystem -- the JSON-lines encoding is iteration-only, so
    arbitrarily deep expressions serialise without recursion (unlike
    pickling the trees).

    Dispatches on the store's shape: a
    :class:`~repro.store.sharded.ShardedExprStore` produces the native
    v2 sharded layout (ids preserved, sections encoded in parallel), a
    flat store the v1 layout.  ``meta`` is an arbitrary JSON-compatible
    dict stored in the header (the Session facade records its backend
    name there).  The store is left observably unchanged.
    """
    from repro.store.sharded import ShardedExprStore

    if isinstance(store, ShardedExprStore):
        return _sharded_snapshot_to_bytes(store, meta)
    return _flat_snapshot_to_bytes(store, meta)


def _flat_snapshot_to_bytes(
    store: "ExprStore", meta: Optional[dict] = None
) -> bytes:
    entries = list(store.entries())  # LRU order, oldest first
    with _MemoBackfill(store, entries) as backfill:
        records = [
            _entry_record(entry, store._memo[id(entry.expr)])
            for entry in entries
        ]
    body = _encode_records(records)

    header = {
        "format": SNAPSHOT_FORMAT,
        "bits": store.combiners.bits,
        "seed": store.combiners.seed,
        "max_entries": store.max_entries,
        "memo_limit": store.memo_limit,
        "next_id": store._next_id,
        "version": store.version,
        "entries": len(records),
        "stats": backfill.counters,
        "meta": meta or {},
        "checksum": _checksum(body),
    }
    header_bytes = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return header_bytes + b"\n" + body


# repro-lint: allow[lock-blocking] reason=CPU-bound encode fan-out over plain dicts extracted first; a caller's service lock is exactly what keeps that extraction consistent, and the pool tasks touch no locks of their own
def _sharded_snapshot_to_bytes(
    store: "ShardedExprStore", meta: Optional[dict] = None
) -> bytes:
    """The native v2 sharded layout (see module docstring).

    Record extraction runs under the store's locks; section encoding --
    the bulk of the work -- runs as one independent task per shard on a
    thread pool (see the module docstring's GIL caveat).
    """
    from repro.core.cpus import available_cpus

    with store._memo_lock:
        shard_entries: list[list] = []
        for shard in store._shards:
            with shard.lock:
                shard_entries.append(list(shard.entries.values()))
        all_entries = [e for entries in shard_entries for e in entries]
        with _MemoBackfill(store, all_entries) as backfill:
            shard_records = [
                [
                    _entry_record(entry, store._memo[id(entry.expr)])
                    for entry in entries
                ]
                for entries in shard_entries
            ]
        shard_meta = [
            {
                "entries": len(records),
                "next_local": shard.next_local,
                "stats": {
                    f.name: getattr(shard.stats, f.name)
                    for f in fields(shard.stats)
                },
            }
            for shard, records in zip(store._shards, shard_records)
        ]

    # Encoding works on plain dicts -- no store state -- so it can fan
    # out without holding any lock.
    n_tasks = max(1, min(store.num_shards, available_cpus()))
    with ThreadPoolExecutor(max_workers=n_tasks) as pool:
        sections = list(pool.map(_encode_records, shard_records))
    for meta_entry, section in zip(shard_meta, sections):
        meta_entry["bytes"] = len(section)
    body = b"".join(sections)

    header = {
        "format": SHARDED_SNAPSHOT_FORMAT,
        "bits": store.combiners.bits,
        "seed": store.combiners.seed,
        "max_entries": store.max_entries,
        "memo_limit": store.memo_limit,
        "num_shards": store.num_shards,
        "version": store.version,
        "entries": sum(m["entries"] for m in shard_meta),
        "shards": shard_meta,
        "stats": backfill.counters,
        "meta": meta or {},
        "checksum": _checksum(body),
    }
    header_bytes = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return header_bytes + b"\n" + body


def content_checksum(store: "ExprStore") -> str:
    """A canonical fingerprint of the store's *content*, order-free.

    Two stores hold the same classes with the same ids, hashes, shapes
    and version stamps iff their checksums match -- regardless of LRU
    recency, stats counters or memo warmth, none of which survive a
    crash anyway.  This is the equality a journal-recovered store is
    gated on: ``content_checksum(recovered) ==
    content_checksum(pre_crash)``.  Exposed over HTTP as
    ``GET /v1/health?checksum=1``.
    """
    digest = hashlib.sha256()
    entries = sorted(store.entries(), key=lambda e: e.node_id)
    for entry in entries:
        record = [
            entry.node_id,
            entry.hash,
            entry.kind,
            entry.size,
            list(entry.children),
            _node_payload(entry.expr),
            entry.version,
        ]
        digest.update(
            json.dumps(
                record, separators=(",", ":"), sort_keys=True
            ).encode("utf-8")
        )
        digest.update(b"\n")
    return f"sha256:{digest.hexdigest()}"


def write_snapshot(
    store: "ExprStore", path: str, meta: Optional[dict] = None
) -> None:
    """Write ``store`` to ``path`` (see module docstring for the format).

    A thin file wrapper over :func:`snapshot_to_bytes`.
    """
    data = snapshot_to_bytes(store, meta)
    with open(path, "wb") as handle:
        handle.write(data)


def snapshot_from_bytes(data: bytes) -> tuple["ExprStore", dict]:
    """Rebuild a store from :func:`snapshot_to_bytes` output; return
    ``(store, header)``.

    Dispatches on the header's format tag: a v1 document rebuilds a
    flat :class:`~repro.store.store.ExprStore`, a v2 sharded document a
    :class:`~repro.store.sharded.ShardedExprStore` with its original
    node ids, per-shard recency and counters.  Either way the restored
    store matches the saved one bit-identically: intern table, LRU
    recency, memo records of every canonical tree, and the saved stats
    counters all survive.  Hashing a restored canonical representative
    is a pure memo hit; a re-parsed copy of a saved expression is
    summarised once (the memo is per-object) and then resolves to its
    existing class.
    """
    newline = data.find(b"\n")
    if newline < 0:
        header_line, body = data, b""
    else:
        header_line, body = data[:newline], data[newline + 1 :]
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"unreadable snapshot header: {exc}") from None
    fmt = header.get("format") if isinstance(header, dict) else None
    if fmt not in (SNAPSHOT_FORMAT, SHARDED_SNAPSHOT_FORMAT):
        raise SnapshotError(
            f"not a {SNAPSHOT_FORMAT} / {SHARDED_SNAPSHOT_FORMAT} file: "
            f"{header_line[:80]!r}"
        )
    if header.get("checksum") != _checksum(body):
        raise SnapshotError("snapshot body does not match header checksum")
    if fmt == SHARDED_SNAPSHOT_FORMAT:
        return _sharded_snapshot_from_bytes(header, body)
    return _flat_snapshot_from_bytes(header, body)


def _parse_records(body: bytes, expected: Any) -> list[dict]:
    records = []
    for line in body.splitlines():
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"unreadable snapshot entry: {exc}") from None
    if len(records) != expected:
        raise SnapshotError(
            f"snapshot holds {len(records)} entries, header says {expected}"
        )
    return records


def _build_exprs(records: list[dict], resolve_base=None) -> dict[int, Expr]:
    """Rebuild every record's canonical tree, bottom-up.

    Ascending *size* order (ties broken by id for determinism) is valid
    for both layouts: every child is strictly smaller than its parent.
    For v1's ascending ids this coincides with the historical order.

    ``resolve_base`` (delta application) resolves child ids that are not
    among ``records`` themselves -- they then refer to canonical entries
    the receiving store already holds; ``None`` from the resolver is a
    malformed/inapplicable delta and fails loudly.
    """
    exprs: dict[int, Expr] = {}

    def _kid(c: int) -> Expr:
        # The receiving store's canonical child object wins over a copy
        # rebuilt from this document: parents must reference the store's
        # canonical subtree objects, or the maximally-shared DAG (and
        # the memo's object-identity keys) would silently fork.
        node = resolve_base(c) if resolve_base is not None else None
        if node is None:
            node = exprs.get(c)
        if node is None:
            raise SnapshotError(
                f"malformed snapshot entry: references unknown child id "
                f"{c} (not in this document"
                + ("" if resolve_base is None else " or the store")
                + ")"
            )
        return node

    for rec in sorted(records, key=lambda r: (r["z"], r["i"])):
        kind, payload = rec["k"], rec["p"]
        kids = [_kid(c) for c in rec["c"]]
        if kind == "Var":
            node: Expr = Var(payload)
        elif kind == "Lit":
            node = _decode_lit(payload)
        elif kind == "Lam":
            node = Lam(payload, kids[0])
        elif kind == "App":
            node = App(kids[0], kids[1])
        elif kind == "Let":
            node = Let(payload, kids[0], kids[1])
        else:
            raise SnapshotError(f"unknown entry kind {kind!r}")
        exprs[rec["i"]] = node
    return exprs


def _flat_snapshot_from_bytes(
    header: dict, body: bytes
) -> tuple["ExprStore", dict]:
    from repro.store.store import ExprStore, StoreEntry, _MemoRecord

    missing_fields = [
        key
        for key in ("bits", "seed", "next_id", "entries")
        if key not in header
    ]
    if missing_fields:
        raise SnapshotError(
            f"snapshot header is missing required field(s): {missing_fields}"
        )

    records = _parse_records(body, header.get("entries"))

    store = ExprStore(
        HashCombiners(bits=header["bits"], seed=header["seed"]),
        max_entries=header.get("max_entries"),
        memo_limit=header.get("memo_limit"),
    )

    # Schema breaches that slip past the checksum (buggy writer,
    # hand-edited file with a recomputed checksum) must still fail as
    # SnapshotError, not leak a bare KeyError/TypeError from the rebuild.
    try:
        exprs = _build_exprs(records)

        # File order is LRU order: inserting in it restores recency.
        for rec in records:
            node_id = rec["i"]
            entry = StoreEntry(
                node_id=node_id,
                hash=rec["h"],
                kind=rec["k"],
                size=rec["z"],
                children=tuple(rec["c"]),
                expr=exprs[node_id],
                version=rec.get("t", 0),
            )
            store._entries[node_id] = entry
            store._by_hash[entry.hash] = node_id
        for entry in store._entries.values():
            for kid in entry.children:
                store._entries[kid].refcount += 1

        # Warm the memo.  A record must imply full-subtree coverage,
        # which holds here because every canonical child is restored.
        for rec in sorted(records, key=lambda r: r["i"]):
            node = exprs[rec["i"]]
            memo_rec = _MemoRecord(
                node, rec["s"], dict(rec["m"]), rec["v"], rec["h"]
            )
            memo_rec.node_id = rec["i"]
            store._memo[id(node)] = memo_rec
    except SnapshotError:
        raise
    except (KeyError, IndexError, TypeError, AttributeError) as exc:
        raise SnapshotError(
            f"malformed snapshot entry: {exc!r}"
        ) from exc

    store._next_id = header["next_id"]
    store.version = header.get(
        "version", max((r.get("t", 0) for r in records), default=0)
    )
    _restore_stats(store.stats, header.get("stats", {}))
    return store, header


def _restore_stats(stats, saved: dict) -> None:
    for f in fields(stats):
        if f.name in saved:
            setattr(stats, f.name, saved[f.name])


# repro-lint: allow[guarded-by] reason=construction-time writes; the store being populated is a fresh local object no other thread can reach until this function returns it
def _sharded_snapshot_from_bytes(
    header: dict, body: bytes
) -> tuple["ShardedExprStore", dict]:
    """Decode the v2 sharded layout; node ids and recency survive."""
    from repro.core.cpus import available_cpus
    from repro.store.sharded import ShardedExprStore
    from repro.store.store import StoreEntry, _MemoRecord

    missing_fields = [
        key
        for key in ("bits", "seed", "num_shards", "entries", "shards")
        if key not in header
    ]
    if missing_fields:
        raise SnapshotError(
            f"snapshot header is missing required field(s): {missing_fields}"
        )
    shard_meta = header["shards"]
    num_shards = header["num_shards"]
    if not isinstance(shard_meta, list) or len(shard_meta) != num_shards:
        raise SnapshotError(
            f"header lists {len(shard_meta)} shard section(s) for "
            f"num_shards={num_shards}"
        )

    # Split the body into per-shard sections by the recorded byte runs,
    # then parse them in parallel (mirror of the writer's fan-out).
    sections: list[bytes] = []
    cursor = 0
    try:
        for meta_entry in shard_meta:
            run = meta_entry["bytes"]
            sections.append(body[cursor : cursor + run])
            cursor += run
    except (KeyError, TypeError) as exc:
        raise SnapshotError(f"malformed shard metadata: {exc!r}") from exc
    if cursor != len(body):
        raise SnapshotError(
            f"shard sections cover {cursor} bytes, body holds {len(body)}"
        )
    n_tasks = max(1, min(num_shards, available_cpus()))
    with ThreadPoolExecutor(max_workers=n_tasks) as pool:
        shard_records = list(
            pool.map(
                _parse_records,
                sections,
                [m.get("entries") for m in shard_meta],
            )
        )

    store = ShardedExprStore(
        HashCombiners(bits=header["bits"], seed=header["seed"]),
        num_shards=num_shards,
        max_entries=header.get("max_entries"),
        memo_limit=header.get("memo_limit"),
    )
    records = [rec for section in shard_records for rec in section]
    if len(records) != header["entries"]:
        raise SnapshotError(
            f"snapshot holds {len(records)} entries, header says "
            f"{header['entries']}"
        )

    try:
        exprs = _build_exprs(records)

        for shard, meta_entry, section in zip(
            store._shards, shard_meta, shard_records
        ):
            # Section order is the shard's LRU order.
            for rec in section:
                node_id = rec["i"]
                if node_id % num_shards != shard.index:
                    raise SnapshotError(
                        f"node id {node_id} landed in shard section "
                        f"{shard.index} (ids encode their shard)"
                    )
                entry = StoreEntry(
                    node_id=node_id,
                    hash=rec["h"],
                    kind=rec["k"],
                    size=rec["z"],
                    children=tuple(rec["c"]),
                    expr=exprs[node_id],
                    version=rec.get("t", 0),
                )
                shard.entries[node_id] = entry
                shard.by_hash[entry.hash] = node_id
            shard.next_local = meta_entry.get(
                "next_local", len(shard.entries)
            )
            _restore_stats(shard.stats, meta_entry.get("stats", {}))

        for shard in store._shards:
            for entry in shard.entries.values():
                for kid in entry.children:
                    store._shard_of_id(kid).entries[kid].refcount += 1

        # Warm the memo exactly like the flat layout.
        for rec in sorted(records, key=lambda r: (r["z"], r["i"])):
            node = exprs[rec["i"]]
            memo_rec = _MemoRecord(
                node, rec["s"], dict(rec["m"]), rec["v"], rec["h"]
            )
            memo_rec.node_id = rec["i"]
            store._memo[id(node)] = memo_rec
    except SnapshotError:
        raise
    except (KeyError, IndexError, TypeError, AttributeError) as exc:
        raise SnapshotError(f"malformed snapshot entry: {exc!r}") from exc

    store.version = header.get(
        "version", max((r.get("t", 0) for r in records), default=0)
    )
    _restore_stats(store.stats, header.get("stats", {}))
    return store, header


def read_snapshot(path: str) -> tuple["ExprStore", dict]:
    """Rebuild a store saved with :func:`write_snapshot`; return
    ``(store, header)``.  A thin file wrapper over
    :func:`snapshot_from_bytes`."""
    with open(path, "rb") as handle:
        data = handle.read()
    return snapshot_from_bytes(data)


# -- incremental snapshot deltas -----------------------------------------------
#
# A delta is the journal of canonical entries interned since a version
# stamp: the same header-line + JSON-lines layout as a full snapshot
# (entry schema unchanged, ``t`` is each entry's creation stamp), but
# the body holds only the live entries with ``version > since`` and the
# header records the ``(since, version]`` window it covers::
#
#     {"format": "repro-store-delta-v1", "bits": .., "seed": ..,
#      "since": S, "version": V, "num_shards": null | K,
#      "entries": N, "meta": {..}, "checksum": "sha256:..."}
#
# Deltas assume a shared id space: the receiver started from a full
# snapshot of the same store (node ids are preserved by both the v1 and
# v2 layouts), so child ids that predate ``since`` resolve against the
# receiver's own table.  That makes replica catch-up O(new entries)
# instead of O(store) -- the whole point.  Application is idempotent:
# entries the receiver already holds are verified (same hash/kind/size)
# and skipped, so overlapping deltas are safe to replay.


# lint: returns-lock ShardedExprStore._memo_lock
def _memo_lock_of(store: "ExprStore"):
    """The store's memo lock when it has one (sharded stores), else a
    no-op context -- delta emission/application must be atomic against
    concurrent interns."""
    import contextlib

    return getattr(store, "_memo_lock", None) or contextlib.nullcontext()


def _store_num_shards(store: "ExprStore") -> Optional[int]:
    from repro.store.sharded import ShardedExprStore

    return store.num_shards if isinstance(store, ShardedExprStore) else None


def delta_to_bytes(
    store: "ExprStore", since: int, meta: Optional[dict] = None
) -> bytes:
    """Serialise the live entries interned after version ``since``.

    ``since`` is a version stamp previously observed on this store (a
    replica's ``store.version`` after loading a full snapshot or an
    earlier delta); ``since == store.version`` yields a valid empty
    delta.  A ``since`` ahead of the store's version is a protocol
    breach (the caller tracked a *different* store) and raises
    :class:`SnapshotError`.

    Entries created after ``since`` and evicted again before this call
    are simply absent -- the receiver never needed them.  Children of
    every shipped entry are guaranteed resolvable on a receiver at
    version >= ``since``: a child either rides in the delta (fresh) or
    was live at ``since`` (pinned by its parent's refcount ever since),
    hence present in the receiver's baseline.
    """
    with _memo_lock_of(store):
        if since < 0 or since > store.version:
            raise SnapshotError(
                f"delta since={since} is outside this store's history "
                f"(version {store.version})"
            )
        fresh = sorted(
            (e for e in store.entries() if e.version > since),
            key=lambda e: e.version,
        )
        with _MemoBackfill(store, fresh):
            records = [
                _entry_record(entry, store._memo[id(entry.expr)])
                for entry in fresh
            ]
        body = _encode_records(records)
        header = {
            "format": DELTA_FORMAT,
            "bits": store.combiners.bits,
            "seed": store.combiners.seed,
            "since": since,
            "version": store.version,
            "num_shards": _store_num_shards(store),
            "entries": len(records),
            "meta": meta or {},
            "checksum": _checksum(body),
        }
    header_bytes = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return header_bytes + b"\n" + body


def apply_delta_bytes(store: "ExprStore", data: bytes) -> dict:
    """Apply a :func:`delta_to_bytes` document to ``store``; return
    ``{"applied": .., "skipped": .., "version": ..}``.

    ``store`` must share the delta's combiner family, store shape
    (``num_shards``) and id space (it was restored from a snapshot of
    the emitting store), and must have reached the delta's ``since``
    stamp -- a gap means missing entries and fails loudly.  Entries the
    store already holds are verified and skipped (idempotent replay);
    truncated, tampered or schema-breaching documents raise
    :class:`SnapshotError` without partial application of the broken
    record's subtree.
    """
    from repro.store.sharded import ShardedExprStore
    from repro.store.store import StoreEntry, _MemoRecord

    newline = data.find(b"\n")
    if newline < 0:
        header_line, body = data, b""
    else:
        header_line, body = data[:newline], data[newline + 1 :]
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"unreadable delta header: {exc}") from None
    if not isinstance(header, dict) or header.get("format") != DELTA_FORMAT:
        raise SnapshotError(
            f"not a {DELTA_FORMAT} document: {header_line[:80]!r}"
        )
    if header.get("checksum") != _checksum(body):
        raise SnapshotError("delta body does not match header checksum")
    missing_fields = [
        key
        for key in ("bits", "seed", "since", "version", "entries")
        if key not in header
    ]
    if missing_fields:
        raise SnapshotError(
            f"delta header is missing required field(s): {missing_fields}"
        )
    if (
        header["bits"] != store.combiners.bits
        or header["seed"] != store.combiners.seed
    ):
        raise SnapshotError(
            f"delta combiner family (bits={header['bits']}, "
            f"seed={header['seed']}) disagrees with the store's "
            f"(bits={store.combiners.bits}, seed={store.combiners.seed})"
        )
    num_shards = header.get("num_shards")
    if num_shards != _store_num_shards(store):
        raise SnapshotError(
            f"delta store shape (num_shards={num_shards}) disagrees with "
            f"the receiving store's "
            f"(num_shards={_store_num_shards(store)}); deltas share the "
            "emitter's id space and only apply to the matching shape"
        )

    with _memo_lock_of(store):
        if header["since"] > store.version:
            raise SnapshotError(
                f"delta starts at version {header['since']} but the store "
                f"is at {store.version}: entries are missing in between -- "
                "catch up with an older delta or a full snapshot"
            )
        records = _parse_records(body, header["entries"])
        sharded = isinstance(store, ShardedExprStore)

        def _existing(node_id: int) -> Optional[StoreEntry]:
            if sharded:
                return store._shard_of_id(node_id).entries.get(node_id)
            return store._entries.get(node_id)

        def _resolve_base(node_id: int) -> Optional[Expr]:
            entry = _existing(node_id)
            return None if entry is None else entry.expr

        applied = skipped = 0
        try:
            exprs = _build_exprs(records, resolve_base=_resolve_base)
            # All-or-nothing: every mutation-loop failure mode is
            # checked *before* the first store write, so a breaching
            # delta (schema hole, entry disagreeing with the store)
            # leaves the store untouched instead of half-applied --
            # journal replay interrupted partway must never strand a
            # prefix of one frame.
            for rec in records:
                missing = [
                    key
                    for key in ("i", "h", "k", "z", "c", "t", "s", "v", "m")
                    if key not in rec
                ]
                if missing:
                    raise SnapshotError(
                        f"delta entry is missing field(s) {missing}: "
                        f"{rec!r}"
                    )
                present = _existing(rec["i"])
                if present is not None and (
                    present.hash != rec["h"]
                    or present.kind != rec["k"]
                    or present.size != rec["z"]
                ):
                    raise SnapshotError(
                        f"delta entry {rec['i']} disagrees with the "
                        f"store's existing entry (hash/kind/size "
                        "mismatch): the receiver does not mirror the "
                        "emitting store"
                    )
            for rec in sorted(records, key=lambda r: (r["z"], r["i"])):
                node_id = rec["i"]
                present = _existing(node_id)
                if present is not None:
                    if (
                        present.hash != rec["h"]
                        or present.kind != rec["k"]
                        or present.size != rec["z"]
                    ):
                        raise SnapshotError(
                            f"delta entry {node_id} disagrees with the "
                            f"store's existing entry (hash/kind/size "
                            "mismatch): the receiver does not mirror the "
                            "emitting store"
                        )
                    skipped += 1
                    continue
                entry = StoreEntry(
                    node_id=node_id,
                    hash=rec["h"],
                    kind=rec["k"],
                    size=rec["z"],
                    children=tuple(rec["c"]),
                    expr=exprs[node_id],
                    version=rec["t"],
                )
                if sharded:
                    shard = store._shard_of_id(node_id)
                    with shard.lock:
                        shard.entries[node_id] = entry
                        shard.by_hash[entry.hash] = node_id
                        shard.next_local = max(
                            shard.next_local,
                            node_id // store.num_shards + 1,
                        )
                        shard.stats.misses += 1
                else:
                    store._entries[node_id] = entry
                    store._by_hash[entry.hash] = node_id
                    store._next_id = max(store._next_id, node_id + 1)
                store.stats.misses += 1
                for kid in entry.children:
                    kid_entry = _existing(kid)
                    kid_entry.refcount += 1
                # Warm the memo like the full-snapshot loaders, but only
                # when every canonical child is still covered (a record
                # must imply full-subtree coverage, and the receiver may
                # have flushed its memo since the baseline load).
                node = exprs[node_id]
                if id(node) not in store._memo and all(
                    id(_existing(kid).expr) in store._memo
                    for kid in entry.children
                ):
                    memo_rec = _MemoRecord(
                        node, rec["s"], dict(rec["m"]), rec["v"], rec["h"]
                    )
                    memo_rec.node_id = node_id
                    store._memo[id(node)] = memo_rec
                applied += 1
        except SnapshotError:
            raise
        except (KeyError, IndexError, TypeError, AttributeError) as exc:
            raise SnapshotError(f"malformed delta entry: {exc!r}") from exc
        store.version = max(store.version, header["version"])
        return {
            "applied": applied,
            "skipped": skipped,
            "version": store.version,
        }
