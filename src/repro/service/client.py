"""A thin stdlib client for the ``repro serve`` endpoint.

Mirrors the session surface over HTTP/JSON::

    client = ServiceClient("http://127.0.0.1:8655")
    client.hash_corpus(corpus)             # bit-identical to local hashing
    client.intern_many(corpus)             # node ids on the server store
    client.stats()                         # the server session's stats()

    data = client.fetch_snapshot()         # the warm store, snapshot bytes
    session = client.pull_session()        # ...rebuilt locally

    client.push_snapshot(local_session)    # merge local classes upstream

Expressions are shipped as flat postorder wire documents
(:func:`repro.lang.sexpr.to_wire`): iterative encoding, so deep binder
chains survive, and the server re-hashes from the tree -- the client
needs no combiner state at all.  Stores travel as the versioned
snapshot format; :meth:`push_snapshot` accepts raw bytes, a store, or
a session and merging preserves hashes bit-for-bit.

Connections are **persistent**: each thread of the client keeps one
``http.client.HTTPConnection`` alive across calls (the server speaks
HTTP/1.1 keep-alive), so a streaming-edit hot loop pays connection
setup once, not once per tiny request.  A keep-alive socket the server
closed between requests (restart, idle reap) is detected and replayed
once on a fresh connection *without* burning a retry -- the request
never reached a handler.  :meth:`ServiceClient.close` releases the
sockets; an unclosed client leaks nothing past process exit.

Transient failures -- connection refused/reset and 5xx replies -- are
retried with exponential backoff plus jitter, bounded by ``retries``
AND by ``deadline`` (a total wall-clock budget per public call: sleeps
are clamped to the remaining budget and no attempt starts after it is
spent, so exponential backoff can never exceed the caller's timeout).
Every endpoint here is idempotent (hashing is pure, interning and
snapshot merging converge to the same state on replay, and replaying a
subtree replacement at one path yields the same tree), so retrying
POSTs is safe.  4xx replies are the caller's fault and surface
immediately as :class:`ServiceError` with the status attached.

The client keeps a :attr:`ServiceClient.counters` dict (``requests``,
``retries``, ``failures``, ``deadline_exhausted``,
``connections_opened``) so tests and harnesses can assert exactly how
much failover work -- and how much connection churn -- a workload cost.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from typing import Iterable, Optional, Sequence, Union
from urllib.parse import urlsplit

from repro.lang.expr import Expr
from repro.lang.sexpr import to_wire

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP-level or server-reported failure, with its status code."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talk to one :class:`~repro.service.server.ReproServer`.

    ``retries`` bounds how many times a request is *re-sent* after a
    transient failure (0 disables retrying); ``backoff`` is the first
    delay in seconds, doubling per attempt and capped at
    ``max_backoff``, with each delay jittered to 50-100% of nominal so
    a fleet of clients does not retry in lockstep.

    ``deadline`` (seconds, ``None`` = unbounded) is the total budget
    one public call may spend across every attempt *including* backoff
    sleeps: per-attempt socket timeouts and sleeps are clamped to what
    remains, and once it is spent the call fails immediately with the
    last error instead of starting another attempt.  A caller with a
    10s deadline gets an answer or a :class:`ServiceError` within
    ~10s, whatever ``retries`` says.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        retries: int = 2,
        backoff: float = 0.1,
        max_backoff: float = 2.0,
        deadline: Optional[float] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.max_backoff = max_backoff
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.deadline = deadline
        split = urlsplit(self.base_url)
        if split.scheme not in ("http", "https") or not split.hostname:
            raise ValueError(f"base_url must be http(s)://host[:port], got {base_url!r}")
        self._scheme = split.scheme
        self._host = split.hostname
        self._port = split.port
        self._path_prefix = split.path.rstrip("/")
        # One persistent connection per thread (the coordinator shares a
        # client across its fan-out pool), plus a registry so close()
        # can release every thread's socket.
        self._local = threading.local()
        self._conn_registry: list[http.client.HTTPConnection] = []
        self._registry_lock = threading.Lock()
        #: Failover accounting, cumulative over the client's lifetime:
        #: ``requests`` public calls issued, ``retries`` extra attempts
        #: after transient failures, ``failures`` calls that ultimately
        #: raised, ``deadline_exhausted`` calls cut short by the budget,
        #: ``connections_opened`` TCP connects (keep-alive means this
        #: stays far below ``requests``).
        self.counters = {
            "requests": 0,
            "retries": 0,
            "failures": 0,
            "deadline_exhausted": 0,
            "connections_opened": 0,
        }

    # -- connection management -------------------------------------------------

    def _connection(
        self, timeout: float
    ) -> tuple[http.client.HTTPConnection, bool]:
        """This thread's persistent connection (fresh flag True when it
        was just opened, i.e. it cannot be a stale keep-alive socket)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None and conn.sock is not None:
            return conn, False
        cls = (
            http.client.HTTPSConnection
            if self._scheme == "https"
            else http.client.HTTPConnection
        )
        conn = cls(self._host, self._port, timeout=timeout)
        self._local.conn = conn
        with self._registry_lock:
            self._conn_registry.append(conn)
        self.counters["connections_opened"] += 1
        return conn, True

    def _drop_connection(self) -> None:
        """Close and forget this thread's connection (after an error or
        a server ``Connection: close``); the next request reconnects."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            return
        self._local.conn = None
        with self._registry_lock:
            try:
                self._conn_registry.remove(conn)
            except ValueError:
                pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - close never matters
            pass

    def close(self) -> None:
        """Release every thread's persistent connection (idempotent)."""
        with self._registry_lock:
            conns, self._conn_registry = list(self._conn_registry), []
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plumbing --------------------------------------------------------------

    def _sleep_before_retry(
        self, attempt: int, deadline_at: Optional[float]
    ) -> bool:
        """Back off before attempt ``attempt + 1``; False if the budget
        is already too tight for another attempt to be worth starting."""
        delay = min(self.max_backoff, self.backoff * (2**attempt))
        delay *= 0.5 + random.random() * 0.5
        if deadline_at is not None:
            remaining = deadline_at - time.monotonic()
            if remaining <= delay:
                return False
            delay = min(delay, remaining)
        time.sleep(delay)
        return True

    def _attempt_timeout(self, deadline_at: Optional[float]) -> float:
        if deadline_at is None:
            return self.timeout
        return max(0.001, min(self.timeout, deadline_at - time.monotonic()))

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        content_type: str = "application/json",
    ) -> tuple[int, bytes, str]:
        self.counters["requests"] += 1
        deadline_at = (
            None if self.deadline is None else time.monotonic() + self.deadline
        )

        def _fail(error: ServiceError, spent: bool = False):
            self.counters["failures"] += 1
            if spent:
                self.counters["deadline_exhausted"] += 1
            raise error from None

        def _spent(error: ServiceError) -> ServiceError:
            return ServiceError(
                f"{error} (deadline {self.deadline}s exhausted)",
                status=error.status,
            )

        def _retry_or_fail(attempt: int, error: ServiceError) -> bool:
            """True to go around again; raises when attempts or budget
            are spent."""
            if attempt >= self.retries:
                _fail(error)
            if deadline_at is not None and time.monotonic() >= deadline_at:
                _fail(_spent(error), spent=True)
            if not self._sleep_before_retry(attempt, deadline_at):
                _fail(_spent(error), spent=True)
            self.counters["retries"] += 1
            return True

        attempt = 0
        free_replay = True
        while True:
            timeout_s = self._attempt_timeout(deadline_at)
            conn, fresh = self._connection(timeout_s)
            conn.timeout = timeout_s
            if conn.sock is not None:
                conn.sock.settimeout(timeout_s)
            try:
                headers = {}
                if body is not None:
                    headers["Content-Type"] = content_type
                conn.request(
                    method, self._path_prefix + path, body=body, headers=headers
                )
                resp = conn.getresponse()
                data = resp.read()
                status = resp.status
                ctype = resp.headers.get("Content-Type", "")
                if resp.will_close:
                    # Server asked for Connection: close (it does on
                    # every error reply); honor it, reconnect next call.
                    self._drop_connection()
                if status < 400:
                    return status, data, ctype
                try:
                    message = json.loads(data).get("error", "")
                except (json.JSONDecodeError, AttributeError):
                    message = data.decode("utf-8", "replace")
                error = ServiceError(
                    f"{method} {path} -> {status}: {message}",
                    status=status,
                )
                if status < 500:
                    _fail(error)
            except TimeoutError:
                # The socket state is unknowable after a timeout; drop
                # it rather than risk reading a late stale reply.
                self._drop_connection()
                error = ServiceError(
                    f"{method} {path} timed out after {self.timeout}s"
                )
            except (OSError, http.client.HTTPException) as exc:
                self._drop_connection()
                if (
                    not fresh
                    and free_replay
                    and isinstance(
                        exc,
                        (
                            http.client.RemoteDisconnected,
                            http.client.BadStatusLine,
                            ConnectionResetError,
                            BrokenPipeError,
                        ),
                    )
                ):
                    # A reused keep-alive socket the server closed
                    # between requests: the request never reached a
                    # handler, so replay it immediately on a fresh
                    # connection without consuming a retry.
                    free_replay = False
                    continue
                # Connection refused/reset mid-exchange (server gone,
                # fault proxy cutting a body): normal retry path.
                error = ServiceError(f"{method} {path} failed: {exc!r}")
            _retry_or_fail(attempt, error)
            attempt += 1

    def _json(self, method: str, path: str, payload: Optional[dict] = None):
        body = (
            None
            if payload is None
            else json.dumps(
                payload, separators=(",", ":"), sort_keys=True
            ).encode("utf-8")
        )
        _status, data, _ctype = self._request(method, path, body)
        return json.loads(data)

    @staticmethod
    def _corpus_payload(exprs: Iterable[Expr], hints: dict) -> dict:
        payload = {"exprs": [to_wire(e) for e in exprs]}
        payload.update({k: v for k, v in hints.items() if v is not None})
        return payload

    # -- the session surface, remotely -----------------------------------------

    def health(self, checksum: bool = False) -> dict:
        """Liveness probe; ``checksum=True`` asks the server to include
        its order-free store content fingerprint (crash-recovery gate)."""
        path = "/v1/health?checksum=1" if checksum else "/v1/health"
        return self._json("GET", path)

    def stats(self) -> dict:
        return self._json("GET", "/v1/stats")

    def metrics(self) -> dict:
        """The server's operational metrics (uptime, rates, occupancy)."""
        return self._json("GET", "/v1/metrics")

    def hash_corpus(
        self,
        exprs: Iterable[Expr],
        *,
        backend: Optional[str] = None,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        with_plan: bool = False,
    ) -> Union[list[int], tuple[list[int], dict]]:
        """Root alpha-hashes of ``exprs``, computed by the server.

        Bit-identical to hashing locally at the server's combiner
        family; hints are planned server-side exactly like a local
        request.  ``with_plan=True`` also returns the server's resolved
        :class:`~repro.api.plan.ExecutionPlan` as a dict.
        """
        reply = self._json(
            "POST",
            "/v1/hash",
            self._corpus_payload(
                exprs,
                {
                    "backend": backend,
                    "engine": engine,
                    "workers": workers,
                    "mode": mode,
                },
            ),
        )
        if with_plan:
            return reply["hashes"], reply["plan"]
        return reply["hashes"]

    def intern_many(
        self,
        exprs: Iterable[Expr],
        *,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> list[int]:
        """Intern ``exprs`` into the server store; returns node ids."""
        reply = self._json(
            "POST",
            "/v1/intern",
            self._corpus_payload(exprs, {"engine": engine, "workers": workers}),
        )
        return reply["ids"]

    # -- streaming edit sessions -----------------------------------------------

    def session_open(
        self,
        exprs: Iterable[Expr],
        *,
        ttl: Optional[float] = None,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> dict:
        """Open a server-side :class:`~repro.api.stream.StreamSession`.

        Uploads the corpus once; the reply carries the session id, the
        root hashes and the resolved plan.  Stream edits with
        :meth:`session_edit`; the server holds the trees.
        """
        payload = self._corpus_payload(
            exprs, {"ttl": ttl, "engine": engine, "workers": workers}
        )
        return self._json("POST", "/v1/session/open", payload)

    def session_edit(
        self,
        session_id: str,
        item: int,
        path: Sequence[int],
        new_subexpr: Expr,
    ) -> dict:
        """Replace ``item``'s subtree at ``path``; returns the server's
        :class:`~repro.api.stream.EditReport` dict plus the store
        version.  Replaying the same edit converges to the same tree,
        so the transport's retry policy stays safe here."""
        return self._json(
            "POST",
            "/v1/session/edit",
            {
                "session": session_id,
                "item": int(item),
                "path": [int(step) for step in path],
                "expr": to_wire(new_subexpr),
            },
        )

    def session_report(self, session_id: str) -> dict:
        """The session's running totals (edits, rehash ratio, pins)."""
        return self._json("GET", f"/v1/session/report?session={session_id}")

    def session_close(self, session_id: str) -> dict:
        """Close the session and unpin its classes server-side."""
        return self._json(
            "POST", "/v1/session/close", {"session": session_id}
        )

    def session_wire(self, verb: str, payload: dict) -> dict:
        """POST an already-encoded body to ``/v1/session/<verb>``.

        The cluster coordinator relays session traffic to the owning
        node without a decode/re-encode round trip.
        """
        return self._json("POST", f"/v1/session/{verb}", dict(payload))

    # -- wire-level passthrough (coordinator fan-out) --------------------------

    def hash_wire(self, docs: list, hints: Optional[dict] = None) -> dict:
        """POST already-encoded wire documents to ``/v1/hash``.

        The cluster coordinator relays client documents shard-ward
        without a decode/re-encode round trip; returns the full reply
        (``hashes`` + ``plan``).
        """
        payload = {"exprs": list(docs)}
        payload.update(hints or {})
        return self._json("POST", "/v1/hash", payload)

    def intern_wire(self, docs: list, hints: Optional[dict] = None) -> dict:
        """POST already-encoded wire documents to ``/v1/intern``."""
        payload = {"exprs": list(docs)}
        payload.update(hints or {})
        return self._json("POST", "/v1/intern", payload)

    # -- snapshots over the wire -----------------------------------------------

    def fetch_snapshot(self) -> bytes:
        """The server store as versioned snapshot bytes ("save")."""
        _status, data, _ctype = self._request("GET", "/v1/snapshot")
        return data

    def fetch_delta(self, since: int) -> bytes:
        """Delta bytes covering server interns newer than ``since``.

        ``since`` is a store version stamp, normally the replica's own
        ``store.version`` (0 means "everything").  Apply the result
        with :func:`repro.store.apply_delta_bytes`, or use
        :meth:`catch_up` for the full fetch-and-apply loop.
        """
        _status, data, _ctype = self._request(
            "GET", f"/v1/snapshot/delta?since={int(since)}"
        )
        return data

    def catch_up(self, target) -> dict:
        """Bring a local replica up to date with one delta fetch.

        ``target`` is a :class:`~repro.api.Session` or a store that was
        seeded from this server's snapshot (same id space).  Returns
        the apply report: ``{"applied", "skipped", "version"}``.
        """
        store = getattr(target, "store", target)
        if store is None:
            raise ValueError("target session has no store to catch up")
        from repro.store import apply_delta_bytes

        return apply_delta_bytes(store, self.fetch_delta(store.version))

    def download_snapshot(self, path: str) -> str:
        """Write :meth:`fetch_snapshot` to ``path``; returns ``path``."""
        with open(path, "wb") as handle:
            handle.write(self.fetch_snapshot())
        return path

    def pull_session(self):
        """A local warm :class:`~repro.api.Session` over the server store.

        Goes through :meth:`Session.from_snapshot_bytes`, so a sharded
        server store arrives as a sharded local store with its config
        (shard count, saved defaults) intact -- exactly like
        :meth:`Session.load` on a snapshot file.
        """
        from repro.api import Session

        return Session.from_snapshot_bytes(self.fetch_snapshot())

    def push_snapshot(self, source) -> dict:
        """Upload a store and merge it into the server's ("load").

        ``source`` may be snapshot bytes, anything with a
        ``snapshot``-compatible store (a :class:`~repro.api.Session`),
        or a store itself.  Hashes merge bit-identically; the reply
        reports how many classes arrived and the server's new entry
        count.
        """
        if isinstance(source, (bytes, bytearray)):
            data = bytes(source)
        else:
            from repro.store import snapshot_to_bytes

            store = getattr(source, "store", source)
            if store is None:
                raise ValueError("source session has no store to push")
            data = snapshot_to_bytes(store)
        _status, reply, _ctype = self._request(
            "POST", "/v1/snapshot", data, "application/octet-stream"
        )
        return json.loads(reply)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ServiceClient({self.base_url!r})"
