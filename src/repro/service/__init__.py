"""``repro.service`` -- serve a warm expression store over HTTP/JSON.

A stdlib-only client/server pair that puts the :mod:`repro.api`
pipeline on the wire:

* :class:`ReproServer` (:mod:`repro.service.server`) -- a threaded
  ``http.server`` endpoint owning one :class:`~repro.api.Session`;
  ``repro serve`` starts it from the shell.
* :class:`ServiceClient` (:mod:`repro.service.client`) -- a thin
  ``urllib`` client mirroring the session surface: ``hash_corpus`` /
  ``intern_many`` / ``stats`` / snapshot download & upload.

Expressions travel as the flat postorder documents of
:func:`repro.lang.sexpr.to_wire`; whole stores travel as the existing
versioned snapshot wire format (:func:`repro.store.snapshot_to_bytes`
/ ``snapshot_from_bytes``), so a corpus interned once on a server can
be pulled warm into any process -- and client stores can be pushed up
and merged.  See the README's "Service API" section for the protocol.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ReproServer, serve

__all__ = ["ReproServer", "ServiceClient", "ServiceError", "serve"]
