"""The snapshot-wire HTTP server behind ``repro serve``.

Stdlib only (``http.server`` + ``json``): one
:class:`~repro.api.Session` served over five JSON/bytes endpoints,
versioned under ``/v1``:

===========================  ==================================================
``GET  /v1/health``          liveness + combiner family + store shape
``GET  /v1/stats``           :meth:`Session.stats` (entries, hit rates, pools)
``GET  /v1/metrics``         operational metrics: uptime, request count,
                             hit/miss rates, shard occupancy, engine/kernel
``POST /v1/hash``            ``{"exprs": [wire...], hints...}`` ->
                             ``{"hashes": [...], "plan": {...}}``
``POST /v1/intern``          same body -> ``{"ids": [...], "hashes": [...]}``
``GET  /v1/snapshot``        the store as versioned snapshot bytes ("save")
``POST /v1/snapshot``        upload snapshot bytes, merge into the store
                             ("load"); returns the id remapping size
``GET  /v1/snapshot/delta``  ``?since=V``: entries interned after store
                             version ``V`` as delta bytes (replica catch-up)
``POST /v1/session/open``    upload a corpus, open a streaming edit session
                             (:class:`~repro.api.stream.StreamSession`);
                             returns the session id + root hashes + plan
``POST /v1/session/edit``    ``{"session", "item", "path", "expr"}`` ->
                             the edit report (root hash, nodes rehashed,
                             sharing) -- O(dirty spine), not O(corpus)
``GET  /v1/session/report``  ``?session=ID``: the session's running totals
``POST /v1/session/close``   close + unpin the session's classes
===========================  ==================================================

Sessions are the stateful exception to the otherwise request-scoped
protocol: a registry (bounded by ``max_sessions``, idle-expired after
``session_ttl`` seconds) maps ids to live
:class:`~repro.api.stream.StreamSession` objects whose pinned classes
an LRU-bounded store cannot evict mid-stream.  An unknown or expired
id answers 409 (reopen and replay); a full registry answers 429.
Shard-identity and follower nodes open sessions in hash-only mode
(``intern_classes=False``): ownership checks and the follower's
one-writer id space both forbid local interning, and incremental
hashing needs none of it.

Expressions ride as the flat postorder documents of
:func:`repro.lang.sexpr.to_wire`; stores ride as the existing
checksummed snapshot format (:func:`repro.store.snapshot_to_bytes` /
``snapshot_from_bytes``) -- a sharded server store produces the v2
sharded layout, a flat one the v1 layout, and clients can load either.
Hash/intern hints (``engine`` / ``workers`` / ``mode`` / ``backend``)
are lowered into a :class:`~repro.api.request.HashRequest` server-side,
so a remote call and a local call run the *same* plan and return
bit-identical hashes; the resolved plan is echoed in the response for
inspectability.

Concurrency: the listener is a ``ThreadingHTTPServer`` (slow clients
don't starve the accept loop), while store-touching work is serialised
per server -- the session is the shared resource; the parallelism that
matters (corpus fan-out over worker pools) happens *inside* a request
per its plan.

Cluster membership: a server started with ``shard_id``/``shard_count``
is one node of a hash cluster (see :mod:`repro.cluster`).  It hashes
anything, but *interns* only expressions whose root alpha-hash it owns
(``hash % shard_count == shard_id``) -- a foreign key is rejected with
409 so a misrouted write can never silently split an equivalence class
across nodes.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import uuid
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.api import HashRequest, InternRequest, PlanError, Session
from repro.api.stream import StreamSession
from repro.core.incremental import PathError
from repro.core.arena import ENGINE_CHOICES, engine_kernel, resolve_kernel
from repro.lang.sexpr import SexprError, from_wire
from repro.store import (
    Journal,
    SnapshotError,
    apply_delta_bytes,
    content_checksum,
    delta_to_bytes,
    snapshot_from_bytes,
    snapshot_to_bytes,
)

__all__ = ["ReproServer", "serve"]

#: Cap on request bodies (snapshot uploads included): a stray client
#: must not be able to balloon the server's memory.  Generous -- a
#: million-node corpus is a few tens of MB on the wire.
MAX_BODY_BYTES = 256 * 1024 * 1024


def _max_request_workers() -> int:
    """Ceiling on a client-supplied ``workers`` hint.

    ``workers`` reaches ``Session._pool_for`` and forks real processes;
    without a cap a remote client could ask for thousands.  One worker
    per *available* CPU (affinity- and cgroup-aware, not the machine's
    raw count) is also where the speedup tops out, so clamping (rather
    than rejecting) loses the client nothing.
    """
    from repro.core.cpus import available_cpus

    return available_cpus()


class _RequestError(Exception):
    """A client error carrying its HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _decode_corpus(payload: dict) -> list:
    exprs_wire = payload.get("exprs")
    if not isinstance(exprs_wire, list):
        raise _RequestError(400, "body must carry an 'exprs' list")
    try:
        return [from_wire(doc) for doc in exprs_wire]
    except SexprError as exc:
        raise _RequestError(400, f"malformed expression: {exc}") from None


def _request_hints(payload: dict) -> dict:
    hints = {}
    for name in ("backend", "engine", "workers", "mode", "bits", "seed"):
        if payload.get(name) is not None:
            hints[name] = payload[name]
    workers = hints.get("workers")
    if isinstance(workers, int) and workers > 0:
        # 0 already means "one per CPU"; clamp explicit asks to the same
        # ceiling so clients cannot make the server fork unboundedly.
        hints["workers"] = min(workers, _max_request_workers())
    return hints


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    @property
    def service(self) -> "ReproServer":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # pragma: no cover - log plumbing
        if self.service.verbose:
            super().log_message(fmt, *args)

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        # Error replies may be sent before the request body was read
        # (unknown route, oversized body); under HTTP/1.1 keep-alive the
        # unread bytes would be parsed as the next request line, so
        # close the connection instead of corrupting it.
        if status >= 400:
            self.close_connection = True
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, obj) -> None:
        body = json.dumps(obj, sort_keys=True).encode("utf-8")
        self._send(status, body, "application/json")

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _RequestError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        return self.rfile.read(length)

    def _read_json(self) -> dict:
        try:
            payload = json.loads(self._read_body())
        except json.JSONDecodeError as exc:
            raise _RequestError(400, f"malformed JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _RequestError(400, "body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        try:
            handler()
        except _RequestError as exc:
            self._send_json(exc.status, {"error": str(exc)})
        except (PlanError, ValueError, KeyError, TypeError) as exc:
            self._send_json(400, {"error": f"{type(exc).__name__}: {exc}"})
        # repro-lint: allow[broad-except] reason=last-resort 500; the keep-alive handler thread must answer the client rather than die silently mid-exchange, and the fault is logged with method+path context before the response goes out
        except Exception as exc:  # pragma: no cover - defensive 500
            self.log_error(
                "unhandled %s while handling %s %s: %s",
                type(exc).__name__,
                self.command,
                self.path,
                exc,
            )
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:
        # GET paths may carry a query string (/v1/snapshot/delta?since=N):
        # route on the bare path, stash the parsed query for the handler.
        split = urlsplit(self.path)
        self.query = parse_qs(split.query)
        routes = {
            "/v1/health": self._get_health,
            "/v1/stats": self._get_stats,
            "/v1/metrics": self._get_metrics,
            "/v1/snapshot": self._get_snapshot,
            "/v1/snapshot/delta": self._get_snapshot_delta,
            "/v1/session/report": self._get_session_report,
        }
        handler = routes.get(split.path)
        if handler is None:
            self._send_json(404, {"error": f"no such endpoint {self.path!r}"})
            return
        self._dispatch(handler)

    def do_POST(self) -> None:
        routes = {
            "/v1/hash": self._post_hash,
            "/v1/intern": self._post_intern,
            "/v1/snapshot": self._post_snapshot,
            "/v1/session/open": self._post_session_open,
            "/v1/session/edit": self._post_session_edit,
            "/v1/session/close": self._post_session_close,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._send_json(404, {"error": f"no such endpoint {self.path!r}"})
            return
        self._dispatch(handler)

    def _get_health(self) -> None:
        service = self.service
        session = service.session
        body = {
            "ok": True,
            "backend": session.backend.name,
            "bits": session.combiners.bits,
            "seed": session.combiners.seed,
            "store": session.store is not None,
            "entries": len(session.store) if session.store else 0,
            "shard_id": service.shard_id,
            "shard_count": service.shard_count,
            "role": service.role,
        }
        if session.store is not None:
            body["version"] = session.store.version
        if service.follow is not None:
            body["following"] = service.follow
            body["follower"] = service.follower_status()
        if service.journal is not None:
            body["journal"] = {
                "directory": service.journal.directory,
                "version": service.journal.version,
                "segments": len(service.journal.segments()),
            }
        if session.store is not None and self.query.get("checksum"):
            # O(store) -- opt-in: the durability gates compare a node's
            # exact content across a crash/recovery boundary.
            with service.lock:
                body["content_checksum"] = content_checksum(session.store)
        self._send_json(200, body)

    def _get_stats(self) -> None:
        with self.service.lock:
            stats = self.service.session.stats()
        stats["requests_served"] = self.service.requests_served
        self._send_json(200, stats)

    def _get_metrics(self) -> None:
        service = self.service
        session = service.session
        with service.lock:
            stats = session.stats()
            sessions_block = service.session_metrics()
        store_stats = stats.get("store") or {}
        hits = store_stats.get("hits", 0)
        misses = store_stats.get("misses", 0)
        memo_hits = store_stats.get("memo_hits", 0)
        hashed = store_stats.get("hashed_nodes", 0)
        probes = hits + misses
        engine = stats.get("engine", "auto")
        try:
            kernel = resolve_kernel(engine_kernel(engine))
        except ValueError:
            kernel = "unavailable"
        body = {
            "ok": True,
            "uptime_s": round(time.monotonic() - service.started_at, 3),
            "requests_served": service.requests_served,
            "backend": stats.get("backend"),
            "engine": engine,
            "kernel": kernel,
            "workers": stats.get("workers"),
            "shard_id": service.shard_id,
            "shard_count": service.shard_count,
            "sessions": sessions_block,
            "store": None,
        }
        if session.store is not None:
            body["store"] = {
                "entries": stats.get("entries", 0),
                "version": session.store.version,
                "counters": store_stats,
                # Probe rates: of the intern-table probes, how many
                # landed on a known class; of the summary work, how
                # much was answered from the memo.
                "intern_hit_rate": (hits / probes) if probes else None,
                "memo_hit_rate": (
                    memo_hits / (memo_hits + hashed)
                    if (memo_hits + hashed)
                    else None
                ),
                "num_shards": stats.get("num_shards"),
                "shard_occupancy": stats.get("shard_sizes"),
            }
        self._send_json(200, body)

    def _get_snapshot_delta(self) -> None:
        service = self.service
        store = service.session.store
        if store is None:
            raise _RequestError(409, "this server runs without a store")
        raw = self.query.get("since", [])
        if len(raw) != 1:
            raise _RequestError(400, "exactly one 'since' parameter required")
        try:
            since = int(raw[0])
        except ValueError:
            raise _RequestError(
                400, f"'since' must be an integer, got {raw[0]!r}"
            ) from None
        try:
            with service.lock:
                data = delta_to_bytes(
                    store, since, meta={"backend": service.session.backend.name}
                )
        except SnapshotError as exc:
            raise _RequestError(409, f"bad delta window: {exc}") from None
        service.count_request()
        self._send(200, data, "application/octet-stream")

    def _get_snapshot(self) -> None:
        service = self.service
        store = service.session.store
        if store is None:
            raise _RequestError(409, "this server runs without a store")
        with service.lock:
            data = snapshot_to_bytes(
                store, meta={"backend": service.session.backend.name}
            )
        service.count_request()
        self._send(200, data, "application/octet-stream")

    def _post_snapshot(self) -> None:
        service = self.service
        store = service.session.store
        if store is None:
            raise _RequestError(409, "this server runs without a store")
        data = self._read_body()
        try:
            uploaded, header = snapshot_from_bytes(data)
        except SnapshotError as exc:
            raise _RequestError(400, f"bad snapshot: {exc}") from None
        with service.lock:
            mapping = store.merge_store(uploaded)
            entries = len(store)
            service.journal_commit()
        service.flush_checkpoint()
        service.count_request()
        self._send_json(
            200,
            {
                "merged_classes": len(mapping),
                "entries": entries,
                "uploaded_format": header.get("format"),
            },
        )

    def _post_hash(self) -> None:
        payload = self._read_json()
        corpus = _decode_corpus(payload)
        request = HashRequest(corpus, **_request_hints(payload))
        service = self.service
        with service.lock:
            plan = service.session.plan(request)
            hashes = service.session.execute(request, plan=plan)
        service.count_request()
        self._send_json(200, {"hashes": hashes, "plan": plan.as_dict()})

    def _post_intern(self) -> None:
        payload = self._read_json()
        corpus = _decode_corpus(payload)
        request = InternRequest(corpus, **_request_hints(payload))
        service = self.service
        store = service.session.store
        if store is None:
            raise _RequestError(409, "this server runs without a store")
        with service.lock:
            if service.shard_count is not None:
                # Cluster node: hash first and refuse foreign keys
                # *before* anything lands in the intern table.  Hashing
                # is ownership-free (bit-identical everywhere), so this
                # costs one summary pass the intern below then answers
                # from the warm memo.
                hashes = [store.hash_expr(expr) for expr in corpus]
                foreign = [
                    index
                    for index, digest in enumerate(hashes)
                    if digest % service.shard_count != service.shard_id
                ]
                if foreign:
                    first = foreign[0]
                    raise _RequestError(
                        409,
                        f"shard {service.shard_id}/{service.shard_count} "
                        f"does not own {len(foreign)} of {len(corpus)} "
                        f"items: item {first} (hash 0x{hashes[first]:x}) "
                        f"belongs to shard "
                        f"{hashes[first] % service.shard_count}",
                    )
                plan = service.session.plan(request)
                ids = service.session.execute(request, plan=plan)
            else:
                plan = service.session.plan(request)
                ids = service.session.execute(request, plan=plan)
                # Canonical hashes come from the (memo-warm) hashing
                # path, not an id lookup: on an entry-bounded store an
                # early root can already be evicted again by the end of
                # the batch, and a capacity condition must not surface
                # as a KeyError.
                hashes = [store.hash_expr(expr) for expr in corpus]
            # Write-ahead durability: the batch's delta frame reaches
            # the journal (fsync'd) *before* this 200 is sent -- an
            # acked intern survives SIGKILL.  An append failure (disk
            # full) surfaces as a 500 and the un-acked window rides in
            # the next successful append.
            service.journal_commit()
            version = store.version
        service.flush_checkpoint()
        service.count_request()
        self._send_json(
            200,
            {
                "ids": ids,
                "hashes": hashes,
                "version": version,
                "plan": plan.as_dict(),
            },
        )

    # -- streaming edit sessions -----------------------------------------------

    def _post_session_open(self) -> None:
        payload = self._read_json()
        corpus = _decode_corpus(payload)
        hints = _request_hints(payload)
        ttl = payload.get("ttl")
        service = self.service
        with service.lock:
            state = service.open_session(corpus, hints, ttl)
            # Opening interns + pins the corpus roots on a standalone
            # node: journal them before the ack, like any intern batch.
            if state.stream.intern_classes:
                service.journal_commit()
        service.flush_checkpoint()
        service.count_request()
        stream = state.stream
        self._send_json(
            200,
            {
                "session": state.sid,
                "roots": stream.root_hashes,
                "items": stream.items,
                "nodes": stream.corpus_nodes,
                "ttl": state.ttl,
                "intern_classes": stream.intern_classes,
                "plan": stream.plan.as_dict() if stream.plan else None,
            },
        )

    def _post_session_edit(self) -> None:
        payload = self._read_json()
        item = payload.get("item")
        if not isinstance(item, int) or isinstance(item, bool):
            raise _RequestError(400, "'item' must be an integer index")
        path = payload.get("path")
        if not isinstance(path, list):
            raise _RequestError(400, "'path' must be a list of child indices")
        doc = payload.get("expr")
        if doc is None:
            raise _RequestError(400, "body must carry an 'expr' document")
        try:
            new_subexpr = from_wire(doc)
        except SexprError as exc:
            raise _RequestError(400, f"malformed expression: {exc}") from None
        service = self.service
        with service.lock:
            state = service.get_session(payload.get("session"))
            try:
                report = state.stream.edit(item, path, new_subexpr)
            except (PathError, IndexError) as exc:
                # _dispatch maps ValueError/KeyError already, but bad
                # paths surface as (subclasses of) IndexError -- a
                # client mistake, not a server fault.
                raise _RequestError(400, f"bad edit target: {exc}") from None
            service.note_edit(state, report)
            if state.stream.intern_classes:
                service.journal_commit()
            store = service.session.store
            version = store.version if store is not None else None
        service.flush_checkpoint()
        service.count_request()
        body = report.as_dict()
        body["session"] = state.sid
        body["version"] = version
        self._send_json(200, body)

    def _get_session_report(self) -> None:
        raw = self.query.get("session", [])
        if len(raw) != 1:
            raise _RequestError(400, "exactly one 'session' parameter required")
        service = self.service
        with service.lock:
            state = service.get_session(raw[0])
            body = state.stream.report()
            body["session"] = state.sid
            body["ttl"] = state.ttl
            body["intern_classes"] = state.stream.intern_classes
        service.count_request()
        self._send_json(200, body)

    def _post_session_close(self) -> None:
        payload = self._read_json()
        service = self.service
        with service.lock:
            reply = service.close_session(payload.get("session"))
        service.count_request()
        self._send_json(200, reply)


class _FollowerLoop(threading.Thread):
    """Tail a primary's ``/v1/snapshot/delta`` on a poll loop.

    Each tick fetches the window ``(store.version, primary]`` and
    applies it under the server lock; applied deltas are re-journaled
    verbatim when the follower has a journal, so a follower crash
    recovers exactly like a primary crash.  Errors (primary down, delta
    gap) are recorded and retried next tick -- a follower outlives its
    primary and keeps serving whatever it has, which is what lets the
    coordinator promote it.
    """

    def __init__(self, service: "ReproServer", primary_url: str, poll: float):
        super().__init__(name="repro-follower", daemon=True)
        from repro.service.client import ServiceClient

        self.service = service
        self.primary_url = primary_url
        self.poll = poll
        self.client = ServiceClient(primary_url, timeout=30.0, retries=0)
        self.stop_event = threading.Event()
        self.synced_at: Optional[float] = None
        self.last_error: Optional[str] = None
        self.frames_applied = 0
        self.entries_applied = 0

    def run(self) -> None:
        from repro.service.client import ServiceError

        while not self.stop_event.is_set():
            try:
                self.sync_once()
            except (ServiceError, SnapshotError) as exc:
                self.last_error = str(exc)
            self.stop_event.wait(self.poll)

    def sync_once(self) -> dict:
        """One fetch-and-apply tick; also callable synchronously from
        tests.  Raises on an unreachable primary or an inapplicable
        delta."""
        service = self.service
        store = service.session.store
        data = self.client.fetch_delta(store.version)
        with service.lock:
            report = apply_delta_bytes(store, data)
            if report["applied"] and service.journal is not None:
                service.journal.append_bytes(data)
        self.synced_at = time.monotonic()
        self.last_error = None
        if report["applied"]:
            self.frames_applied += 1
            self.entries_applied += report["applied"]
        return report

    def stop(self) -> None:
        self.stop_event.set()
        self.client.close()


class _TrackingHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` that can sever live connections.

    With HTTP/1.1 keep-alive, handler threads sit in a read loop on
    their connection socket; ``shutdown()`` only stops the *accept*
    loop, so a closed server would otherwise keep answering requests
    on already-open connections indefinitely.  ``server_close`` here
    shuts every tracked connection down so close means closed.
    """

    def __init__(self, *args, **kwargs):
        self._connections: set = set()
        self._conn_lock = threading.Lock()
        super().__init__(*args, **kwargs)

    def get_request(self):
        request, client_address = super().get_request()
        with self._conn_lock:
            self._connections.add(request)
        return request, client_address

    def shutdown_request(self, request):
        with self._conn_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def server_close(self):
        super().server_close()
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for request in connections:
            try:
                request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass


class _SessionState:
    """One live streaming edit session and its expiry bookkeeping."""

    __slots__ = ("sid", "stream", "ttl", "created", "last_used")

    def __init__(self, sid: str, stream: StreamSession, ttl: float):
        self.sid = sid
        self.stream = stream
        self.ttl = ttl
        self.created = time.monotonic()
        self.last_used = self.created


class ReproServer:
    """One session behind a threaded HTTP endpoint.

    Usable embedded (tests spin one up on an ephemeral port) or via the
    ``repro serve`` CLI::

        with ReproServer(port=0, workers=2) as server:
            client = ServiceClient(server.url)
            client.hash_corpus(corpus)

    ``session`` may be an existing session (shared store); otherwise
    keywords build a private one, closed with the server.

    ``shard_id``/``shard_count`` (both or neither) make this server a
    cluster shard node: ``/v1/intern`` rejects expressions whose root
    alpha-hash it does not own (``hash % shard_count != shard_id``).

    ``journal`` (a directory path or a :class:`~repro.store.Journal`)
    turns on write-ahead durability: the journal is replayed into the
    store on construction and every intern/merge batch appends its
    delta frame before the request is acknowledged.
    ``checkpoint_every`` (intern batches, 0 = never) periodically
    writes a full snapshot into the journal directory and GCs the
    segments it covers.

    ``follow`` (a primary's URL) makes this server a read replica: a
    poll loop tails the primary's ``/v1/snapshot/delta`` every
    ``poll_interval`` seconds.  A follower still answers every
    endpoint (it can be promoted), and with a journal it is itself
    crash-durable.

    ``max_sessions`` bounds the streaming-session registry (429 past
    it); ``session_ttl`` is the idle expiry in seconds -- a client
    ``ttl`` may shorten it per session but never extend it.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        host: str = "127.0.0.1",
        port: int = 8655,
        verbose: bool = False,
        shard_id: Optional[int] = None,
        shard_count: Optional[int] = None,
        journal=None,
        checkpoint_every: int = 0,
        follow: Optional[str] = None,
        poll_interval: float = 0.5,
        max_sessions: int = 64,
        session_ttl: float = 600.0,
        **session_kwargs,
    ):
        if session is not None and session_kwargs:
            raise TypeError(
                "pass either an existing session or Session keywords, not both"
            )
        if (shard_id is None) != (shard_count is None):
            raise ValueError("shard_id and shard_count go together")
        if shard_count is not None:
            if shard_count < 1:
                raise ValueError(f"shard_count must be >= 1, got {shard_count}")
            if not 0 <= shard_id < shard_count:
                raise ValueError(
                    f"shard_id must be in [0, {shard_count}), got {shard_id}"
                )
        self.session = Session(**session_kwargs) if session is None else session
        self._owns_session = session is None
        self.verbose = verbose
        self.shard_id = shard_id
        self.shard_count = shard_count
        self.follow = follow
        self.poll_interval = poll_interval
        self.checkpoint_every = max(0, int(checkpoint_every))
        self._interns_since_checkpoint = 0
        #: (snapshot bytes, covered version) encoded under ``self.lock``
        #: by ``journal_commit``, written to disk outside the lock by
        #: ``flush_checkpoint``.  # guarded-by: lock
        self._pending_checkpoint: Optional[tuple[bytes, int]] = None
        self.journal: Optional[Journal] = (
            Journal(journal) if isinstance(journal, str) else journal
        )
        if self.journal is not None:
            if self.session.store is None:
                raise ValueError("a journal needs a store-backed session")
            #: Crash recovery happens before the listener exists: a
            #: request can never observe a half-replayed store.
            self.replay_report = self.journal.replay(self.session.store)
        else:
            self.replay_report = None
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if session_ttl <= 0:
            raise ValueError(f"session_ttl must be positive, got {session_ttl}")
        self.max_sessions = int(max_sessions)
        self.session_ttl = float(session_ttl)
        #: sid -> live streaming session; all access under ``self.lock``.
        self.sessions: dict[str, _SessionState] = {}  # guarded-by: lock
        #: Lifetime session counters; totals survive session close so
        #: /v1/metrics can report work already done, not just open state.
        self.session_totals = {  # guarded-by: lock
            "opened": 0,
            "closed": 0,
            "expired": 0,
            "rejected": 0,
            "edits": 0,
            "nodes_rehashed": 0,
            "corpus_nodes_edited": 0,
        }
        self.started_at = time.monotonic()
        #: Serialises store-touching work across handler threads.
        self.lock = threading.Lock()
        #: Serialises checkpoint disk writes across handler threads
        #: (``flush_checkpoint``).  Taken only after ``self.lock`` is
        #: released, never inside it, so checkpoint I/O still cannot
        #: stall the hot path.
        self._flush_lock = threading.Lock()
        #: Highest covered version already written to the checkpoint
        #: file; a flusher that stalled while a newer snapshot landed
        #: (and GC'd the segments between them) must skip its write,
        #: never replace the newer file.  # guarded-by: _flush_lock
        self._flushed_checkpoint_version = 0
        self.requests_served = 0  # guarded-by: lock
        self._httpd = _TrackingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._closed = False
        self._follower: Optional[_FollowerLoop] = None
        if follow is not None:
            if self.session.store is None:
                raise ValueError("a follower needs a store-backed session")
            self._follower = _FollowerLoop(self, follow, poll_interval)

    @property
    def role(self) -> str:
        if self.follow is not None:
            return "follower"
        return "shard" if self.shard_count is not None else "standalone"

    def follower_status(self) -> dict:
        loop = self._follower
        if loop is None:
            return {}
        return {
            "synced_at_age_s": (
                None
                if loop.synced_at is None
                else round(time.monotonic() - loop.synced_at, 3)
            ),
            "last_error": loop.last_error,
            "frames_applied": loop.frames_applied,
            "entries_applied": loop.entries_applied,
        }

    def sync_from_primary(self) -> dict:
        """One synchronous follower catch-up tick (tests, warm boot)."""
        if self._follower is None:
            raise ValueError("this server does not follow a primary")
        return self._follower.sync_once()

    def journal_commit(self) -> None:  # holds-lock: lock
        """Append the un-journaled window; caller holds ``self.lock``.

        When a periodic checkpoint comes due, only the snapshot
        *encode* happens here (it reads the store, so it needs the
        lock); the disk write is deferred to ``flush_checkpoint``,
        which the handler calls after releasing the lock.  Writing a
        multi-megabyte snapshot with fsync under the service lock
        would stall every other handler thread for the duration.
        """
        if self.journal is None:
            return
        self.journal.append_delta(self.session.store)
        if self.checkpoint_every:
            self._interns_since_checkpoint += 1
            if self._interns_since_checkpoint >= self.checkpoint_every:
                self._interns_since_checkpoint = 0
                self._pending_checkpoint = (
                    self.journal.encode_checkpoint(self.session.store),
                    self.session.store.version,
                )

    # repro-lint: allow[lock-blocking] reason=the flush lock exists to serialize checkpoint fsync+rename+GC among handler threads off the service lock; only concurrent flushers ever wait on it
    def flush_checkpoint(self) -> Optional[dict]:
        """Write any checkpoint ``journal_commit`` deferred; I/O off
        the service lock.

        Returns the journal GC report, or ``None`` if nothing was
        pending (or a newer checkpoint already reached disk).  Crash-
        safe at every interleaving: the pending bytes are a prefix of
        the already-fsync'd journal, so losing them merely means the
        next recovery replays a few more frames.  Concurrent flushers
        are serialized by ``_flush_lock``, and version-ordered: a
        flusher that swapped out checkpoint vN, stalled while another
        wrote vM > N (whose GC dropped the segments covering (N, M]),
        then woke up, must not ``os.replace`` the newer snapshot with
        its stale one -- recovery would start from vN with the frames
        to reach vM already deleted.
        """
        with self.lock:
            pending, self._pending_checkpoint = self._pending_checkpoint, None
        if pending is None or self.journal is None:
            return None
        data, covered_version = pending
        with self._flush_lock:
            if covered_version <= self._flushed_checkpoint_version:
                return None
            report = self.journal.write_checkpoint(data, covered_version)
            self._flushed_checkpoint_version = covered_version
            return report

    def count_request(self) -> None:
        with self.lock:
            self.requests_served += 1

    # -- streaming session registry (all methods: caller holds self.lock) ------

    def _sweep_sessions(self) -> None:  # holds-lock: lock
        """Expire sessions idle past their TTL (unpins their classes)."""
        now = time.monotonic()
        expired = [
            sid
            for sid, state in self.sessions.items()
            if now - state.last_used > state.ttl
        ]
        for sid in expired:
            self.sessions.pop(sid).stream.close()
            self.session_totals["expired"] += 1

    def open_session(self, corpus, hints, ttl) -> _SessionState:  # holds-lock: lock
        self._sweep_sessions()
        if len(self.sessions) >= self.max_sessions:
            self.session_totals["rejected"] += 1
            raise _RequestError(
                429,
                f"session registry full ({self.max_sessions} open); "
                "close a session or retry later",
            )
        if ttl is None:
            ttl = self.session_ttl
        else:
            try:
                ttl = float(ttl)
            except (TypeError, ValueError):
                raise _RequestError(400, f"bad ttl {ttl!r}") from None
            if ttl <= 0:
                raise _RequestError(400, "ttl must be positive")
            ttl = min(ttl, self.session_ttl)
        # Shard-identity nodes refuse foreign classes and followers
        # never write their primary's id space: both stream in
        # hash-only mode.  Only a standalone store interns + pins.
        intern = self.session.store is not None and self.role == "standalone"
        stream = StreamSession(
            corpus, session=self.session, intern_classes=intern, hints=hints
        )
        sid = uuid.uuid4().hex[:16]
        state = _SessionState(sid, stream, ttl)
        self.sessions[sid] = state
        self.session_totals["opened"] += 1
        return state

    def get_session(self, sid) -> _SessionState:  # holds-lock: lock
        self._sweep_sessions()
        state = self.sessions.get(sid) if isinstance(sid, str) else None
        if state is None:
            raise _RequestError(
                409, f"unknown or expired session {sid!r}: reopen and replay"
            )
        state.last_used = time.monotonic()
        return state

    def note_edit(self, state: _SessionState, report) -> None:  # holds-lock: lock
        totals = self.session_totals
        totals["edits"] += 1
        totals["nodes_rehashed"] += report.nodes_rehashed
        totals["corpus_nodes_edited"] += state.stream.corpus_nodes

    def close_session(self, sid) -> dict:  # holds-lock: lock
        state = self.get_session(sid)
        del self.sessions[sid]
        state.stream.close()
        self.session_totals["closed"] += 1
        return {"closed": True, "session": state.sid, "edits": state.stream.edits}

    def session_metrics(self) -> dict:  # holds-lock: lock
        """The ``sessions`` block of ``/v1/metrics``.

        ``rehash_ratio`` is total nodes rehashed over the corpus nodes
        that *could* have been rehashed (corpus size summed per edit):
        the fleet-level O(spine)/O(corpus) receipt, tiny when
        incremental hashing is winning.
        """
        totals = self.session_totals
        pool = totals["corpus_nodes_edited"]
        store = self.session.store
        return {
            "open": len(self.sessions),
            "max": self.max_sessions,
            "ttl_s": self.session_ttl,
            "opened": totals["opened"],
            "closed": totals["closed"],
            "expired": totals["expired"],
            "rejected": totals["rejected"],
            "edits_served": totals["edits"],
            "nodes_rehashed": totals["nodes_rehashed"],
            "corpus_nodes_edited": pool,
            "rehash_ratio": (
                totals["nodes_rehashed"] / pool if pool else None
            ),
            "pinned_nodes": store.pinned_count if store is not None else 0,
        }

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproServer":
        """Serve on a daemon thread; returns immediately."""
        if self._thread is None:
            self._serving = True
            self._start_follower()
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self._serving = True
        self._start_follower()
        self._httpd.serve_forever()

    def _start_follower(self) -> None:
        if self._follower is not None and not self._follower.is_alive():
            self._follower.start()

    def close(self) -> None:
        """Stop serving, release the socket (and session, if owned).

        Idempotent, and safe on a server whose accept loop never ran
        (``ThreadingHTTPServer.shutdown`` would otherwise block forever
        waiting for a loop that isn't there) -- so signal handlers,
        ``finally`` blocks and context managers can all call it without
        coordination.
        """
        if self._closed:
            return
        self._closed = True
        if self._follower is not None and self._follower.is_alive():
            self._follower.stop()
            self._follower.join(timeout=5)
        if self._serving:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        with self.lock:
            for state in self.sessions.values():
                state.stream.close()
            self.sessions.clear()
        # A checkpoint that came due on the very last request would
        # otherwise be lost to the deferred-write scheme.
        self.flush_checkpoint()
        if self.journal is not None:
            self.journal.close()
        if self._owns_session:
            self.session.close()

    #: ``shutdown`` reads better at call sites that hold a server they
    #: did not start (signal handlers, supervisors); same semantics.
    shutdown = close

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(argv=None) -> int:
    """The ``repro serve`` entry point (see :mod:`repro.cli`)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve a Session over HTTP/JSON: hash/intern corpora "
        "remotely, download the warm store as a snapshot, upload and merge "
        "client snapshots.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8655)
    parser.add_argument(
        "--backend", default="ours", help="unified-registry backend name"
    )
    parser.add_argument("--bits", type=int, default=64)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="default pool size for corpus requests (0 = one per CPU; "
        "default 1, or the snapshot's saved default with --load)",
    )
    parser.add_argument(
        "--parallel-mode",
        choices=("process", "fork", "spawn", "thread"),
        default=None,
    )
    parser.add_argument(
        "--engine", choices=ENGINE_CHOICES, default=None
    )
    parser.add_argument(
        "--num-shards",
        type=int,
        default=None,
        help="back the server with a lock-striped sharded store",
    )
    parser.add_argument(
        "--load", metavar="PATH", help="warm-start from a store snapshot"
    )
    parser.add_argument(
        "--shard-id",
        type=int,
        default=None,
        help="this node's shard index within a hash cluster",
    )
    parser.add_argument(
        "--shard-count",
        type=int,
        default=None,
        help="total shards in the cluster (intern requests whose root "
        "hash this node does not own are rejected with 409)",
    )
    parser.add_argument(
        "--journal",
        metavar="DIR",
        help="write-ahead journal directory: every intern batch appends a "
        "checksummed delta frame before it is acknowledged, and the store "
        "is recovered from DIR (checkpoint + replay) on boot",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="with --journal: snapshot the store into the journal "
        "directory every N intern batches and GC covered segments "
        "(0 = never)",
    )
    parser.add_argument(
        "--follow",
        metavar="URL",
        help="run as a read replica tailing URL's /v1/snapshot/delta",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="replica poll period for --follow (default 0.5)",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        metavar="N",
        help="cap on concurrently open streaming edit sessions "
        "(/v1/session/open answers 429 past it; default 64)",
    )
    parser.add_argument(
        "--session-ttl",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="idle expiry for streaming sessions (default 600)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.journal and args.load:
        parser.error(
            "--journal recovers the store from its own checkpoint; "
            "drop --load (copy the snapshot into DIR as checkpoint.snap "
            "to seed a journaled node)"
        )
    if args.checkpoint_every and not args.journal:
        parser.error("--checkpoint-every needs --journal")

    journal = None
    checkpoint_bytes = None
    if args.journal:
        journal = Journal(args.journal)
        checkpoint_bytes = journal.load_checkpoint_bytes()

    if checkpoint_bytes is not None:
        if args.bits != 64 or args.seed is not None or args.num_shards is not None:
            parser.error(
                "--journal takes bits/seed/store shape from its checkpoint; "
                "drop --bits/--seed/--num-shards"
            )
        session = Session.from_snapshot_bytes(checkpoint_bytes, backend=args.backend)
        overrides = {
            name: value
            for name, value in (
                ("workers", args.workers),
                ("parallel_mode", args.parallel_mode),
                ("engine", args.engine),
            )
            if value is not None
        }
        if overrides:
            session.config = replace(session.config, **overrides)
    elif args.load:
        if args.bits != 64 or args.seed is not None or args.num_shards is not None:
            parser.error(
                "--load takes bits/seed/store shape from the snapshot; "
                "drop --bits/--seed/--num-shards"
            )
        session = Session.load(args.load, backend=args.backend)
        # Scheduling knobs are not store shape: explicit CLI values
        # override the snapshot's saved defaults rather than being
        # silently ignored.
        overrides = {
            name: value
            for name, value in (
                ("workers", args.workers),
                ("parallel_mode", args.parallel_mode),
                ("engine", args.engine),
            )
            if value is not None
        }
        if overrides:
            session.config = replace(session.config, **overrides)
    else:
        session = Session(
            backend=args.backend,
            bits=args.bits,
            seed=args.seed,
            workers=1 if args.workers is None else args.workers,
            parallel_mode=args.parallel_mode or "process",
            engine=args.engine or "auto",
            num_shards=args.num_shards,
        )
    server = ReproServer(
        session,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        shard_id=args.shard_id,
        shard_count=args.shard_count,
        journal=journal,
        checkpoint_every=args.checkpoint_every,
        follow=args.follow,
        poll_interval=args.poll_interval,
        max_sessions=args.max_sessions,
        session_ttl=args.session_ttl,
    )
    entries = len(session.store) if session.store is not None else 0
    shard = (
        f", shard {args.shard_id}/{args.shard_count}"
        if args.shard_count is not None
        else ""
    )
    extras = ""
    if server.replay_report is not None:
        extras += (
            f", journal replayed {server.replay_report['applied']} entries "
            f"to v{server.replay_report['version']}"
        )
    if args.follow:
        extras += f", following {args.follow}"
    print(
        f"repro serve: {server.url} (backend={session.backend.name}, "
        f"bits={session.combiners.bits}, {entries} warm entries{shard}{extras})",
        flush=True,
    )

    # SIGTERM (supervisors, CI teardown) exits through the same clean
    # path as Ctrl-C: the accept loop unwinds, the socket is released,
    # worker pools shut down.  No leaked listeners.
    import signal

    def _on_sigterm(signum, frame):
        raise KeyboardInterrupt

    installed = False
    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
        installed = True
    except ValueError:  # pragma: no cover - not the main thread
        pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if installed and previous is not None:
            signal.signal(signal.SIGTERM, previous)
        server.close()
        session.close()
    return 0
