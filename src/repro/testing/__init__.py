"""Deterministic test doubles for the service stack.

Currently: seeded fault injection (:mod:`repro.testing.faults`) --
schedules, a TCP fault proxy, and a process reaper -- used by
``benchmarks/chaos_smoke.py`` and ``tests/test_faults.py``; and the
runtime lock-order witness (:mod:`repro.testing.lockcheck`) that
records observed lock acquisitions during test runs for
``repro lint --witness`` to audit the static lock-order graph against.
"""

from repro.testing import lockcheck
from repro.testing.faults import (
    Fault,
    FaultSchedule,
    FaultyProxy,
    ProcessReaper,
)

__all__ = [
    "Fault",
    "FaultSchedule",
    "FaultyProxy",
    "ProcessReaper",
    "lockcheck",
]
