"""Deterministic test doubles for the service stack.

Currently: seeded fault injection (:mod:`repro.testing.faults`) --
schedules, a TCP fault proxy, and a process reaper -- used by
``benchmarks/chaos_smoke.py`` and ``tests/test_faults.py``.
"""

from repro.testing.faults import (
    Fault,
    FaultSchedule,
    FaultyProxy,
    ProcessReaper,
)

__all__ = ["Fault", "FaultSchedule", "FaultyProxy", "ProcessReaper"]
