"""Runtime lock-order witness for the static analyzer (`repro lint`).

:func:`install` monkeypatches :func:`threading.Lock` and
:func:`threading.RLock` so that every lock *created by repro code* is
wrapped in a recorder.  While installed, each acquisition is attributed
to its source site -- the ``with`` statement's ``(path, line)`` inside
the ``repro`` package -- and every nested acquisition contributes an
observed ordering edge ``(outer site, inner site)`` per thread.

The record is the ground truth the static lock analysis is audited
against (``repro lint --witness``):

* an observed site the analyzer has no label for, or an observed edge
  missing from the static lock-order graph, means the analyzer under-
  approximates -- a hard CI failure (``witness-gap-site`` /
  ``witness-gap-edge``);
* a static edge never observed is merely reported as stale: over-
  approximation is the analyzer's job, the witness only bounds it.

Design notes:

* Only lock *creation* sites under the repro package are wrapped, so
  pytest's, hypothesis' and the stdlib's own locks stay untouched and
  the overhead lands only where the analyzer looks.
* RLock reentry by the owning thread is counted but not re-recorded:
  reacquisition is not a nesting event, and the static graph likewise
  keeps RLock self-edges out of its cycle findings.
* The recorder's own bookkeeping uses a *real* lock captured before
  patching, so witnessing cannot recurse into itself.
* Acquisitions on threads with no repro frame on the stack (stdlib
  worker internals) are unattributable and skipped.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from typing import Optional

FORMAT = "repro-lockcheck-v1"

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock

_THIS_FILE = os.path.abspath(__file__)


def _package_root() -> str:
    """Parent of the ``repro`` package: site paths are relative to it,
    matching the static analyzer's ``default_root``."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class _Recorder:
    """Shared observation state; one per :func:`install`."""

    def __init__(self) -> None:
        self.root = _package_root()
        self.sites: set = set()  # {(path, line)}
        self.edges: set = set()  # {((path, line), (path, line))}
        self.mutex = _REAL_LOCK()
        self.tls = threading.local()

    def held_stack(self) -> list:
        stack = getattr(self.tls, "stack", None)
        if stack is None:
            stack = self.tls.stack = []
        return stack

    def site_of_caller(self) -> Optional[tuple]:
        """The innermost non-lockcheck frame inside the repro package."""
        frame = sys._getframe(2)
        while frame is not None:
            fname = frame.f_code.co_filename
            if fname != _THIS_FILE:
                rel = os.path.relpath(os.path.abspath(fname), self.root)
                rel = rel.replace(os.sep, "/")
                if rel.startswith("repro/"):
                    return (rel, frame.f_lineno)
                if not rel.startswith(".."):
                    # inside the source root but outside the package
                    # (tests driving locks directly): unattributable.
                    return None
            frame = frame.f_back
        return None

    def note_acquired(self, lock: "_WitnessLock") -> None:
        site = self.site_of_caller()
        stack = self.held_stack()
        if site is not None:
            with self.mutex:
                self.sites.add(site)
                for held_site, _held_lock in stack:
                    # Unattributable holds (repro locks driven directly
                    # by test code) are on the stack for balance only;
                    # they have no site to hang an edge on.
                    if held_site is not None:
                        self.edges.add((held_site, site))
        # Push even an unattributable hold so release stays balanced.
        stack.append((site, lock))
        # Remember which thread's stack holds the entry: a plain Lock
        # may legally be released from a different thread, and the
        # stale entry must be removable from over there.
        lock._holder_stack = stack

    def note_released(self, lock: "_WitnessLock") -> None:
        stack = self.held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][1] is lock:
                del stack[i]
                return
        # Cross-thread release (acquire on thread A, release on thread
        # B -- legal for threading.Lock): drop the hold from the
        # acquiring thread's stack, or it would seed spurious witness
        # edges (and grow) forever.  The recorder mutex serializes this
        # removal against that thread's own edge scans; the owner only
        # ever *appends* outside the mutex, which never shifts the
        # indices scanned here.
        other = getattr(lock, "_holder_stack", None)
        if other is not None and other is not stack:
            with self.mutex:
                for i in range(len(other) - 1, -1, -1):
                    if other[i][1] is lock:
                        del other[i]
                        return

    def as_dict(self) -> dict:
        with self.mutex:
            return {
                "format": FORMAT,
                "sites": [list(s) for s in sorted(self.sites)],
                "edges": [
                    [list(a), list(b)] for a, b in sorted(self.edges)
                ],
            }


class _WitnessLock:
    """Wraps one Lock/RLock created by repro code."""

    def __init__(self, recorder: _Recorder, reentrant: bool):
        self._recorder = recorder
        self._reentrant = reentrant
        self._lock = _REAL_RLOCK() if reentrant else _REAL_LOCK()
        self._owner: Optional[int] = None
        self._count = 0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._reentrant and self._owner == me:
            self._lock.acquire()
            self._count += 1
            return True
        got = self._lock.acquire(blocking, timeout)
        if got:
            if self._reentrant:
                self._owner = me
                self._count = 1
            self._recorder.note_acquired(self)
        return got

    def release(self) -> None:
        if self._reentrant:
            if self._owner != threading.get_ident():
                # Not the owner: the underlying RLock raises without
                # touching any state, so the recorder must not either.
                self._lock.release()
                return
            self._count -= 1
            if self._count == 0:
                self._owner = None
                self._recorder.note_released(self)
        else:
            self._recorder.note_released(self)
        self._lock.release()

    def locked(self) -> bool:
        if self._reentrant:
            # RLock only grew .locked() in Python 3.14; answer from the
            # tracked owner state instead of delegating.
            return self._count > 0
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        kind = "RLock" if self._reentrant else "Lock"
        return f"<witness {kind} {self._lock!r}>"


_installed: Optional[_Recorder] = None
_depth = 0


def _from_repro(root: str) -> bool:
    """Was the patched factory called from repro code?"""
    frame = sys._getframe(2)
    while frame is not None:
        fname = frame.f_code.co_filename
        if fname != _THIS_FILE:
            rel = os.path.relpath(os.path.abspath(fname), root)
            return rel.replace(os.sep, "/").startswith("repro/")
        frame = frame.f_back
    return False


def install() -> _Recorder:
    """Patch the lock factories.

    Installs nest: a second :func:`install` (a witness test running
    inside an already-witnessed pytest session) returns the live
    recorder, and only the matching outermost :func:`uninstall`
    restores the real factories.
    """
    global _installed, _depth
    if _installed is not None:
        _depth += 1
        return _installed
    recorder = _Recorder()

    def make_lock():
        if _from_repro(recorder.root):
            return _WitnessLock(recorder, reentrant=False)
        return _REAL_LOCK()

    def make_rlock():
        if _from_repro(recorder.root):
            return _WitnessLock(recorder, reentrant=True)
        return _REAL_RLOCK()

    threading.Lock = make_lock
    threading.RLock = make_rlock
    _installed = recorder
    _depth = 1
    return recorder


def uninstall() -> None:
    """Undo one :func:`install`; the outermost restores the real
    factories (already-wrapped locks keep working)."""
    global _installed, _depth
    if _installed is None:
        return
    _depth -= 1
    if _depth > 0:
        return
    threading.Lock = _REAL_LOCK
    threading.RLock = _REAL_RLOCK
    _installed = None
    _depth = 0


def active() -> Optional[_Recorder]:
    return _installed


def dump(path: str, recorder: Optional[_Recorder] = None) -> dict:
    """Write the witness record as ``repro-lockcheck-v1`` JSON."""
    recorder = recorder or _installed
    if recorder is None:
        raise RuntimeError("lockcheck is not installed")
    doc = recorder.as_dict()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc
