"""Deterministic fault injection for the service/cluster stack.

Chaos testing is only worth having if a failure reproduces: a flaky
harness that kills a different process at a different moment every run
cannot gate CI.  Everything here is therefore driven by a *seeded
schedule* -- :class:`FaultSchedule` expands a seed into an explicit,
printable list of :class:`Fault` events ("refuse connection 3",
"inject 80ms latency into connection 7", "cut connection 12 mid-body",
"SIGKILL shard-0 after batch 5"), and the two enforcement mechanisms
replay that list exactly:

* :class:`FaultyProxy` -- a real TCP proxy in front of a node.  Clients
  connect to the proxy; the schedule decides per accepted connection
  whether to refuse (close before reading), delay (sleep before
  forwarding), or cut (forward only half the response body, then RST).
  Network faults happen at the socket layer, below the HTTP client, so
  retry/failover code faces the same torn reads a real network yields.

* :class:`ProcessReaper` -- SIGKILLs a *named* subprocess when the
  workload reaches the scheduled batch.  SIGKILL, not SIGTERM: the
  point is that no atexit/finally handler runs, exactly like a kernel
  OOM-kill or power loss, which is what the write-ahead journal must
  survive.

The schedule is pure data; ``repr`` of a schedule is its full event
list, so a failing CI run's log contains everything needed to replay
it locally with the same ``--fault-seed``.
"""

from __future__ import annotations

import random
import select
import signal
import socket
import threading
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Fault",
    "FaultSchedule",
    "FaultyProxy",
    "ProcessReaper",
]

#: Fault kinds a schedule may emit, in one place so typos fail loudly.
KINDS = ("refuse", "delay", "cut", "kill")


@dataclass(frozen=True)
class Fault:
    """One scheduled fault event.

    ``at`` is the index the fault fires on: the Nth accepted connection
    for network faults, the Nth completed batch for ``kill``.
    ``arg`` is kind-specific: delay seconds for ``delay``, the fraction
    of the response body to forward before cutting for ``cut``, the
    target process name for ``kill``.
    """

    kind: str
    at: int
    arg: object = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass
class FaultSchedule:
    """A seed expanded into an explicit fault event list.

    ``from_seed`` draws a reproducible mix of network faults over a
    window of connections; the constructor also accepts a hand-written
    event list for targeted tests.  Lookup is by kind + index, so the
    enforcement sites stay trivial::

        schedule = FaultSchedule.from_seed(1234, connections=40)
        if schedule.network_fault(conn_index) ...
        if schedule.kill_after_batch(batch_index) ...
    """

    events: list[Fault] = field(default_factory=list)
    seed: Optional[int] = None

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        connections: int = 50,
        fault_rate: float = 0.25,
        max_delay_s: float = 0.08,
        kill_target: Optional[str] = None,
        kill_after_batch: Optional[int] = None,
    ) -> "FaultSchedule":
        """Expand ``seed`` into a deterministic event list.

        Roughly ``fault_rate`` of the first ``connections`` accepted
        connections get a network fault, split evenly across refuse /
        delay / cut by further draws.  The same seed always yields the
        same list -- ``random.Random(seed)``, no global state.
        """
        rng = random.Random(seed)
        events: list[Fault] = []
        for index in range(connections):
            if rng.random() >= fault_rate:
                continue
            kind = rng.choice(("refuse", "delay", "cut"))
            if kind == "refuse":
                events.append(Fault("refuse", index))
            elif kind == "delay":
                events.append(
                    Fault("delay", index, round(rng.uniform(0.01, max_delay_s), 4))
                )
            else:
                events.append(Fault("cut", index, round(rng.uniform(0.1, 0.9), 3)))
        if kill_target is not None:
            if kill_after_batch is None:
                raise ValueError("kill_target needs kill_after_batch")
            events.append(Fault("kill", kill_after_batch, kill_target))
        return cls(events=events, seed=seed)

    def network_fault(self, conn_index: int) -> Optional[Fault]:
        """The fault for the Nth accepted connection, if any."""
        for event in self.events:
            if event.at == conn_index and event.kind in ("refuse", "delay", "cut"):
                return event
        return None

    def kill_after_batch(self, batch_index: int) -> Optional[Fault]:
        """The kill event firing once batch ``batch_index`` completes."""
        for event in self.events:
            if event.kind == "kill" and event.at == batch_index:
                return event
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = f"FaultSchedule(seed={self.seed}, {len(self.events)} events)"
        return head + "".join(
            f"\n  {e.kind}@{e.at}" + (f" arg={e.arg}" if e.arg is not None else "")
            for e in self.events
        )


class FaultyProxy:
    """A TCP proxy that injects the schedule's network faults.

    Sits between a client and an upstream ``(host, port)``; each
    accepted connection consults ``schedule.network_fault(n)`` for its
    fate.  Healthy connections are byte-forwarded both ways until
    either side closes -- the proxy adds no protocol knowledge, so it
    works for any HTTP exchange the service speaks.

    ``cut`` faults forward the request upstream, then relay only
    ``arg`` (fraction) of the response bytes seen in the first read
    burst before hard-closing both sockets -- the client observes a
    mid-body disconnect *after* the server did the work, the nastiest
    retry case (the retry must be idempotent; interning is, by
    construction).
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        schedule: FaultSchedule,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.upstream = (upstream_host, upstream_port)
        self.schedule = schedule
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.listener.bind((host, port))
        self.listener.listen(32)
        self.connections = 0
        self.faults_fired: list[Fault] = []
        self.lock = threading.Lock()
        self._closed = False
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="faulty-proxy-accept", daemon=True
        )

    @property
    def host(self) -> str:
        return self.listener.getsockname()[0]

    @property
    def port(self) -> int:
        return self.listener.getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "FaultyProxy":
        self._accept_thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.listener.close()
        except OSError:  # pragma: no cover - already gone
            pass
        for thread in self._threads:
            thread.join(timeout=2)

    def __enter__(self) -> "FaultyProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self.listener.accept()
            except OSError:
                return  # listener closed
            with self.lock:
                index = self.connections
                self.connections += 1
            fault = self.schedule.network_fault(index)
            if fault is not None:
                with self.lock:
                    self.faults_fired.append(fault)
            thread = threading.Thread(
                target=self._serve_conn,
                args=(conn, fault),
                name=f"faulty-proxy-conn-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _serve_conn(self, conn: socket.socket, fault: Optional[Fault]) -> None:
        try:
            if fault is not None and fault.kind == "refuse":
                # Close before reading a byte: the client sees a reset /
                # empty response, the same signature as a dead listener.
                self._hard_close(conn)
                return
            if fault is not None and fault.kind == "delay":
                threading.Event().wait(float(fault.arg))
            upstream = socket.create_connection(self.upstream, timeout=10)
        except OSError:
            self._hard_close(conn)
            return
        try:
            if fault is not None and fault.kind == "cut":
                self._serve_cut(conn, upstream, float(fault.arg))
            else:
                self._pump(conn, upstream)
        finally:
            self._hard_close(conn)
            self._hard_close(upstream)

    def _pump(self, client: socket.socket, upstream: socket.socket) -> None:
        """Forward bytes both ways until either side closes."""
        sockets = [client, upstream]
        peer = {client: upstream, upstream: client}
        while True:
            readable, _, _ = select.select(sockets, [], [], 10)
            if not readable:
                return
            for sock in readable:
                try:
                    data = sock.recv(65536)
                except OSError:
                    return
                if not data:
                    return
                try:
                    peer[sock].sendall(data)
                except OSError:
                    return

    def _serve_cut(
        self, client: socket.socket, upstream: socket.socket, fraction: float
    ) -> None:
        """Forward the request, then cut the response mid-body."""
        # Relay the full client request (requests are small; one read
        # burst of up to 1MB covers every wire call the client makes
        # before it waits on the reply).
        client.settimeout(5)
        try:
            request = client.recv(1 << 20)
            if request:
                upstream.sendall(request)
            upstream.settimeout(10)
            response = upstream.recv(1 << 20)
        except OSError:
            return
        keep = max(1, int(len(response) * fraction)) if response else 0
        try:
            if keep:
                client.sendall(response[:keep])
        except OSError:
            pass
        # Hard close (RST via SO_LINGER 0) so the client cannot mistake
        # the truncation for a complete short reply.
        self._hard_close(client, rst=True)

    @staticmethod
    def _hard_close(sock: socket.socket, rst: bool = False) -> None:
        try:
            if rst:
                import struct

                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            sock.close()
        except OSError:
            pass


class ProcessReaper:
    """SIGKILL a named process when the workload hits its batch mark.

    The chaos driver registers subprocesses by name and calls
    :meth:`after_batch` as the workload progresses; when the schedule
    says ``kill@N target``, the target dies with ``SIGKILL`` --
    no shutdown path runs, which is the fault model the journal is
    built for.  Returns the fired event so the driver can log it and
    later assert recovery.
    """

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        self.processes: dict[str, object] = {}
        self.killed: list[str] = []

    def register(self, name: str, process) -> None:
        """``process`` needs ``pid`` and ``poll()`` (subprocess.Popen)."""
        self.processes[name] = process

    def after_batch(self, batch_index: int) -> Optional[Fault]:
        event = self.schedule.kill_after_batch(batch_index)
        if event is None:
            return None
        name = str(event.arg)
        process = self.processes.get(name)
        if process is None or name in self.killed:
            return None
        import os

        os.kill(process.pid, signal.SIGKILL)
        process.wait()
        self.killed.append(name)
        return event
