"""Let inlining: the inverse of CSE.

``inline_lets`` replaces ``let x = e1 in e2`` by ``e2[x := e1]``
(capture-avoidingly), bottom-up, optionally filtered by a predicate.
Two uses:

* as a normaliser in tests: ``inline_lets(cse(e).expr)`` must be
  alpha-equivalent to ``inline_lets(e)`` -- a purely syntactic proof
  that the CSE pass only introduced sharing, never changed the term;
* as a library pass in its own right (compilers inline cheap or
  single-use bindings all the time); ``max_uses``/``max_size`` give the
  standard knobs.

Note the usual caveat: under call-by-value, inlining can duplicate or
drop *work* (and with partial primitives, change error behaviour); like
CSE it preserves values of pure total programs, which is what the
alpha-equivalence normalisation argument needs.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.lang.expr import App, Expr, Lam, Let, Lit, Var
from repro.lang.subst import substitute

__all__ = ["inline_lets", "count_uses"]


def count_uses(body: Expr, name: str) -> int:
    """Number of free occurrences of ``name`` in ``body``.

    Scope-aware: occurrences under a shadowing binder do not count, and
    a ``let`` binding of the same name shadows only its body.
    """
    uses = 0
    shadow = 0
    # ops: ("visit", node) | ("bind", None) | ("unbind", None)
    stack: list[tuple[str, object]] = [("visit", body)]
    while stack:
        op, payload = stack.pop()
        if op == "bind":
            shadow += 1
            continue
        if op == "unbind":
            shadow -= 1
            continue
        node = payload
        assert isinstance(node, Expr)
        if isinstance(node, Var):
            if node.name == name and shadow == 0:
                uses += 1
        elif isinstance(node, Lam):
            if node.binder == name:
                stack.append(("unbind", None))
                stack.append(("visit", node.body))
                stack.append(("bind", None))
            else:
                stack.append(("visit", node.body))
        elif isinstance(node, App):
            stack.append(("visit", node.arg))
            stack.append(("visit", node.fn))
        elif isinstance(node, Let):
            if node.binder == name:
                # the binder shadows the body only; bound is unshadowed.
                stack.append(("unbind", None))
                stack.append(("visit", node.body))
                stack.append(("bind", None))
                stack.append(("visit", node.bound))
            else:
                stack.append(("visit", node.body))
                stack.append(("visit", node.bound))
        # Lit: nothing to do.
    return uses


def inline_lets(
    expr: Expr,
    should_inline: Optional[Callable[[Let, int], bool]] = None,
    max_uses: Optional[int] = None,
    max_size: Optional[int] = None,
) -> Expr:
    """Inline let bindings bottom-up.

    ``should_inline(let_node, uses)`` decides per binding (after its
    children have already been processed); the default inlines
    everything, filtered by the convenience knobs:

    * ``max_uses`` -- only inline bindings used at most this many times
      (``max_uses=1`` is the classic always-safe single-use inline);
    * ``max_size`` -- only inline bound expressions up to this size.

    Unused bindings (``uses == 0``) are dropped outright (dead-code
    elimination), subject to the same predicate.
    """

    def default_predicate(node: Let, uses: int) -> bool:
        if max_uses is not None and uses > max_uses:
            return False
        if max_size is not None and node.bound.size > max_size:
            return False
        return True

    predicate = should_inline if should_inline is not None else default_predicate

    results: list[Expr] = []
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, visited = stack.pop()
        if not visited:
            stack.append((node, True))
            for child in reversed(node.children()):
                stack.append((child, False))
            continue
        if isinstance(node, (Var, Lit)):
            results.append(node)
        elif isinstance(node, Lam):
            body = results.pop()
            results.append(node if body is node.body else Lam(node.binder, body))
        elif isinstance(node, App):
            arg = results.pop()
            fn = results.pop()
            if fn is node.fn and arg is node.arg:
                results.append(node)
            else:
                results.append(App(fn, arg))
        else:
            assert isinstance(node, Let)
            body = results.pop()
            bound = results.pop()
            uses = count_uses(body, node.binder)
            if predicate(node, uses):
                if uses == 0:
                    results.append(body)
                else:
                    results.append(substitute(body, {node.binder: bound}))
            elif bound is node.bound and body is node.body:
                results.append(node)
            else:
                results.append(Let(node.binder, bound, body))
    assert len(results) == 1
    return results[0]
