"""AST-to-graph preprocessing for machine learning (Section 1, 2).

The paper lists "pre-processing for machine learning, where
subexpression equivalence can be used as an additional feature, for
example by turning an AST into a graph with equality links" (the
Allamanis et al. program-graph style).  This module builds that graph
with :mod:`networkx`:

* one graph node per AST occurrence (keyed by its path),
* ``child`` edges from parent to child, attributed with the child index,
* ``alpha_equal`` link edges chaining the members of every
  alpha-equivalence class (chained, not cliqued, so the edge count stays
  linear in the class size).

Node attributes carry the AST ``kind``, a short ``label`` (variable
name, binder, literal), the subtree ``size`` and the class id, ready for
feature extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import networkx as nx

from repro.apps._session_args import resolve_session
from repro.core.combiners import HashCombiners
from repro.core.equivalence import equivalence_classes
from repro.core.hashed import alpha_hash_all
from repro.lang.expr import Expr, Lam, Let, Lit, Var
from repro.lang.traversal import preorder_with_paths

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import Session

__all__ = ["ast_to_graph", "GraphStats", "graph_stats"]


def _label(node: Expr) -> str:
    if isinstance(node, Var):
        return node.name
    if isinstance(node, Lit):
        return repr(node.value)
    if isinstance(node, (Lam, Let)):
        return node.binder
    return ""


def ast_to_graph(
    expr: Expr,
    combiners: Optional[HashCombiners] = None,
    equality_links: bool = True,
    min_class_size: int = 2,
    verify: bool = False,
    session: Optional["Session"] = None,
) -> "nx.DiGraph":
    """Build the program graph of ``expr``.

    ``min_class_size`` sets the smallest subtree (in AST nodes) whose
    equivalence class receives ``alpha_equal`` links; bare variables are
    skipped by default.  ``verify=True`` routes classes through the
    exact-equality check first.  Passing a :class:`~repro.api.Session`
    hashes through its store, so graphs built over a corpus with shared
    subtrees summarise each unique subtree once.
    """
    combiners, _store = resolve_session(session, combiners, None)
    if session is not None:
        hashes = session.hashes(expr)
    else:
        hashes = alpha_hash_all(expr, combiners)
    graph = nx.DiGraph()

    for path, node in preorder_with_paths(expr):
        graph.add_node(
            path,
            kind=node.kind,
            label=_label(node),
            size=node.size,
            alpha_hash=hashes.hash_of(node),
        )
        if path:
            graph.add_edge(path[:-1], path, kind="child", index=path[-1])

    if equality_links:
        classes = equivalence_classes(
            expr,
            combiners,
            min_count=2,
            min_size=min_class_size,
            verify=verify,
            hashes=hashes,
        )
        for class_id, cls in enumerate(classes):
            members = [path for path, _ in cls.occurrences]
            for path in members:
                graph.nodes[path]["class_id"] = class_id
            for a, b in zip(members, members[1:]):
                graph.add_edge(a, b, kind="alpha_equal", class_id=class_id)
    return graph


@dataclass
class GraphStats:
    """Summary statistics of a program graph."""

    nodes: int
    child_edges: int
    equality_edges: int
    classes: int

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"GraphStats(nodes={self.nodes}, child={self.child_edges}, "
            f"alpha_equal={self.equality_edges}, classes={self.classes})"
        )


def graph_stats(graph: "nx.DiGraph") -> GraphStats:
    """Count node/edge kinds of a graph built by :func:`ast_to_graph`."""
    child = 0
    equal = 0
    classes: set[int] = set()
    for _, _, data in graph.edges(data=True):
        if data.get("kind") == "child":
            child += 1
        elif data.get("kind") == "alpha_equal":
            equal += 1
            classes.add(data["class_id"])
    return GraphStats(
        nodes=graph.number_of_nodes(),
        child_edges=child,
        equality_edges=equal,
        classes=len(classes),
    )
