"""Common subexpression elimination modulo alpha-equivalence (Section 1).

The paper's motivating application: find alpha-equivalent subexpression
classes and bind one copy with a ``let``::

    (a + (v+7)) * (v+7)        ~>   let w = v+7 in (a + w) * w
    foo (\\x.x+7) (\\y.y+7)      ~>   let h = \\x.x+7 in foo h h

The pass is greedy: each round hashes all subexpressions (O(n log n)),
picks the most profitable class, binds it at the lowest common ancestor
(LCA) of its occurrences, and repeats until no profitable class remains.

Soundness
---------
* **Scope.**  Occurrences are alpha-equivalent, so they have identical
  free-variable *names*; with unique binders each such name has a single
  binding site, which is an ancestor of every occurrence and therefore
  an ancestor of their LCA -- so every free variable of the shared term
  is in scope at the LCA.  (A defensive check verifies this each round.)
* **Non-overlap.**  Two distinct alpha-equivalent subtrees have equal
  size and hence cannot nest, so simultaneous replacement is safe.
* **Semantics.**  In this pure language, binding a term once and
  referring to it by name preserves values (call-by-value may evaluate
  a shared term that a lambda body would have skipped, which can only
  matter for non-total primitives such as ``div`` -- the standard CSE
  caveat).  The test-suite checks evaluation before/after on closed
  expressions.
* **Progress.**  A class with ``k`` occurrences of size ``s`` shrinks
  the program by ``(k-1)(s-1) - 2`` nodes; only classes with a strict
  positive saving are rewritten, so the loop terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.apps._session_args import resolve_session
from repro.core.combiners import HashCombiners
from repro.core.equivalence import EquivalenceClass, equivalence_classes
from repro.lang.expr import Expr, Let, Var
from repro.lang.names import NameSupply, all_names, binder_names, free_vars, has_unique_binders, uniquify_binders
from repro.lang.traversal import replace_at, subexpression_at

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import Session
    from repro.store import ExprStore

__all__ = ["cse", "CSEResult", "CSERound", "class_saving"]


def class_saving(cls: EquivalenceClass) -> int:
    """Net node-count reduction from rewriting ``cls``.

    Replacing ``k`` occurrences of an ``s``-node term with variables
    removes ``k*(s-1)`` nodes and adds a ``Let`` plus one bound copy
    (``s + 1`` nodes): saving ``(k-1)*(s-1) - 2``.
    """
    k, s = cls.count, cls.node_size
    return (k - 1) * (s - 1) - 2


@dataclass
class CSERound:
    """What one greedy round did."""

    representative_size: int
    occurrence_count: int
    binder: str
    lca_path: tuple[int, ...]
    saving: int


@dataclass
class CSEResult:
    """Outcome of :func:`cse`."""

    expr: Expr
    original_size: int
    rounds: list[CSERound] = field(default_factory=list)

    @property
    def final_size(self) -> int:
        return self.expr.size

    @property
    def nodes_saved(self) -> int:
        return self.original_size - self.final_size

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CSEResult(rounds={len(self.rounds)}, "
            f"{self.original_size} -> {self.final_size} nodes)"
        )


def cse(
    expr: Expr,
    combiners: Optional[HashCombiners] = None,
    min_size: int = 3,
    max_rounds: int = 10_000,
    verify_classes: bool = True,
    binder_prefix: str = "cse",
    store: Optional["ExprStore"] = None,
    session: Optional["Session"] = None,
) -> CSEResult:
    """Eliminate alpha-equivalent common subexpressions from ``expr``.

    ``min_size`` skips trivially small terms (bare variables and
    literals are never worth binding); ``verify_classes`` re-checks
    candidate classes exactly, making the pass sound for any hash width.
    Binders are uniquified up front if needed (Section 2.2's
    preprocessing -- without it, name-overloaded terms like the two
    ``x+2`` in the paper's example would be falsely shared).

    Each greedy round hashes through an :class:`~repro.store.ExprStore`
    (a private one unless ``store`` is supplied): a rewrite rebuilds only
    the spine above the touched sites, so the store's summary memo serves
    every off-spine subtree from cache instead of re-summarising the
    whole program per round.  Passing a :class:`~repro.api.Session`
    instead supplies both its combiners and its store (equivalent to
    ``session.cse(expr)``).
    """
    combiners, store = resolve_session(session, combiners, store)
    if not has_unique_binders(expr):
        expr = uniquify_binders(expr)

    owns_store = store is None
    if owns_store:
        from repro.store import ExprStore

        store = ExprStore(combiners)
    else:
        store.resolve_combiners(combiners)

    supply = NameSupply(reserved=all_names(expr))
    result = CSEResult(expr=expr, original_size=expr.size)

    for _ in range(max_rounds):
        classes = equivalence_classes(
            result.expr,
            min_count=2,
            min_size=min_size,
            verify=verify_classes,
            hashes=store.hashes(result.expr),
        )
        target = _best_profitable(classes)
        if target is None:
            break
        result.expr = _rewrite_class(result.expr, target, supply, result.rounds, binder_prefix)
        if owns_store:
            # Release dead spines from earlier rounds; a caller-supplied
            # store may be caching for others, so only prune our own.
            store.prune_memo([result.expr])
    return result


def _best_profitable(classes: list[EquivalenceClass]) -> Optional[EquivalenceClass]:
    """The profitable class with the largest saving (ties: larger terms
    first, which the sort order of ``equivalence_classes`` provides)."""
    best = None
    best_saving = 0
    for cls in classes:
        saving = class_saving(cls)
        if saving > best_saving:
            best = cls
            best_saving = saving
    return best


def _rewrite_class(
    expr: Expr,
    cls: EquivalenceClass,
    supply: NameSupply,
    rounds: list[CSERound],
    binder_prefix: str,
) -> Expr:
    paths = [path for path, _ in cls.occurrences]
    lca = _common_prefix(paths)
    _check_scope(expr, cls.representative, lca)

    binder = supply.fresh(binder_prefix)
    # Replace deeper paths first so shallower spine rebuilds see them.
    for path in sorted(paths, key=len, reverse=True):
        expr = replace_at(expr, path, Var(binder))
    shared_site = subexpression_at(expr, lca)
    expr = replace_at(expr, lca, Let(binder, cls.representative, shared_site))

    rounds.append(
        CSERound(
            representative_size=cls.node_size,
            occurrence_count=cls.count,
            binder=binder,
            lca_path=lca,
            saving=class_saving(cls),
        )
    )
    return expr


def _common_prefix(paths: list[tuple[int, ...]]) -> tuple[int, ...]:
    prefix = paths[0]
    for path in paths[1:]:
        limit = min(len(prefix), len(path))
        i = 0
        while i < limit and prefix[i] == path[i]:
            i += 1
        prefix = prefix[:i]
    return prefix


def _check_scope(expr: Expr, representative: Expr, lca: tuple[int, ...]) -> None:
    """Defensive check: every free variable of the shared term that is
    bound anywhere in ``expr`` must be bound by an ancestor of the LCA."""
    needed = free_vars(representative)
    if not needed:
        return
    bound_anywhere = set(binder_names(expr))
    needed_bound = needed & bound_anywhere
    if not needed_bound:
        return
    in_scope: set[str] = set()
    node = expr
    for index in lca:
        if node.kind in ("Lam", "Let"):
            in_scope.add(node.binder)  # type: ignore[union-attr]
        node = node.children()[index]
    missing = needed_bound - in_scope
    if missing:  # pragma: no cover - guarded against by construction
        raise AssertionError(
            f"CSE scope violation: {sorted(missing)} not in scope at {lca}"
        )
