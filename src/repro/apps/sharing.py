"""Structure sharing / hash-consing (Sections 1, 2.2, 2.3).

Represent "all occurrences of the same subexpression by a pointer to a
single shared tree".  Two flavours:

* :func:`share_syntactic` -- classic hash-consing on *syntactic*
  equality ("perfect for structure sharing", Section 2.2).  The unique
  table memoises node constructors, exactly as Section 2.3 describes.
* :func:`share_alpha` -- sharing modulo *alpha*-equivalence, the
  stronger variant Weirich et al. note falls out of a nameless body
  representation; driven by :class:`repro.store.ExprStore`, whose
  canonical entries *are* the shared DAG: every subexpression is
  replaced by the canonical representative of its alpha-equivalence
  class, so ``\\x.x+1`` and ``\\y.y+1`` share.  (The shared tree keeps
  the representative's binder names; that is sound for read-only
  consumers, which is what structure sharing is for.)  Pass a store to
  share across many expressions -- repeated calls reuse its canonical
  table and summary memo.

Both return a :class:`SharingResult` with the DAG root and occupancy
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.apps._session_args import resolve_session
from repro.core.combiners import HashCombiners
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var
from repro.lang.traversal import postorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import Session
    from repro.store import ExprStore

__all__ = ["SharingResult", "share_syntactic", "share_alpha", "share_alpha_corpus"]


@dataclass
class SharingResult:
    """A DAG-ified expression plus sharing statistics.

    ``root`` is semantically identical to the input but subtree objects
    are shared: DAG occupancy is ``unique_nodes`` while the unfolded tree
    still has ``total_nodes``.
    """

    root: Expr
    total_nodes: int
    unique_nodes: int

    @property
    def sharing_ratio(self) -> float:
        """total/unique: >1 means memory was saved."""
        return self.total_nodes / self.unique_nodes if self.unique_nodes else 1.0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SharingResult({self.total_nodes} tree nodes -> "
            f"{self.unique_nodes} DAG nodes, x{self.sharing_ratio:.2f})"
        )


def _dag_size(root: Expr) -> int:
    """Number of *distinct* node objects reachable from ``root``."""
    seen: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node.children())
    return len(seen)


def share_syntactic(expr: Expr) -> SharingResult:
    """Hash-cons ``expr``: syntactically identical subtrees become one
    object.  Keys are (constructor, payload, child identities), so the
    table is exact -- this is memoising the node constructors, with no
    collision risk to manage."""
    table: dict[tuple, Expr] = {}
    rebuilt: list[Expr] = []
    for node in postorder(expr):
        arity = len(node.children())
        kids = tuple(rebuilt[len(rebuilt) - arity :]) if arity else ()
        if arity:
            del rebuilt[len(rebuilt) - arity :]
        if isinstance(node, Var):
            key: tuple = ("v", node.name)
            fresh: Expr = node
        elif isinstance(node, Lit):
            key = ("c", type(node.value).__name__, node.value)
            fresh = node
        elif isinstance(node, Lam):
            key = ("l", node.binder, id(kids[0]))
            fresh = Lam(node.binder, kids[0])
        elif isinstance(node, App):
            key = ("a", id(kids[0]), id(kids[1]))
            fresh = App(kids[0], kids[1])
        else:
            assert isinstance(node, Let)
            key = ("t", node.binder, id(kids[0]), id(kids[1]))
            fresh = Let(node.binder, kids[0], kids[1])
        canonical = table.get(key)
        if canonical is None:
            canonical = fresh
            table[key] = canonical
        rebuilt.append(canonical)
    root = rebuilt[0]
    return SharingResult(root, expr.size, _dag_size(root))


def share_alpha(
    expr: Expr,
    combiners: Optional[HashCombiners] = None,
    store: Optional["ExprStore"] = None,
    session: Optional["Session"] = None,
) -> SharingResult:
    """Share subtrees modulo alpha-equivalence using the paper's hash.

    Every subexpression is replaced by the canonical representative of
    its alpha-equivalence class (first occurrence in postorder), giving
    strictly more sharing than :func:`share_syntactic` whenever the
    expression contains alpha-equivalent-but-not-identical subterms.

    Interning into an :class:`~repro.store.ExprStore` *is* this
    transformation, so the pass is a thin wrapper: a private store per
    call by default, or a caller-supplied one to pool sharing (and hash
    memoisation) across a whole corpus.  Passing a
    :class:`~repro.api.Session` pools through its store (equivalent to
    ``session.share(expr)``).
    """
    combiners, store = resolve_session(session, combiners, store)
    if store is None:
        from repro.store import ExprStore

        store = ExprStore(combiners)
    else:
        store.resolve_combiners(combiners)
    root = store.expr_of(store.intern(expr))
    return SharingResult(root, expr.size, _dag_size(root))


def share_alpha_corpus(
    exprs: list[Expr],
    combiners: Optional[HashCombiners] = None,
    store: Optional["ExprStore"] = None,
    session: Optional["Session"] = None,
    engine: str = "auto",
) -> list[SharingResult]:
    """Batch :func:`share_alpha`: one result per input, one shared pool.

    Equivalent to calling :func:`share_alpha` per item against one
    store, but the corpus is interned in a single batch, so a large
    corpus takes the store's arena bulk-intern fast path (one compile,
    one kernel pass, duplicates never re-walked) instead of one
    tree walk per item.  The canonical DAG is pooled across items:
    sharing spans the whole corpus, exactly as with a shared store.
    """
    combiners, store = resolve_session(session, combiners, store)
    if store is None:
        from repro.store import ExprStore

        store = ExprStore(combiners)
    else:
        store.resolve_combiners(combiners)
    if store.max_entries is not None:
        # An LRU-bounded store may evict early roots (refcount 0)
        # before a batch-then-resolve loop reads them back: share item
        # by item so every root is resolved while it is still pinned.
        return [
            share_alpha(expr, combiners=combiners, store=store)
            for expr in exprs
        ]
    ids = store.intern_many(exprs, engine=engine)
    results = []
    for expr, node_id in zip(exprs, ids):
        root = store.expr_of(node_id)
        results.append(SharingResult(root, expr.size, _dag_size(root)))
    return results
