"""Shared handling of the apps' ``session=`` convenience parameter."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from repro.core.combiners import HashCombiners

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import AsyncSession, Session
    from repro.store import ExprStore

__all__ = ["resolve_session"]


def resolve_session(
    session: Optional[Union["Session", "AsyncSession"]],
    combiners: Optional[HashCombiners],
    store: Optional["ExprStore"],
) -> tuple[Optional[HashCombiners], Optional["ExprStore"]]:
    """The effective ``(combiners, store)`` for an app entry point.

    A session supplies both and excludes passing either explicitly --
    one rule, enforced identically across ``cse``, ``share_alpha`` and
    ``ast_to_graph``.  An :class:`~repro.api.AsyncSession` is accepted
    too: the apps pool through the synchronous session it wraps.
    """
    if session is None:
        return combiners, store
    if combiners is not None or store is not None:
        raise ValueError("pass either a session or combiners/store, not both")
    inner = getattr(session, "session", session)  # unwrap AsyncSession
    return inner.combiners, inner.store
