"""Downstream applications of alpha-hashing (Section 1's motivations)."""

from repro.apps.cse import CSEResult, CSERound, class_saving, cse
from repro.apps.inline import count_uses, inline_lets
from repro.apps.ml_graph import GraphStats, ast_to_graph, graph_stats
from repro.apps.sharing import SharingResult, share_alpha, share_syntactic

__all__ = [
    "CSEResult",
    "CSERound",
    "class_saving",
    "cse",
    "count_uses",
    "inline_lets",
    "GraphStats",
    "ast_to_graph",
    "graph_stats",
    "SharingResult",
    "share_alpha",
    "share_syntactic",
]
