"""Figure 1: e-summaries of ``\\x. (\\b. x b) x``, subexpression by
subexpression.

The paper's Figure 1 is a diagram of the running example: the input
expression (a) and the e-summaries of four of its subexpressions (b-e),
each a Structure (names erased) plus a VarMap (names only there).  This
harness reproduces it textually using the Section 4.6 (naive) summaries
whose position trees print as occurrence-path sets -- matching the
figure's "names only in the VarMap" presentation -- and then shows the
corresponding fast Step-2 hashes, demonstrating what the two-step
pipeline turns each summary into.
"""

from __future__ import annotations

from typing import Sequence

from repro.api import Session
from repro.core.esummary import summarise_all_naive
from repro.core.render import render_esummary
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.lang.traversal import preorder_with_paths

__all__ = ["run_fig1", "main"]

#: The Figure 1 expression.
FIGURE1_SOURCE = r"\x. (\b. x b) x"


def run_fig1(source: str = FIGURE1_SOURCE) -> str:
    """Render the figure for ``source`` (defaults to the paper's)."""
    expr = parse(source)
    summaries = summarise_all_naive(expr)
    hashes = Session().hashes(expr)

    blocks = [f"(a) input expression: {pretty(expr)}", ""]
    label = ord("b")
    for path, node in preorder_with_paths(expr):
        header = (
            f"({chr(label)}) subexpression at {path or 'root'}: "
            f"{pretty(node, max_len=50)}"
        )
        blocks.append(header)
        blocks.append(_indent(render_esummary(summaries[id(node)])))
        blocks.append(_indent(f"Step-2 hash: 0x{hashes.hash_of(node):016x}"))
        blocks.append("")
        label += 1
    return "\n".join(blocks)


def _indent(text: str) -> str:
    return "\n".join("    " + line for line in text.splitlines())


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--expr", default=FIGURE1_SOURCE, help="alternative expression to render"
    )
    args = parser.parse_args(argv)
    print(run_fig1(args.expr))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
