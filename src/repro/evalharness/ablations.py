"""Ablations: how much each design choice of the algorithm buys.

Three load-bearing choices from DESIGN.md, each ablated:

* **Smaller-subtree merge (Section 4.8).**
  :func:`~repro.baselines.ablated.alpha_hash_all_always_left` always
  folds the argument/body map into the function/bound map, regardless
  of size.  On unbalanced trees the merge work goes quadratic --
  exactly the problem Section 4.8 fixes.

* **XOR-maintained map hash (Section 5.2).**
  :func:`~repro.baselines.ablated.alpha_hash_all_recompute_vm` keeps
  the same maps but recomputes the variable-map hash from scratch at
  every node, "prohibitively (indeed asymptotically) slow" per the
  paper: O(n * avg-map-size) instead of O(1) per update.

* **StructureTag vs Appendix C.**  The tagged algorithm and the
  lazy-linear-transform variant have the same asymptotics; the ablation
  times both to show the constant-factor trade.

The variant implementations live in :mod:`repro.baselines.ablated` and
are resolved -- like every other hashing algorithm -- through the
unified :mod:`repro.api.backends` registry; this module only times
them.  The old module-level ``ABLATION_VARIANTS`` registry is a
deprecated shim over that unified registry.

The harness times all variants on the unbalanced family (where the
differences are starkest) and prints fitted slopes.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.complexity import loglog_slope
from repro.analysis.timing import time_call
from repro.api.backends import ABLATION_ORDER, get_backend
from repro.baselines.ablated import (  # noqa: F401 -- compatibility re-exports
    alpha_hash_all_always_left,
    alpha_hash_all_recompute_vm,
)
from repro.evalharness.config import current_profile
from repro.evalharness.format import format_seconds, format_table
from repro.gen.random_exprs import random_expr

__all__ = [
    "alpha_hash_all_always_left",
    "alpha_hash_all_recompute_vm",
    "AblationResult",
    "run_ablations",
    "sweep_label",
    "main",
]


#: The sweep's historical display labels, which predate the unified
#: registry ("ours" is labelled "Ours" there, from Table 1).  Keeping
#: them stable keeps regenerated ablation tables -- and the deprecated
#: shim below -- byte-compatible with previously published output.
_SWEEP_LABELS = {"ours": "Ours (full)", "lazy": "Appendix C variant"}


def sweep_label(key: str) -> str:
    """The historical display label of one ablation-sweep variant."""
    return _SWEEP_LABELS.get(key, get_backend(key).label)


def __getattr__(name: str):
    if name == "ABLATION_VARIANTS":
        warnings.warn(
            "repro.evalharness.ablations.ABLATION_VARIANTS is deprecated; "
            "resolve backends through the unified registry instead "
            "(repro.api.backends.get_backend / repro.api.Session)",
            DeprecationWarning,
            stacklevel=2,
        )
        return {
            key: (sweep_label(key), get_backend(key).hash_all)
            for key in ABLATION_ORDER
        }
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class AblationResult:
    """Timing series per variant on one family."""

    shape: str
    sizes: list[int]
    seconds: dict[str, list[float]]

    def format(self) -> str:
        headers = ["n"] + [sweep_label(k) for k in self.seconds]
        rows: list[list[object]] = []
        for i, n in enumerate(self.sizes):
            rows.append(
                [n] + [format_seconds(self.seconds[k][i]) for k in self.seconds]
            )
        slope_row: list[object] = ["slope"]
        for k in self.seconds:
            slope_row.append(f"{loglog_slope(self.sizes, self.seconds[k]):.2f}")
        rows.append(slope_row)
        title = f"Ablations ({self.shape} trees): wall-clock per variant"
        return format_table(headers, rows, title=title)


def run_ablations(
    sizes: Optional[Sequence[int]] = None,
    shape: str = "unbalanced",
    variants: Sequence[str] = ABLATION_ORDER,
    scale: str | None = None,
    seed: int = 0,
) -> AblationResult:
    """Time every ablation variant across sizes."""
    profile = current_profile(scale)
    if sizes is None:
        # The quadratic ablations need smaller caps than the full sweep.
        sizes = tuple(n for n in profile.fig2_sizes if n <= 16384)
    backends = {key: get_backend(key) for key in variants}
    result = AblationResult(shape, list(sizes), {k: [] for k in variants})
    for n in sizes:
        expr = random_expr(n, seed=seed ^ n, shape=shape)
        for key, backend in backends.items():
            timing = time_call(
                lambda: backend.hash_all(expr), repeats=profile.repeats
            )
            result.seconds[key].append(timing.best)
    return result


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=None, help="ci | small | paper")
    parser.add_argument(
        "--shape", choices=("balanced", "unbalanced"), default="unbalanced"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    print(run_ablations(shape=args.shape, scale=args.scale, seed=args.seed).format())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
