"""Ablations: how much each design choice of the algorithm buys.

Three load-bearing choices from DESIGN.md, each ablated:

* **Smaller-subtree merge (Section 4.8).**
  :func:`alpha_hash_all_always_left` always folds the argument/body map
  into the function/bound map, regardless of size.  On unbalanced trees
  the merge work goes quadratic -- exactly the problem Section 4.8
  fixes.

* **XOR-maintained map hash (Section 5.2).**
  :func:`alpha_hash_all_recompute_vm` keeps the same maps but recomputes
  the variable-map hash from scratch at every node, "prohibitively
  (indeed asymptotically) slow" per the paper: O(n * avg-map-size)
  instead of O(1) per update.

* **StructureTag vs Appendix C.**  The tagged algorithm and the
  lazy-linear-transform variant have the same asymptotics; the ablation
  times both to show the constant-factor trade.

The harness times all variants on the unbalanced family (where the
differences are starkest) and prints fitted slopes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.analysis.complexity import loglog_slope
from repro.analysis.timing import time_call
from repro.core.combiners import HashCombiners, default_combiners
from repro.core.hashed import AlphaHashes, alpha_hash_all
from repro.core.linear_lazy import alpha_hash_all_lazy
from repro.core.position_tree import pt_here_hash, pt_join_hash
from repro.core.structure import (
    sapp_hash,
    slam_hash,
    slet_hash,
    slit_hash,
    svar_hash,
    top_hash,
)
from repro.core.varmap import HashedVarMap, MapOpStats, entry_hash
from repro.evalharness.config import current_profile
from repro.evalharness.format import format_seconds, format_table
from repro.gen.random_exprs import random_expr
from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = [
    "alpha_hash_all_always_left",
    "alpha_hash_all_recompute_vm",
    "ABLATION_VARIANTS",
    "run_ablations",
    "main",
]


def _summarise_generic(
    expr: Expr,
    combiners: HashCombiners,
    merge_left_always: bool,
    recompute_vm_hash: bool,
    stats: Optional[MapOpStats] = None,
) -> AlphaHashes:
    """The fast summariser with ablation switches.

    Mirrors :func:`repro.core.hashed.alpha_hash_all`; kept separate so
    the production path stays branch-free.
    """
    here = pt_here_hash(combiners)
    var_structure = svar_hash(combiners)
    count_ops = stats is not None

    by_id: dict[int, int] = {}
    results: list[tuple[int, HashedVarMap]] = []
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, visited = stack.pop()
        if not visited:
            stack.append((node, True))
            for child in reversed(node.children()):
                stack.append((child, False))
            continue

        if isinstance(node, Var):
            s_hash = var_structure
            varmap = HashedVarMap.singleton(combiners, node.name, here)
            if count_ops:
                stats.singleton += 1
        elif isinstance(node, Lit):
            s_hash = slit_hash(combiners, node.value)
            varmap = HashedVarMap.empty()
        elif isinstance(node, Lam):
            s_body, varmap = results.pop()
            pos = varmap.remove(combiners, node.binder)
            if count_ops:
                stats.remove += 1
            s_hash = slam_hash(combiners, node.size, pos, s_body)
        elif isinstance(node, App):
            s_arg, vm_arg = results.pop()
            s_fn, vm_fn = results.pop()
            if merge_left_always:
                left_bigger = True
            else:
                left_bigger = len(vm_fn) >= len(vm_arg)
            s_hash = sapp_hash(combiners, node.size, left_bigger, s_fn, s_arg)
            big, small = (vm_fn, vm_arg) if left_bigger else (vm_arg, vm_fn)
            if count_ops:
                stats.merge_entries += len(small)
            _fold(combiners, big, small, node.size)
            varmap = big
        elif isinstance(node, Let):
            s_body, vm_body = results.pop()
            s_bound, vm_bound = results.pop()
            pos_x = vm_body.remove(combiners, node.binder)
            if count_ops:
                stats.remove += 1
            if merge_left_always:
                left_bigger = True
            else:
                left_bigger = len(vm_bound) >= len(vm_body)
            s_hash = slet_hash(
                combiners, node.size, pos_x, left_bigger, s_bound, s_body
            )
            big, small = (vm_bound, vm_body) if left_bigger else (vm_body, vm_bound)
            if count_ops:
                stats.merge_entries += len(small)
            _fold(combiners, big, small, node.size)
            varmap = big
        else:  # pragma: no cover
            raise TypeError(f"unknown node kind {node.kind}")

        if recompute_vm_hash:
            vm_hash = varmap.recomputed_hash(combiners)
            varmap.hash = vm_hash
        else:
            vm_hash = varmap.hash
        by_id[id(node)] = top_hash(combiners, s_hash, vm_hash)
        results.append((s_hash, varmap))
    assert len(results) == 1
    return AlphaHashes(expr, combiners, by_id)


def _fold(
    combiners: HashCombiners, big: HashedVarMap, small: HashedVarMap, tag: int
) -> None:
    entries = big.entries
    acc = big.hash
    for name, small_pos in small.entries.items():
        old_pos = entries.get(name)
        new_pos = pt_join_hash(combiners, tag, old_pos, small_pos)
        if old_pos is not None:
            acc ^= entry_hash(combiners, name, old_pos)
        entries[name] = new_pos
        acc ^= entry_hash(combiners, name, new_pos)
    big.hash = acc


def alpha_hash_all_always_left(
    expr: Expr,
    combiners: Optional[HashCombiners] = None,
    stats: Optional[MapOpStats] = None,
) -> AlphaHashes:
    """Ablation: merge right-into-left regardless of map sizes.

    Still a correct alpha-hash (the merge policy is deterministic), but
    the Lemma 6.1 bound no longer applies: unbalanced trees degrade to
    quadratic merge work.
    """
    if combiners is None:
        combiners = default_combiners()
    return _summarise_generic(
        expr, combiners, merge_left_always=True, recompute_vm_hash=False, stats=stats
    )


def alpha_hash_all_recompute_vm(
    expr: Expr,
    combiners: Optional[HashCombiners] = None,
    stats: Optional[MapOpStats] = None,
) -> AlphaHashes:
    """Ablation: recompute the variable-map hash from scratch per node.

    Produces bit-identical hashes to the production algorithm (the XOR
    aggregate is the same value either way) while paying the
    O(map size) cost the incremental maintenance avoids.
    """
    if combiners is None:
        combiners = default_combiners()
    return _summarise_generic(
        expr, combiners, merge_left_always=False, recompute_vm_hash=True, stats=stats
    )


#: name -> (label, callable) for the timing sweep.
ABLATION_VARIANTS: dict[str, tuple[str, Callable]] = {
    "ours": ("Ours (full)", lambda e, c=None: alpha_hash_all(e, c)),
    "always_left": (
        "no smaller-subtree merge",
        lambda e, c=None: alpha_hash_all_always_left(e, c),
    ),
    "recompute_vm": (
        "no XOR maintenance",
        lambda e, c=None: alpha_hash_all_recompute_vm(e, c),
    ),
    "lazy": ("Appendix C variant", lambda e, c=None: alpha_hash_all_lazy(e, c)),
}


@dataclass
class AblationResult:
    """Timing series per variant on one family."""

    shape: str
    sizes: list[int]
    seconds: dict[str, list[float]]

    def format(self) -> str:
        headers = ["n"] + [ABLATION_VARIANTS[k][0] for k in self.seconds]
        rows: list[list[object]] = []
        for i, n in enumerate(self.sizes):
            rows.append(
                [n] + [format_seconds(self.seconds[k][i]) for k in self.seconds]
            )
        slope_row: list[object] = ["slope"]
        for k in self.seconds:
            slope_row.append(f"{loglog_slope(self.sizes, self.seconds[k]):.2f}")
        rows.append(slope_row)
        title = f"Ablations ({self.shape} trees): wall-clock per variant"
        return format_table(headers, rows, title=title)


def run_ablations(
    sizes: Optional[Sequence[int]] = None,
    shape: str = "unbalanced",
    variants: Sequence[str] = tuple(ABLATION_VARIANTS),
    scale: str | None = None,
    seed: int = 0,
) -> AblationResult:
    """Time every ablation variant across sizes."""
    profile = current_profile(scale)
    if sizes is None:
        # The quadratic ablations need smaller caps than the full sweep.
        sizes = tuple(n for n in profile.fig2_sizes if n <= 16384)
    result = AblationResult(shape, list(sizes), {k: [] for k in variants})
    for n in sizes:
        expr = random_expr(n, seed=seed ^ n, shape=shape)
        for key in variants:
            fn = ABLATION_VARIANTS[key][1]
            timing = time_call(lambda: fn(expr), repeats=profile.repeats)
            result.seconds[key].append(timing.best)
    return result


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=None, help="ci | small | paper")
    parser.add_argument(
        "--shape", choices=("balanced", "unbalanced"), default="unbalanced"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    print(run_ablations(shape=args.shape, scale=args.scale, seed=args.seed).format())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
