"""Table 1: the algorithm matrix, with its claims verified empirically.

The paper's Table 1 lists each algorithm's time complexity and whether
it yields only true positives / true negatives.  This harness prints the
matrix and *checks* the two boolean columns:

* the true-negative probe is the Section 2.4 false-negative example
  (``\\t. foo (\\x.x+t) (\\y.\\x.x+t)``: the two inner lambdas are
  alpha-equivalent and must hash equal);
* the true-positive probe is the Section 2.4 false-positive example
  (``\\t. foo (\\x.t*(x+1)) (\\y.\\x.y*(x+1))``: the two inner lambdas are
  *not* alpha-equivalent and must hash differently);
* plus randomized probes: alpha-renamed random expressions must collide
  (for true-negative algorithms) and random non-equivalent same-size
  expressions must not (for true-positive ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.api.backends import TABLE1_ORDER, get_backend
from repro.evalharness.format import format_table
from repro.gen.random_exprs import alpha_rename, random_expr
from repro.lang.alpha import alpha_equivalent
from repro.lang.expr import Expr
from repro.lang.parser import parse

__all__ = ["Table1Row", "run_table1", "main"]

_FALSE_NEG_PROBE = r"\t. foo (\x. x + t) (\y. \x2. x2 + t)"
_FALSE_POS_PROBE = r"\t. foo (\x. t * (x + 1)) (\y. \x2. y * (x2 + 1))"


@dataclass
class Table1Row:
    """One algorithm's claimed and observed properties."""

    name: str
    label: str
    paper_complexity: str
    claimed_true_pos: bool
    claimed_true_neg: bool
    observed_true_pos: bool
    observed_true_neg: bool

    @property
    def consistent(self) -> bool:
        return (
            self.claimed_true_pos == self.observed_true_pos
            and self.claimed_true_neg == self.observed_true_neg
        )


def _inner_lams(expr: Expr) -> tuple[Expr, Expr]:
    """The two probe sub-lambdas of the Section 2.4 examples."""
    first = expr.body.fn.arg  # type: ignore[union-attr]
    second = expr.body.arg.body  # type: ignore[union-attr]
    assert first.kind == "Lam" and second.kind == "Lam"
    return first, second


def _observe(name: str, random_trials: int, seed: int) -> tuple[bool, bool]:
    """(true_positives, true_negatives) as observed on the probes."""
    algorithm = get_backend(name)

    # True negatives: alpha-equivalent things must collide.
    true_neg = True
    probe = parse(_FALSE_NEG_PROBE)
    a, b = _inner_lams(probe)
    hashes = algorithm(probe)
    if hashes.hash_of(a) != hashes.hash_of(b):
        true_neg = False
    for trial in range(random_trials):
        expr = random_expr(120 + trial, seed=seed + trial, shape="balanced")
        renamed = alpha_rename(expr, seed=trial)
        if algorithm(expr).root_hash != algorithm(renamed).root_hash:
            true_neg = False
            break

    # True positives: non-alpha-equivalent things must not collide.
    true_pos = True
    probe = parse(_FALSE_POS_PROBE)
    a, b = _inner_lams(probe)
    hashes = algorithm(probe)
    if hashes.hash_of(a) == hashes.hash_of(b):
        true_pos = False
    for trial in range(random_trials):
        e1 = random_expr(90 + trial, seed=seed + 1000 + trial, shape="balanced")
        e2 = random_expr(90 + trial, seed=seed + 2000 + trial, shape="balanced")
        if alpha_equivalent(e1, e2):
            continue
        if algorithm(e1).root_hash == algorithm(e2).root_hash:
            true_pos = False
            break
    return true_pos, true_neg


def run_table1(
    algorithms: Sequence[str] = TABLE1_ORDER,
    random_trials: int = 25,
    seed: int = 0,
) -> list[Table1Row]:
    """Build (and verify) the Table 1 rows."""
    rows = []
    for name in algorithms:
        backend = get_backend(name)
        if backend.algorithm is None:
            raise ValueError(
                f"backend {name!r} carries no Table 1 metadata "
                f"(kind={backend.kind!r})"
            )
        algorithm = backend.algorithm
        observed_tp, observed_tn = _observe(name, random_trials, seed)
        rows.append(
            Table1Row(
                name=name,
                label=algorithm.label,
                paper_complexity=algorithm.paper_complexity,
                claimed_true_pos=algorithm.true_positives,
                claimed_true_neg=algorithm.true_negatives,
                observed_true_pos=observed_tp,
                observed_true_neg=observed_tn,
            )
        )
    return rows


def format_rows(rows: Sequence[Table1Row]) -> str:
    def yn(flag: bool) -> str:
        return "Yes" if flag else "No"

    table_rows = [
        [
            row.label,
            row.paper_complexity,
            yn(row.claimed_true_pos),
            yn(row.observed_true_pos),
            yn(row.claimed_true_neg),
            yn(row.observed_true_neg),
            "ok" if row.consistent else "MISMATCH",
        ]
        for row in rows
    ]
    title = "Table 1: algorithms (claimed vs empirically observed)"
    headers = [
        "Algorithm",
        "Complexity",
        "True pos.",
        "(observed)",
        "True neg.",
        "(observed)",
        "check",
    ]
    return format_table(headers, table_rows, title=title)


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=25)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    rows = run_table1(random_trials=args.trials, seed=args.seed)
    print(format_rows(rows))
    return 0 if all(r.consistent for r in rows) else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
