"""Figure 3: hashing time on the BERT workload as layers scale.

The expression size grows linearly with the layer count (loop
unrolling); the paper shows Locally Nameless diverging quadratically
while Ours stays near the incorrect baselines.  Same four series as
Figure 2, swept over layer counts instead of random sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.complexity import loglog_slope
from repro.analysis.timing import time_call
from repro.baselines.registry import ALGORITHMS, TABLE1_ORDER
from repro.evalharness.config import current_profile
from repro.evalharness.format import format_seconds, format_table
from repro.workloads.bert import bert_target_nodes, build_bert

__all__ = ["Fig3Result", "run_fig3", "main"]


@dataclass
class Fig3Result:
    """Timing series over BERT layer counts."""

    layers: list[int]
    sizes: list[int]
    seconds: dict[str, list[Optional[float]]]

    def slope(self, algorithm: str) -> Optional[float]:
        pairs = [
            (n, t)
            for n, t in zip(self.sizes, self.seconds[algorithm])
            if t is not None
        ]
        if len(pairs) < 2:
            return None
        return loglog_slope(
            [n for n, _ in pairs], [t for _, t in pairs], tail=len(pairs)
        )

    def format(self) -> str:
        headers = ["layers", "n"] + [
            ALGORITHMS[name].label + ("" if ALGORITHMS[name].correct else "*")
            for name in self.seconds
        ]
        rows: list[list[object]] = []
        for i, (layers, n) in enumerate(zip(self.layers, self.sizes)):
            row: list[object] = [layers, n]
            for name in self.seconds:
                t = self.seconds[name][i]
                row.append(format_seconds(t) if t is not None else "-")
            rows.append(row)
        slope_row: list[object] = ["slope", ""]
        for name in self.seconds:
            s = self.slope(name)
            slope_row.append(f"{s:.2f}" if s is not None else "-")
        rows.append(slope_row)
        title = (
            "Figure 3: time to hash all subexpressions, BERT layer sweep\n"
            "(* = incorrect equivalence classes; slope vs n,"
            " 1 = linear, 2 = quadratic)"
        )
        return format_table(headers, rows, title=title)


def run_fig3(
    layer_counts: Optional[Sequence[int]] = None,
    algorithms: Sequence[str] = TABLE1_ORDER,
    scale: str | None = None,
    repeats: int | None = None,
) -> Fig3Result:
    """Measure the BERT sweep."""
    profile = current_profile(scale)
    if layer_counts is None:
        layer_counts = profile.fig3_layers
    if repeats is None:
        repeats = profile.repeats

    layers = list(layer_counts)
    sizes = [bert_target_nodes(l) for l in layers]
    result = Fig3Result(layers, sizes, {name: [] for name in algorithms})
    for l in layers:
        expr = build_bert(l)
        for name in algorithms:
            if name == "locally_nameless" and l > profile.fig3_ln_max_layers:
                result.seconds[name].append(None)
                continue
            algorithm = ALGORITHMS[name]
            timing = time_call(lambda: algorithm(expr), repeats=repeats)
            result.seconds[name].append(timing.best)
    return result


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=None, help="ci | small | paper")
    args = parser.parse_args(argv)
    print(run_fig3(scale=args.scale).format())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
