"""Figure 4 / Appendix B: empirical hash-collision frequency.

For each expression size, counts root-hash collisions between pairs of
non-alpha-equivalent expressions -- random pairs and adversarial pairs
(Appendix B.1) -- at a small hash width, and compares against

* the perfect-hash floor (1 collision per 2^b trials in expectation);
* the Theorem 6.7 upper bound (10n / 2^b).

The paper's claims this harness reproduces:

* random pairs collide at roughly the perfect-hash floor, independent of n;
* adversarial pairs collide increasingly often as n grows;
* both stay well below the theoretical bound.

The appendix uses b=16 and 10*2^16 trials per cell; the default
profiles use fewer trials at b=12, which shows the same ordering in
seconds instead of hours (results are scaled to per-2^16-trials units
regardless).  Use ``--scale paper`` for the full-size run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.collisions import (
    CollisionResult,
    collision_experiment,
    perfect_hash_expectation,
    theorem_bound,
)
from repro.evalharness.config import current_profile
from repro.evalharness.format import format_table

__all__ = ["Fig4Result", "run_fig4", "main"]


@dataclass
class Fig4Result:
    """Collision counts per size for both pair families."""

    bits: int
    trials: int
    sizes: list[int]
    random_results: list[CollisionResult]
    adversarial_results: list[CollisionResult]

    def format(self) -> str:
        headers = [
            "n",
            "random /2^16",
            "adversarial /2^16",
            "perfect floor",
            "Thm 6.7 bound",
        ]
        floor = perfect_hash_expectation(self.bits)
        rows: list[list[object]] = []
        for i, n in enumerate(self.sizes):
            rows.append(
                [
                    n,
                    f"{self.random_results[i].per_2_16:.2f}",
                    f"{self.adversarial_results[i].per_2_16:.2f}",
                    f"{floor:.2f}",
                    f"{theorem_bound(n, self.bits):.1f}",
                ]
            )
        title = (
            f"Figure 4: collisions per 2^16 trials "
            f"(b={self.bits}, {self.trials} trials/cell)"
        )
        return format_table(headers, rows, title=title)


def run_fig4(
    sizes: Optional[Sequence[int]] = None,
    trials: Optional[int] = None,
    bits: Optional[int] = None,
    scale: str | None = None,
    seed: int = 0,
) -> Fig4Result:
    """Run the collision experiment for both pair families."""
    profile = current_profile(scale)
    if sizes is None:
        sizes = profile.fig4_sizes
    if trials is None:
        trials = profile.fig4_trials
    if bits is None:
        bits = profile.fig4_bits

    random_results = []
    adversarial_results = []
    for n in sizes:
        random_results.append(
            collision_experiment("random", n, trials, bits=bits, seed=seed)
        )
        adversarial_results.append(
            collision_experiment("adversarial", n, trials, bits=bits, seed=seed)
        )
    return Fig4Result(bits, trials, list(sizes), random_results, adversarial_results)


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=None, help="ci | small | paper")
    parser.add_argument("--trials", type=int, default=None)
    parser.add_argument("--bits", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    result = run_fig4(
        trials=args.trials, bits=args.bits, scale=args.scale, seed=args.seed
    )
    print(result.format())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
