"""Plain-text table rendering for the experiment harnesses.

The paper presents results as log-log plots and tables; since this
reproduction is judged on *shape* (who wins, by what factor, where the
crossovers are), every harness prints an aligned text table with the
same rows/series the paper plots, plus fitted-slope annotations where
the paper draws guide lines.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_seconds", "format_ms"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned table; numbers right-aligned, text left-aligned."""
    columns = len(headers)
    texts = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in texts:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i in range(columns):
            cell = cells[i] if i < len(cells) else ""
            if _is_numeric(cell):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in texts)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _is_numeric(text: str) -> bool:
    if not text:
        return False
    try:
        float(text)
        return True
    except ValueError:
        return text in ("-", "n/a")


def format_seconds(seconds: float) -> str:
    """Human scale: µs under 1 ms, ms under 1 s, else seconds."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.2f} s"


def format_ms(seconds: float) -> str:
    """Milliseconds with Table 2's precision."""
    ms = seconds * 1e3
    if ms < 0.1:
        return f"{ms:.3f}"
    if ms < 10:
        return f"{ms:.2f}"
    return f"{ms:.1f}"
