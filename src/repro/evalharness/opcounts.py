"""Lemma 6.1/6.2 experiment: counting variable-map operations.

The complexity proof's load-bearing fact is *not* about wall-clock: it
bounds the **number of map operations** the summariser performs by
O(n log n) (Lemma 6.1 for the App-node merges, Lemma 6.2 adding the one
op per Var/Lam node).  This harness instruments the summariser and
reports ops/n for growing n -- which should grow like log n, i.e. by a
constant increment each time n quadruples -- on both tree shapes.

It also demonstrates the "smaller subtree" optimisation (Section 4.8)
by comparing against a variant that always merges the right map into
the left regardless of size: on unbalanced trees the total ops go
quadratic without the optimisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.combiners import default_combiners
from repro.core.hashed import alpha_hash_all
from repro.core.varmap import MapOpStats
from repro.baselines.ablated import alpha_hash_all_always_left
from repro.evalharness.config import current_profile
from repro.evalharness.format import format_table
from repro.gen.random_exprs import random_expr

__all__ = ["OpCountRow", "run_opcounts", "main"]


@dataclass
class OpCountRow:
    """Operation counts at one size."""

    size: int
    shape: str
    smaller_subtree_ops: int
    #: None when the quadratic ablation was skipped at this size.
    always_left_ops: Optional[int]

    @property
    def ops_per_node(self) -> float:
        return self.smaller_subtree_ops / self.size

    @property
    def lemma_bound(self) -> float:
        """The n log2 n quantity Lemma 6.1 compares against."""
        return self.size * math.log2(max(self.size, 2))


def run_opcounts(
    sizes: Optional[Sequence[int]] = None,
    shape: str = "unbalanced",
    scale: str | None = None,
    seed: int = 0,
    always_left_cap: int = 16384,
) -> list[OpCountRow]:
    """Count map operations for both merge policies across sizes.

    The always-left ablation is quadratic on unbalanced inputs, so it is
    skipped (``always_left_ops=None``) above ``always_left_cap`` nodes.
    """
    profile = current_profile(scale)
    if sizes is None:
        sizes = profile.opcount_sizes

    rows = []
    for n in sizes:
        expr = random_expr(n, seed=seed ^ n, shape=shape)
        stats = MapOpStats()
        alpha_hash_all(expr, default_combiners(), stats=stats)
        left_total: Optional[int] = None
        if n <= always_left_cap:
            stats_left = MapOpStats()
            alpha_hash_all_always_left(expr, default_combiners(), stats=stats_left)
            left_total = stats_left.total
        rows.append(
            OpCountRow(
                size=n,
                shape=shape,
                smaller_subtree_ops=stats.total,
                always_left_ops=left_total,
            )
        )
    return rows


def format_rows(rows: Sequence[OpCountRow]) -> str:
    table = []
    for row in rows:
        if row.always_left_ops is None:
            left, blowup = "-", "-"
        else:
            left = row.always_left_ops
            blowup = f"{row.always_left_ops / row.smaller_subtree_ops:.1f}x"
        table.append(
            [
                row.size,
                row.smaller_subtree_ops,
                f"{row.ops_per_node:.2f}",
                f"{row.lemma_bound:.0f}",
                left,
                blowup,
            ]
        )
    shape = rows[0].shape if rows else "?"
    title = (
        f"Lemma 6.1/6.2: map operations, {shape} trees\n"
        "(ops/n should grow ~log n; 'always-left' disables the"
        " smaller-subtree optimisation)"
    )
    headers = [
        "n",
        "ops (smaller-subtree)",
        "ops/n",
        "n log2 n",
        "ops (always-left)",
        "blowup",
    ]
    return format_table(headers, table, title=title)


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=None, help="ci | small | paper")
    parser.add_argument(
        "--shape", choices=("balanced", "unbalanced"), default="unbalanced"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    rows = run_opcounts(shape=args.shape, scale=args.scale, seed=args.seed)
    print(format_rows(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
