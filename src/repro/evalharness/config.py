"""Benchmark scale configuration.

The paper's Haskell artefact sweeps to 10^7 nodes and runs 10 * 2^16
collision trials per size; pure Python is ~2 orders of magnitude slower,
so the harnesses take their problem sizes from a scale profile:

* ``ci``    -- seconds-fast, used by the pytest-benchmark suite defaults;
* ``small`` -- a couple of minutes, enough to see every asymptotic
  separation the paper plots (the default for the CLI);
* ``paper`` -- hours; approaches the paper's ranges.

Select with the ``REPRO_BENCH_SCALE`` environment variable or the CLI
``--scale`` flag.  Individual knobs can be overridden per harness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ScaleProfile", "PROFILES", "current_profile"]


@dataclass(frozen=True)
class ScaleProfile:
    """Problem sizes for every harness at one scale."""

    name: str
    #: Figure 2 sweep sizes for the fast algorithms (ours + incorrect ones).
    fig2_sizes: tuple[int, ...]
    #: Cap for the quadratic locally-nameless baseline on balanced trees.
    fig2_ln_max_balanced: int
    #: Cap for locally nameless on unbalanced trees (quadratic blow-up).
    fig2_ln_max_unbalanced: int
    #: Figure 3 BERT layer counts.
    fig3_layers: tuple[int, ...]
    #: Cap (in layers) for locally nameless in the Figure 3 sweep.
    fig3_ln_max_layers: int
    #: Figure 4 expression sizes.
    fig4_sizes: tuple[int, ...]
    #: Figure 4 trials per (family, size) cell.
    fig4_trials: int
    #: Figure 4 hash width (the paper uses 16; smaller widths surface
    #: collisions at lower trial counts with the same qualitative shape).
    fig4_bits: int
    #: Incremental-experiment expression sizes.
    incremental_sizes: tuple[int, ...]
    #: Lemma 6.1 op-count sweep sizes.
    opcount_sizes: tuple[int, ...]
    #: timing repeats per measurement.
    repeats: int


PROFILES: dict[str, ScaleProfile] = {
    "ci": ScaleProfile(
        name="ci",
        fig2_sizes=(64, 256, 1024, 4096, 16384),
        fig2_ln_max_balanced=4096,
        fig2_ln_max_unbalanced=2048,
        fig3_layers=(1, 2, 4),
        fig3_ln_max_layers=2,
        fig4_sizes=(128, 256),
        fig4_trials=150,
        fig4_bits=12,
        incremental_sizes=(1024, 4096, 16384),
        opcount_sizes=(256, 1024, 4096, 16384),
        repeats=1,
    ),
    "small": ScaleProfile(
        name="small",
        fig2_sizes=(64, 256, 1024, 4096, 16384, 65536, 262144),
        fig2_ln_max_balanced=65536,
        fig2_ln_max_unbalanced=8192,
        fig3_layers=(1, 2, 4, 8, 12, 16, 24),
        fig3_ln_max_layers=12,
        fig4_sizes=(128, 256, 512, 1024),
        fig4_trials=600,
        fig4_bits=12,
        incremental_sizes=(1024, 8192, 65536, 262144),
        opcount_sizes=(256, 1024, 4096, 16384, 65536, 262144),
        repeats=3,
    ),
    "paper": ScaleProfile(
        name="paper",
        fig2_sizes=(64, 256, 1024, 4096, 16384, 65536, 262144, 1048576),
        fig2_ln_max_balanced=262144,
        fig2_ln_max_unbalanced=16384,
        fig3_layers=(1, 2, 4, 8, 12, 16, 20, 24),
        fig3_ln_max_layers=24,
        fig4_sizes=(128, 256, 512, 1024, 2048, 4096),
        fig4_trials=655360,  # the appendix's 10 * 2^16
        fig4_bits=16,
        incremental_sizes=(1024, 8192, 65536, 262144, 1048576),
        opcount_sizes=(1024, 4096, 16384, 65536, 262144, 1048576),
        repeats=5,
    ),
}


def current_profile(override: str | None = None) -> ScaleProfile:
    """The active profile: ``override`` > ``$REPRO_BENCH_SCALE`` > ci."""
    name = override or os.environ.get("REPRO_BENCH_SCALE", "ci")
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown scale profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
