"""Figure 2: hashing time vs expression size, random expressions.

Left plot: roughly balanced random trees.  Right plot: wildly unbalanced
trees.  Four series -- Structural*, De Bruijn*, Locally Nameless, Ours
(* marks algorithms that compute an incorrect equivalence relation and
serve as speed floors).

The paper's claims this harness reproduces:

* Ours tracks its log-linear bound on both families;
* Locally Nameless goes clearly quadratic on unbalanced trees (and on
  balanced trees costs an extra log-ish factor over Ours);
* the incorrect algorithms are faster than Ours by a modest constant.

Output: one row per size with seconds per algorithm, then fitted
log-log slopes (the tabular stand-in for the plot's guide lines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.complexity import loglog_slope
from repro.analysis.timing import time_call
from repro.baselines.registry import ALGORITHMS, TABLE1_ORDER
from repro.evalharness.config import current_profile
from repro.evalharness.format import format_seconds, format_table
from repro.gen.random_exprs import random_expr

__all__ = ["Fig2Result", "run_fig2", "main"]


@dataclass
class Fig2Result:
    """Timing series for one expression family."""

    family: str
    sizes: list[int]
    #: algorithm name -> list of seconds aligned with ``sizes`` (None
    #: where the algorithm was capped out).
    seconds: dict[str, list[Optional[float]]]

    def slope(self, algorithm: str) -> Optional[float]:
        pairs = [
            (n, t)
            for n, t in zip(self.sizes, self.seconds[algorithm])
            if t is not None
        ]
        if len(pairs) < 2:
            return None
        return loglog_slope([n for n, _ in pairs], [t for _, t in pairs])

    def format(self) -> str:
        labels = {name: ALGORITHMS[name].label for name in self.seconds}
        headers = ["n"] + [
            labels[name] + ("" if ALGORITHMS[name].correct else "*")
            for name in self.seconds
        ]
        rows = []
        for i, n in enumerate(self.sizes):
            row: list[object] = [n]
            for name in self.seconds:
                t = self.seconds[name][i]
                row.append(format_seconds(t) if t is not None else "-")
            rows.append(row)
        slope_row: list[object] = ["slope"]
        for name in self.seconds:
            s = self.slope(name)
            slope_row.append(f"{s:.2f}" if s is not None else "-")
        rows.append(slope_row)
        title = (
            f"Figure 2 ({self.family}): time to hash all subexpressions\n"
            "(* = incorrect equivalence classes; slope = log-log fit,"
            " 1 = linear, 2 = quadratic)"
        )
        return format_table(headers, rows, title=title)


def run_fig2(
    family: str,
    sizes: Optional[Sequence[int]] = None,
    algorithms: Sequence[str] = TABLE1_ORDER,
    scale: str | None = None,
    repeats: int | None = None,
    seed: int = 0,
) -> Fig2Result:
    """Measure the Figure 2 sweep for ``family`` ('balanced'/'unbalanced')."""
    profile = current_profile(scale)
    if sizes is None:
        sizes = profile.fig2_sizes
    if repeats is None:
        repeats = profile.repeats
    ln_cap = (
        profile.fig2_ln_max_balanced
        if family == "balanced"
        else profile.fig2_ln_max_unbalanced
    )

    result = Fig2Result(family, list(sizes), {name: [] for name in algorithms})
    for n in sizes:
        expr = random_expr(n, seed=seed ^ n, shape=family)
        for name in algorithms:
            algorithm = ALGORITHMS[name]
            if name == "locally_nameless" and n > ln_cap:
                result.seconds[name].append(None)
                continue
            timing = time_call(lambda: algorithm(expr), repeats=repeats)
            result.seconds[name].append(timing.best)
    return result


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--family",
        choices=("balanced", "unbalanced", "both"),
        default="both",
    )
    parser.add_argument("--scale", default=None, help="ci | small | paper")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    families = ("balanced", "unbalanced") if args.family == "both" else (args.family,)
    for family in families:
        print(run_fig2(family, scale=args.scale, seed=args.seed).format())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
