"""Section 6.3 experiment: incremental re-hashing after a local rewrite.

The paper's analysis: after rewriting a subtree at depth ``h``, only the
new subtree and the ``h`` ancestors need new summaries -- O(h^2 + h*f)
work (``f`` = never-bound free variables), or O((log n)^2) on balanced
trees -- versus O(n log n) for re-hashing from scratch.

This harness replaces a small random subtree in expressions of growing
size and reports

* the nodes touched by the incremental update vs the whole-tree size,
* the wall-clock ratio of incremental update vs batch re-hash.

Expected shape: the touched fraction collapses toward zero as n grows
on balanced inputs (logarithmic path), and incremental wins by orders of
magnitude.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.timing import time_call
from repro.api import Session
from repro.core.incremental import IncrementalHasher
from repro.evalharness.config import current_profile
from repro.evalharness.format import format_seconds, format_table
from repro.gen.random_exprs import random_expr
from repro.lang.expr import Expr, Lit, Var
from repro.lang.traversal import preorder_with_paths

__all__ = ["IncrementalRow", "run_incremental", "main"]


@dataclass
class IncrementalRow:
    """One expression size's incremental-vs-batch comparison."""

    size: int
    depth: int
    rewrite_depth: int
    touched_nodes: int
    path_map_entries: int
    incremental_seconds: float
    batch_seconds: float

    @property
    def touched_fraction(self) -> float:
        return self.touched_nodes / self.size

    @property
    def speedup(self) -> float:
        return self.batch_seconds / self.incremental_seconds


def _pick_rewrite_path(expr: Expr, rng: random.Random, max_subtree: int) -> tuple[int, ...]:
    """A random path whose subtree is small (a local rewrite)."""
    candidates = [
        path
        for path, node in preorder_with_paths(expr)
        if node.size <= max_subtree and len(path) >= 1
    ]
    return rng.choice(candidates)


def run_incremental(
    sizes: Optional[Sequence[int]] = None,
    shape: str = "balanced",
    scale: str | None = None,
    seed: int = 0,
    max_subtree: int = 9,
) -> list[IncrementalRow]:
    """Measure incremental update cost across expression sizes."""
    profile = current_profile(scale)
    if sizes is None:
        sizes = profile.incremental_sizes
    rng = random.Random(seed)

    rows = []
    for n in sizes:
        expr = random_expr(n, seed=seed ^ n, shape=shape)
        path = _pick_rewrite_path(expr, rng, max_subtree)
        replacement = Lit(rng.randrange(1000))

        hasher = IncrementalHasher(expr)
        stats = hasher.replace(path, replacement)

        # Wall-clock: a fresh hasher per repetition would re-measure the
        # build; instead re-apply alternating rewrites in place.
        other = Var("fresh_free_var")
        toggle = [replacement, other]
        counter = [0]

        def do_replace() -> None:
            counter[0] += 1
            hasher.replace(path, toggle[counter[0] % 2])

        incremental_time = time_call(do_replace, repeats=max(3, profile.repeats))
        # The batch comparison is a from-scratch pass, so the session
        # deliberately runs storeless (a warm store would not re-hash).
        batch_session = Session(use_store=False)
        batch_time = time_call(
            lambda: batch_session.hashes(hasher.expr), repeats=profile.repeats
        )
        rows.append(
            IncrementalRow(
                size=n,
                depth=expr.depth,
                rewrite_depth=len(path),
                touched_nodes=stats.touched_nodes,
                path_map_entries=stats.path_map_entries,
                incremental_seconds=incremental_time.best,
                batch_seconds=batch_time.best,
            )
        )
    return rows


def format_rows(rows: Sequence[IncrementalRow], shape: str) -> str:
    table = [
        [
            row.size,
            row.rewrite_depth,
            row.touched_nodes,
            f"{row.touched_fraction * 100:.3f}%",
            format_seconds(row.incremental_seconds),
            format_seconds(row.batch_seconds),
            f"{row.speedup:.1f}x",
        ]
        for row in rows
    ]
    title = (
        f"Section 6.3: incremental re-hash after a local rewrite ({shape} trees)"
    )
    headers = [
        "n",
        "rewrite depth",
        "touched nodes",
        "touched %",
        "incremental",
        "batch rehash",
        "speedup",
    ]
    return format_table(headers, table, title=title)


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=None, help="ci | small | paper")
    parser.add_argument("--shape", choices=("balanced", "unbalanced"), default="balanced")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    rows = run_incremental(shape=args.shape, scale=args.scale, seed=args.seed)
    print(format_rows(rows, args.shape))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
