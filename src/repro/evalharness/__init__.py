"""Experiment harnesses regenerating every table and figure of the paper.

One module per artefact:

========  ===========================================  =================
Artefact  Claim reproduced                              Module
========  ===========================================  =================
Table 1   algorithm matrix + true-pos/neg flags         ``table1``
Figure 2  time vs n, balanced & unbalanced random       ``fig2``
Table 2   ms on MNIST CNN / GMM / BERT-12               ``table2``
Figure 3  BERT layer sweep                              ``fig3``
Figure 4  collision counts vs theory (App. B)           ``fig4``
S 6.3     incremental rehash cost                       ``incremental_exp``
L 6.1     map-operation counts                          ``opcounts``
(ours)    design-choice ablations                       ``ablations``
========  ===========================================  =================

Each module has ``run_*`` (programmatic) and ``main`` (CLI) entry
points; ``python -m repro <artefact>`` dispatches to them.
"""

from repro.evalharness.config import PROFILES, ScaleProfile, current_profile

__all__ = ["PROFILES", "ScaleProfile", "current_profile"]
