"""Table 2: milliseconds to hash all subexpressions of the realistic
machine-learning expressions (MNIST CNN n=840, GMM n=1810, BERT-12
n=12975).

The paper's claims this harness reproduces:

* Ours is within a small factor (<= ~4x in the paper) of the incorrect
  De Bruijn baseline on all three workloads;
* Ours beats Locally Nameless decisively on the large BERT expression
  (820 ms vs 3.6 ms in the paper -- two orders of magnitude);
* absolute numbers differ (pure Python vs GHC) but the ordering and the
  growth of the LN gap with n is the result being tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.timing import time_call
from repro.api.backends import TABLE1_ORDER, get_backend
from repro.evalharness.config import current_profile
from repro.evalharness.format import format_ms, format_table
from repro.workloads import TABLE2_WORKLOADS

__all__ = ["Table2Result", "run_table2", "main", "PAPER_TABLE2_MS"]

#: The paper's reported milliseconds, for side-by-side display.
PAPER_TABLE2_MS: dict[str, dict[str, float]] = {
    "structural": {"MNIST CNN": 0.011, "GMM": 0.027, "BERT 12": 0.38},
    "debruijn": {"MNIST CNN": 0.035, "GMM": 0.089, "BERT 12": 1.70},
    "locally_nameless": {"MNIST CNN": 0.30, "GMM": 2.00, "BERT 12": 820.0},
    "ours": {"MNIST CNN": 0.14, "GMM": 0.36, "BERT 12": 3.6},
}


@dataclass
class Table2Result:
    """Measured seconds per (algorithm, workload)."""

    workloads: list[tuple[str, int]]  # (name, node count)
    seconds: dict[str, list[float]]  # algorithm -> aligned with workloads

    def format(self, show_paper: bool = True) -> str:
        headers = ["Algorithm"] + [
            f"{name} (n={n})" for name, n in self.workloads
        ]
        rows: list[list[object]] = []
        for alg_name, series in self.seconds.items():
            backend = get_backend(alg_name)
            # Only Table 1 rows carry a correctness column; plugin or
            # ablation backends (which need not carry `.algorithm` at
            # all) are shown without the asterisk.
            algorithm = getattr(backend, "algorithm", None)
            incorrect = algorithm is not None and not algorithm.correct
            label = backend.label + ("*" if incorrect else "")
            rows.append([label] + [f"{format_ms(t)} ms" for t in series])
            if show_paper and alg_name in PAPER_TABLE2_MS:
                paper = PAPER_TABLE2_MS[alg_name]
                rows.append(
                    ["  (paper)"]
                    + [
                        f"{format_ms(paper[name] / 1e3)} ms"
                        for name, _ in self.workloads
                    ]
                )
        title = (
            "Table 2: time to hash all subexpressions, realistic expressions\n"
            "(* = incorrect equivalence classes)"
        )
        return format_table(headers, rows, title=title)

    def ratio(self, numerator: str, denominator: str, workload: str) -> float:
        index = [name for name, _ in self.workloads].index(workload)
        return self.seconds[numerator][index] / self.seconds[denominator][index]


def run_table2(
    algorithms: Sequence[str] = TABLE1_ORDER,
    scale: str | None = None,
    repeats: int | None = None,
) -> Table2Result:
    """Measure all algorithms on the three Table 2 workloads."""
    profile = current_profile(scale)
    if repeats is None:
        repeats = profile.repeats
    workloads = []
    exprs = []
    for name, (builder, reported) in TABLE2_WORKLOADS.items():
        expr = builder()
        assert expr.size == reported, (name, expr.size, reported)
        workloads.append((name, expr.size))
        exprs.append(expr)

    seconds: dict[str, list[float]] = {}
    for alg_name in algorithms:
        # The unified registry resolves Table 1 rows, ablations and any
        # entry-point plugin backend alike.
        backend = get_backend(alg_name)
        seconds[alg_name] = [
            time_call(
                lambda e=expr: backend.hash_all(e), repeats=repeats
            ).best
            for expr in exprs
        ]
    return Table2Result(workloads, seconds)


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=None, help="ci | small | paper")
    parser.add_argument(
        "--no-paper", action="store_true", help="hide the paper's numbers"
    )
    parser.add_argument(
        "--backend",
        action="append",
        default=[],
        metavar="NAME",
        help="time an extra unified-registry backend alongside the Table 1 "
        "rows (repeatable; entry-point plugins welcome)",
    )
    args = parser.parse_args(argv)
    algorithms = tuple(TABLE1_ORDER) + tuple(
        name for name in args.backend if name not in TABLE1_ORDER
    )
    print(
        run_table2(algorithms=algorithms, scale=args.scale).format(
            show_paper=not args.no_paper
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
