"""Random and adversarial expression generators (Section 7.1, App. B)."""

from repro.gen.adversarial import MIN_ADVERSARIAL_SIZE, adversarial_pair, seed_pair
from repro.gen.random_exprs import (
    FREE_POOL,
    alpha_rename,
    random_balanced,
    random_expr,
    random_unbalanced,
)

__all__ = [
    "MIN_ADVERSARIAL_SIZE",
    "adversarial_pair",
    "seed_pair",
    "FREE_POOL",
    "alpha_rename",
    "random_balanced",
    "random_expr",
    "random_unbalanced",
]
