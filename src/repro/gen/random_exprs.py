"""Random expression generators for the Section 7.1 benchmarks.

Two families, exactly as the paper describes:

* **Balanced trees** -- "at each point generating a Lam or App node with
  equal probability.  Each Lam node has a fresh binder, and at variable
  occurrences we choose one of the in-scope bound variables."  App
  budgets are split near the middle, so depth is O(log n).

* **Wildly unbalanced trees** with very deeply nested binders -- each
  App gives all but a couple of nodes to one child, producing chains of
  depth ~n/2.  "This case is not as unrealistic as it sounds: a
  realistic language will include let bindings, and deeply-nested stacks
  of let expressions are very common in practice"; pass ``p_let > 0`` to
  mix Let nodes in.

Both generators:

* hit the requested node count **exactly** (budgets are threaded through
  an explicit work stack; every leaf costs 1, Lam costs 1 + body, App and
  Let cost 1 + both children);
* bind a distinct fresh name at every binder (the paper's preprocessing
  invariant comes for free);
* never share node objects between positions (required by the
  context-dependent de Bruijn baseline);
* are deterministic given a seed / ``random.Random`` instance.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.lang.expr import App, Expr, Lam, Let, Lit, Var

__all__ = [
    "random_expr",
    "random_balanced",
    "random_unbalanced",
    "alpha_rename",
    "FREE_POOL",
]

#: Free variables used when no binder is in scope (e.g. near the root).
FREE_POOL: tuple[str, ...] = ("f", "g", "h", "p", "q")

_MIN_SPLIT_FRACTION = 0.25  # balanced: each child gets >= 25% of the budget
_UNBALANCED_SMALL_MAX = 3  # unbalanced: the small side gets 1..3 nodes


def random_expr(
    size: int,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    shape: str = "balanced",
    p_lam: float = 0.5,
    p_let: float = 0.0,
    p_lit: float = 0.0,
    free_pool: Sequence[str] = FREE_POOL,
) -> Expr:
    """Generate a random expression with exactly ``size`` nodes.

    ``shape`` is ``"balanced"`` or ``"unbalanced"``; ``p_lam`` is the
    probability of choosing a binder over an application at internal
    positions (Lam, or Let when ``p_let`` of the binder mass is diverted
    to Let); ``p_lit`` replaces that fraction of leaf variables with
    integer literals.
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    if shape not in ("balanced", "unbalanced"):
        raise ValueError(f"shape must be 'balanced' or 'unbalanced', got {shape!r}")
    if rng is None:
        rng = random.Random(seed if seed is not None else 0xC0FFEE)
    if not free_pool:
        raise ValueError("free_pool must not be empty")

    counter = 0
    scope: list[str] = []
    results: list[Expr] = []
    # ops: ("gen", budget) | ("bind", name) | ("unbind", None)
    #      | ("build", (kind, binder))
    stack: list[tuple[str, object]] = [("gen", size)]
    while stack:
        op, payload = stack.pop()
        if op == "unbind":
            scope.pop()
            continue
        if op == "bind":
            scope.append(payload)  # type: ignore[arg-type]
            continue
        if op == "build":
            kind, binder = payload  # type: ignore[misc]
            if kind == "Lam":
                results.append(Lam(binder, results.pop()))
            elif kind == "App":
                arg = results.pop()
                fn = results.pop()
                results.append(App(fn, arg))
            else:
                body = results.pop()
                bound = results.pop()
                results.append(Let(binder, bound, body))
            continue

        budget = payload
        assert isinstance(budget, int)
        if budget == 1:
            if p_lit > 0 and rng.random() < p_lit:
                results.append(Lit(rng.randrange(0, 100)))
            elif scope:
                results.append(Var(rng.choice(scope)))
            else:
                results.append(Var(rng.choice(list(free_pool))))
            continue

        want_binder = budget == 2 or rng.random() < p_lam
        if want_binder:
            use_let = budget >= 3 and p_let > 0 and rng.random() < p_let
            counter += 1
            binder = f"x{counter}"
            if use_let:
                bound_budget, body_budget = _split(rng, budget - 1, shape)
                stack.append(("build", ("Let", binder)))
                stack.append(("unbind", None))
                stack.append(("gen", body_budget))
                # The Let binder scopes over the body only; the bound
                # expression is generated afterwards (LIFO order) in the
                # *outer* scope -- see the op ordering below.
                stack.append(("bind", binder))
                stack.append(("gen", bound_budget))
            else:
                stack.append(("build", ("Lam", binder)))
                stack.append(("unbind", None))
                stack.append(("gen", budget - 1))
                scope.append(binder)
        else:
            fn_budget, arg_budget = _split(rng, budget - 1, shape)
            stack.append(("build", ("App", None)))
            stack.append(("gen", arg_budget))
            stack.append(("gen", fn_budget))
        # Deferred Let binds (pushed above) activate once the bound
        # expression has been generated.
        continue

    assert len(results) == 1 and len(scope) == 0
    return results[0]


def _split(rng: random.Random, total: int, shape: str) -> tuple[int, int]:
    """Split ``total`` (>= 2) into two positive child budgets."""
    if total < 2:
        raise AssertionError("need at least two nodes to split")
    if shape == "balanced":
        low = max(1, int(total * _MIN_SPLIT_FRACTION))
        high = total - low
        if low >= high:
            first = total // 2
        else:
            first = rng.randint(low, high)
    else:
        small = rng.randint(1, min(_UNBALANCED_SMALL_MAX, total - 1))
        # Put the big side left or right with equal probability.
        first = small if rng.random() < 0.5 else total - small
    return first, total - first


def random_balanced(
    size: int, seed: int = 0, p_let: float = 0.0, p_lit: float = 0.0
) -> Expr:
    """A balanced random expression (Section 7.1, left plot family)."""
    return random_expr(
        size, seed=seed, shape="balanced", p_let=p_let, p_lit=p_lit
    )


def random_unbalanced(
    size: int, seed: int = 0, p_let: float = 0.0, p_lit: float = 0.0
) -> Expr:
    """A wildly unbalanced random expression (Section 7.1, right plot)."""
    return random_expr(
        size, seed=seed, shape="unbalanced", p_let=p_let, p_lit=p_lit
    )


def alpha_rename(expr: Expr, seed: int = 1) -> Expr:
    """An alpha-equivalent copy of ``expr`` with fresh binder names.

    Every binder is renamed to a name built from ``seed``, so the result
    is alpha-equivalent but (for expressions with at least one binder
    whose name matters) not syntactically identical.
    """
    from repro.lang.names import NameSupply, all_names, uniquify_binders

    supply = NameSupply(reserved=all_names(expr))
    # Prefixing with a seed-derived marker makes renamed binders visibly
    # different from the originals; the reserved set prevents capture.
    prefix_supply = _PrefixSupply(supply, f"r{seed}_")
    return uniquify_binders(expr, prefix_supply)


class _PrefixSupply:
    """A NameSupply adaptor that prefixes every fresh name."""

    def __init__(self, inner, prefix: str):
        self._inner = inner
        self._prefix = prefix

    def fresh(self, base: str = "v") -> str:
        return self._inner.fresh(self._prefix)
