"""Adversarial expression pairs (Appendix B.1).

The collision experiment needs pairs of expressions crafted to collide
more often than random ones.  The appendix's recipe:

* start from two small, closed, non-alpha-equivalent seeds::

      e1 = \\x. x (x x)        e2 = \\x. (x x) x

* then wrap **both** in the same sequence of Lam / App nodes until the
  target size is reached.

The two expressions differ only at the very bottom; every wrapper
transforms their (almost certainly different) hashes identically, so a
collision anywhere below propagates unchanged to the root -- the
collision probability accumulates with expression size, which is the
worst case Theorem 6.7's per-combiner union bound charges for.

The generator is "not specialized to our specific algorithm" (App. B.1):
the same pairs stress every compositional hasher in the registry.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.lang.expr import App, Expr, Lam, Var

__all__ = ["adversarial_pair", "seed_pair", "MIN_ADVERSARIAL_SIZE"]

#: Size of the two seed expressions (they are equal-sized by design).
MIN_ADVERSARIAL_SIZE = 6


def seed_pair() -> tuple[Expr, Expr]:
    """The appendix's seed expressions: ``\\x. x (x x)`` / ``\\x. (x x) x``."""
    e1 = Lam("x", App(Var("x"), App(Var("x"), Var("x"))))
    e2 = Lam("x", App(App(Var("x"), Var("x")), Var("x")))
    return e1, e2


def adversarial_pair(
    size: int,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> tuple[Expr, Expr]:
    """A pair of same-shaped, non-alpha-equivalent expressions of exactly
    ``size`` nodes each, differing only at the bottom.

    Wrapping steps: ``Lam`` adds 1 node, ``App e (Var w)`` (with a fresh
    free variable ``w``) adds 2; both expressions always receive the same
    step with the same names.
    """
    if size < MIN_ADVERSARIAL_SIZE:
        raise ValueError(
            f"adversarial pairs need size >= {MIN_ADVERSARIAL_SIZE}, got {size}"
        )
    if rng is None:
        rng = random.Random(seed if seed is not None else 0xADA)

    e1, e2 = seed_pair()
    counter = 0
    remaining = size - e1.size
    while remaining > 0:
        if remaining == 1:
            kind = "lam"
        elif remaining == 2:
            kind = "app"
        else:
            kind = "lam" if rng.random() < 0.5 else "app"
        counter += 1
        if kind == "lam":
            binder = f"w{counter}"
            e1 = Lam(binder, e1)
            e2 = Lam(binder, e2)
            remaining -= 1
        else:
            free = f"u{counter}"
            e1 = App(e1, Var(free))
            e2 = App(e2, Var(free))
            remaining -= 2
    assert e1.size == size and e2.size == size
    return e1, e2
