"""Command-line interface: ``python -m repro <command>``.

Experiment commands regenerate the paper's tables and figures::

    python -m repro fig1                    # e-summary walkthrough (Figure 1)
    python -m repro table1                  # algorithm matrix, verified
    python -m repro table2                  # realistic workloads (ms)
    python -m repro fig2 --family balanced  # random-expression sweeps
    python -m repro fig3                    # BERT layer sweep
    python -m repro fig4 --scale small      # collision counts
    python -m repro incremental             # Section 6.3
    python -m repro opcounts                # Lemma 6.1/6.2
    python -m repro ablations               # design-choice ablations
    python -m repro difftest --cases 500    # cross-validate all algorithms

Utility commands work on expression files (surface syntax, see
``repro.lang.parser``)::

    python -m repro hash FILE [FILE...]     # alpha-hash; >1 file = JSON batch
    python -m repro classes FILE            # equivalence classes
    python -m repro cse FILE                # CSE-transformed program
    python -m repro store FILE [FILE...]    # intern a corpus, report cache stats
    python -m repro session [FILE...]       # the Session facade: pick a
                                            # --backend, batch-hash a corpus,
                                            # --save/--load store snapshots
    python -m repro session C0 C1 --stream TRACE.jsonl
                                            # streaming rewrite session: open
                                            # over the corpus, replay a JSONL
                                            # edit trace (one {"item","path",
                                            # "expr"} object per line); each
                                            # edit re-hashes only the dirty
                                            # spine.  --url points the same
                                            # trace at a serve/cluster
                                            # endpoint instead
    python -m repro edit FILE --path 0.1 --with NEW.expr
                                            # one subtree replacement:
                                            # incremental re-hash, reports
                                            # old/new root hash and the
                                            # nodes-rehashed receipt
    python -m repro serve --port 8655       # serve the session over HTTP/JSON
                                            # (hash/intern/stats + snapshot
                                            # download/upload; --journal DIR
                                            # for crash-safe write-ahead
                                            # durability, --follow URL to run
                                            # as a tailing read replica; see
                                            # repro.service)
    python -m repro cluster serve \\
        --shard http://127.0.0.1:8655 \\
        --shard http://127.0.0.1:8657       # coordinator over shard nodes
                                            # started with --shard-id/-count;
                                            # --replica SHARD=URL adds read
                                            # failover + promotion, --budget
                                            # caps per-request failover time
                                            # (see repro.cluster)
    python -m repro lint [--json]           # concurrency + determinism static
                                            # analysis over the repro source
                                            # tree: lock-order cycles, blocking
                                            # calls under locks, guarded-by
                                            # violations, nondeterministic
                                            # iteration/encoding.  --witness
                                            # cross-checks a runtime record
                                            # from repro.testing.lockcheck,
                                            # --baseline gates on new findings
                                            # only (see repro.lint)
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from repro.core.arena import ENGINE_CHOICES

__all__ = ["main"]

_EXPERIMENTS = {
    "fig1": "repro.evalharness.fig1",
    "table1": "repro.evalharness.table1",
    "table2": "repro.evalharness.table2",
    "fig2": "repro.evalharness.fig2",
    "fig3": "repro.evalharness.fig3",
    "fig4": "repro.evalharness.fig4",
    "incremental": "repro.evalharness.incremental_exp",
    "opcounts": "repro.evalharness.opcounts",
    "ablations": "repro.evalharness.ablations",
    "difftest": "repro.analysis.differential",
}

_UTILITIES = (
    "hash",
    "classes",
    "cse",
    "store",
    "session",
    "edit",
    "serve",
    "cluster",
    "lint",
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    command, rest = argv[0], argv[1:]
    if command in _EXPERIMENTS:
        import importlib

        module = importlib.import_module(_EXPERIMENTS[command])
        return int(module.main(rest) or 0)
    if command in _UTILITIES:
        return _run_utility(command, rest)
    print(f"unknown command {command!r}\n", file=sys.stderr)
    print(__doc__, file=sys.stderr)
    return 2


def _read_expr(path: str):
    from repro.lang.names import uniquify_binders
    from repro.lang.parser import parse

    if path == "-":
        text = sys.stdin.read()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    return uniquify_binders(parse(text))


def _run_utility(command: str, rest: Sequence[str]) -> int:
    import argparse

    if command == "store":
        return _run_store(rest)
    if command == "hash":
        return _run_hash(rest)
    if command == "session":
        return _run_session(rest)
    if command == "edit":
        return _run_edit(rest)
    if command == "serve":
        from repro.service.server import serve

        return serve(rest)
    if command == "cluster":
        from repro.cluster.coordinator import cluster

        return cluster(rest)
    if command == "lint":
        from repro.lint.runner import main as lint_main

        return lint_main(rest)

    parser = argparse.ArgumentParser(prog=f"repro {command}")
    parser.add_argument("file", help="expression file, or - for stdin")
    if command == "classes":
        parser.add_argument("--min-size", type=int, default=2)
        parser.add_argument("--min-count", type=int, default=2)
    if command == "cse":
        parser.add_argument("--min-size", type=int, default=3)
    args = parser.parse_args(rest)
    expr = _read_expr(args.file)

    if command == "classes":
        from repro.core.equivalence import equivalence_classes
        from repro.lang.pretty import pretty

        classes = equivalence_classes(
            expr, min_size=args.min_size, min_count=args.min_count, verify=True
        )
        if not classes:
            print("no repeated alpha-equivalent subexpressions")
            return 0
        for cls in classes:
            print(
                f"{cls.count} occurrences, {cls.node_size} nodes:  "
                f"{pretty(cls.representative, max_len=100)}"
            )
        return 0

    assert command == "cse"
    from repro.api import Session
    from repro.lang.pretty import pretty

    result = Session().cse(expr, min_size=args.min_size)
    print(pretty(result.expr))
    print(
        f"# {result.original_size} -> {result.final_size} nodes "
        f"in {len(result.rounds)} rounds",
        file=sys.stderr,
    )
    return 0


def _run_hash(rest: Sequence[str]) -> int:
    """``repro hash``: alpha-hash one or many expression files.

    One input keeps the historical plain ``0x...`` output; several
    inputs switch to batch mode -- the whole corpus goes through
    :meth:`Session.hash_corpus` (store-batched, so shared subtrees hash
    once) and one JSON record per expression is emitted.
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro hash",
        description="Alpha-hash expression files; with several files, "
        "emit one JSON record per expression (batch mode).",
    )
    parser.add_argument(
        "files", nargs="+", help="expression files (surface syntax); - for stdin"
    )
    parser.add_argument("--bits", type=int, default=64)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--algorithm",
        "--backend",
        dest="algorithm",
        default="ours",
        help="any unified-registry backend (Table 1 rows, ours_lazy, ablations)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="hash the corpus on N workers (0 = one per CPU); results are "
        "bit-identical to --workers 1",
    )
    parser.add_argument(
        "--parallel-mode",
        choices=("process", "fork", "spawn", "thread"),
        default="process",
        help="worker pool flavour (process is right for CPU-bound hashing)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help="corpus hashing strategy: tree walking, the arena kernel "
        "(arena-vec forces the vectorized kernel, arena-scalar the "
        "pure-Python one), or size-based auto selection",
    )
    args = parser.parse_args(rest)

    from repro.api import Session

    # The context manager releases the session-owned worker pools that
    # --workers N > 1 spins up.
    with Session(
        backend=args.algorithm,
        bits=args.bits,
        seed=args.seed,
        workers=args.workers,
        parallel_mode=args.parallel_mode,
        engine=args.engine,
    ) as session:
        exprs = [_read_expr(path) for path in args.files]
        hashes = session.hash_corpus(exprs)
        if len(args.files) == 1:
            print(f"0x{hashes[0]:x}")
            return 0
        for path, expr, value in zip(args.files, exprs, hashes):
            print(
                json.dumps(
                    {
                        "file": path,
                        "hash": f"0x{value:x}",
                        "nodes": expr.size,
                        "backend": session.backend.name,
                        "bits": session.combiners.bits,
                    },
                    sort_keys=True,
                )
            )
        return 0


def _run_session(rest: Sequence[str]) -> int:
    """``repro session``: drive the Session facade from the shell.

    Hashes and interns a corpus of expression files through one
    :class:`~repro.api.Session`, emitting a JSON record per expression;
    ``--save`` snapshots the session's store afterwards and ``--load``
    starts from a snapshot, so a corpus hashed once is reusable across
    processes.  ``--check`` (with ``--load``) fails unless every
    expression's class was already present in the snapshot.
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro session",
        description="Hash/intern expression files through a Session facade "
        "with a pluggable backend and store snapshots.",
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="expression files (surface syntax); - for stdin",
    )
    parser.add_argument(
        "--backend", default=None, help="unified-registry backend name"
    )
    parser.add_argument("--bits", type=int, default=64)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--no-store", action="store_true", help="hash without a store"
    )
    parser.add_argument(
        "--max-entries", type=int, default=None, help="LRU-bound the store"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="hash/intern the corpus on N workers (0 = one per CPU); "
        "hashes are bit-identical to --workers 1",
    )
    parser.add_argument(
        "--parallel-mode",
        choices=("process", "fork", "spawn", "thread"),
        default="process",
        help="worker pool flavour for --workers",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default="auto",
        help="corpus hashing strategy (see README: Arena kernel)",
    )
    parser.add_argument(
        "--num-shards",
        type=int,
        default=None,
        help="back the session with a lock-striped sharded store",
    )
    parser.add_argument("--load", metavar="PATH", help="start from a snapshot")
    parser.add_argument("--save", metavar="PATH", help="snapshot when done")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless every expression was already in the loaded snapshot",
    )
    parser.add_argument(
        "--stats", action="store_true", help="emit a final JSON stats record"
    )
    parser.add_argument(
        "--stream",
        metavar="TRACE",
        help="open a streaming edit session over the corpus and replay a "
        "JSONL edit trace (one {\"item\", \"path\", \"expr\"} object per "
        "line; expr in surface syntax); - reads the trace from stdin",
    )
    parser.add_argument(
        "--url",
        metavar="URL",
        help="with --stream: run the session against a repro serve / "
        "repro cluster endpoint instead of in-process",
    )
    parser.add_argument(
        "--ttl",
        type=float,
        default=None,
        help="with --stream --url: per-session idle expiry override "
        "(bounded by the server's --session-ttl)",
    )
    args = parser.parse_args(rest)
    if args.url and not args.stream:
        parser.error("--url only makes sense with --stream")
    if args.stream and args.check:
        parser.error("--check does not combine with --stream")
    if args.url and (
        args.load or args.save or args.no_store or args.num_shards
        or args.max_entries is not None
    ):
        parser.error(
            "--url runs the session server-side; drop the local store flags "
            "(--load/--save/--no-store/--max-entries/--num-shards)"
        )
    if args.no_store and args.save:
        parser.error("--save needs a store; drop --no-store")
    if args.no_store and args.check:
        parser.error("--check needs a store; drop --no-store")
    if args.check and not args.load:
        parser.error("--check only makes sense with --load")
    if args.load and (
        args.no_store
        or args.bits != 64
        or args.seed is not None
        or args.max_entries is not None
        or args.num_shards is not None
    ):
        parser.error(
            "--load takes bits/seed/store shape from the snapshot; drop "
            "--bits/--seed/--no-store/--max-entries/--num-shards"
        )

    from repro.api import Session

    exprs = [_read_expr(path) for path in args.files]
    if args.stream and args.url:
        return _session_stream_remote(args, exprs)

    if args.load:
        session = Session.load(args.load, backend=args.backend)
    else:
        session = Session(
            backend=args.backend or "ours",
            bits=args.bits,
            seed=args.seed,
            use_store=not args.no_store,
            max_entries=args.max_entries,
            workers=args.workers,
            parallel_mode=args.parallel_mode,
            num_shards=args.num_shards,
            engine=args.engine,
        )

    try:
        if args.stream:
            return _session_stream_local(session, args, exprs)
        return _session_report(session, args, exprs)
    finally:
        session.close()  # releases persistent worker pools (--workers N)


def _session_report(session, args, exprs) -> int:
    import json

    from repro.api import HashRequest, InternRequest

    # CLI knobs lower into declarative requests -- the planner resolves
    # them against the session exactly like library callers' requests.
    hashes = session.execute(
        HashRequest(
            exprs,
            workers=args.workers,
            mode=args.parallel_mode,
            engine=args.engine,
        )
    )
    missing = 0
    known_flags: list[bool] = []
    if session.store is not None:
        # Presence is decided on the canonical (store) alpha-hash, not
        # the selected backend's hash -- the intern table is keyed by the
        # former, and the two differ for non-default backends.  All flags
        # are computed before any interning, so a later duplicate of a
        # missing class still reports it as missing.  For the store-backed
        # default backend the corpus hashes above already *are* canonical
        # -- reuse them instead of re-hashing the corpus serially (which
        # would silently undo a --workers fan-out).
        if session.backend.store_backed:
            canonical = hashes
        else:
            canonical = [session.store.hash_expr(expr) for expr in exprs]
        known_flags = [
            session.store.lookup_hash(value) is not None for value in canonical
        ]
        # One bulk intern (after the flags above), not one walk per
        # file: serial sessions reuse the compile the hash pass above
        # cached (large corpora take the store's arena bulk-intern
        # path); --workers sessions fan out over the worker-merge path.
        node_ids = session.execute(InternRequest(exprs, engine=args.engine))
    for index, (path, expr, value) in enumerate(
        zip(args.files, exprs, hashes)
    ):
        record = {
            "file": path,
            "hash": f"0x{value:x}",
            "nodes": expr.size,
            "backend": session.backend.name,
        }
        if session.store is not None:
            known = known_flags[index]
            record["known"] = known
            if not known:
                missing += 1
            record["node_id"] = node_ids[index]
        print(json.dumps(record, sort_keys=True))

    if args.stats:
        print(json.dumps(session.stats(), sort_keys=True))
    if args.save:
        session.save(args.save)
        print(f"# saved session snapshot to {args.save}", file=sys.stderr)
    if args.check:
        if missing:
            print(
                f"CHECK FAILED: {missing} expression(s) not present in the "
                "loaded snapshot",
                file=sys.stderr,
            )
            return 1
        print(
            f"# check ok: all {len(exprs)} expression(s) already known",
            file=sys.stderr,
        )
    return 0


def _iter_trace(path: str):
    """Yield ``(line_no, record)`` per non-blank, non-comment trace line."""
    import json

    handle = sys.stdin if path == "-" else open(path, "r", encoding="utf-8")
    try:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"trace line {line_no}: bad JSON: {exc}")
            if not isinstance(record, dict):
                raise SystemExit(f"trace line {line_no}: not a JSON object")
            yield line_no, record
    finally:
        if path != "-":
            handle.close()


def _trace_edit(record, line_no: int, supply):
    """Lower one trace record to ``(item, path, replacement)``.

    The replacement is parsed from surface syntax and alpha-renamed
    against the shared supply, so its binders cannot collide with the
    corpus trees' (the uniqueness contract of incremental replace).
    """
    from repro.lang.names import uniquify_binders
    from repro.lang.parser import ParseError, parse

    try:
        item = int(record["item"])
        path = tuple(int(step) for step in record["path"])
        source = record["expr"]
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(
            f'trace line {line_no}: need {{"item", "path", "expr"}}: {exc}'
        ) from None
    try:
        replacement = uniquify_binders(parse(source), supply)
    except ParseError as exc:
        raise SystemExit(f"trace line {line_no}: bad expr: {exc}") from None
    return item, path, replacement


def _trace_supply(exprs):
    from repro.lang.names import NameSupply, all_names

    reserved: set[str] = set()
    for expr in exprs:
        reserved |= all_names(expr)
    return NameSupply(reserved=reserved)


def _session_stream_local(session, args, exprs) -> int:
    import json

    supply = _trace_supply(exprs)
    with session.open_stream(exprs) as stream:
        for line_no, record in _iter_trace(args.stream):
            item, path, replacement = _trace_edit(record, line_no, supply)
            report = stream.edit(item, path, replacement)
            body = report.as_dict()
            body["root_hash"] = f"0x{report.root_hash:x}"
            body["edit_hash"] = f"0x{report.edit_hash:x}"
            body["path"] = list(report.path)
            print(json.dumps(body, sort_keys=True))
        summary = stream.report()
    summary["root_hashes"] = [f"0x{h:x}" for h in summary["root_hashes"]]
    if args.stats:
        summary["session_stats"] = session.stats()
    print(json.dumps(summary, sort_keys=True))
    if args.save:
        session.save(args.save)
        print(f"# saved session snapshot to {args.save}", file=sys.stderr)
    return 0


def _session_stream_remote(args, exprs) -> int:
    import json

    from repro.api import RemoteSession
    from repro.service.client import ServiceError

    supply = _trace_supply(exprs)
    remote = RemoteSession(args.url)
    try:
        with remote.open_stream(exprs, ttl=args.ttl) as stream:
            for line_no, record in _iter_trace(args.stream):
                item, path, replacement = _trace_edit(record, line_no, supply)
                body = stream.edit(item, path, replacement)
                body["root_hash"] = f"0x{body['root_hash']:x}"
                body["edit_hash"] = f"0x{body['edit_hash']:x}"
                print(json.dumps(body, sort_keys=True))
            summary = stream.report()
        summary["root_hashes"] = [
            f"0x{h:x}" for h in summary["root_hashes"]
        ]
        print(json.dumps(summary, sort_keys=True))
        return 0
    except ServiceError as exc:
        status = f" (HTTP {exc.status})" if exc.status else ""
        print(f"repro session: {exc}{status}", file=sys.stderr)
        return 1
    finally:
        remote.close()


def _run_edit(rest: Sequence[str]) -> int:
    """``repro edit``: one subtree replacement, incrementally re-hashed.

    The smallest streaming session: open over one file, apply one edit,
    report old/new root hash and the nodes-rehashed receipt.
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro edit",
        description="Replace the subtree at --path with --with's "
        "expression and re-hash only the dirty spine; reports old/new "
        "root hash and nodes rehashed.",
    )
    parser.add_argument("file", help="expression file, or - for stdin")
    parser.add_argument(
        "--path",
        required=True,
        help="child indices from the root, dot- or comma-separated "
        "(e.g. 0.1.0); an empty string addresses the root",
    )
    parser.add_argument(
        "--with",
        dest="replacement",
        required=True,
        metavar="FILE",
        help="replacement expression file, or - for stdin",
    )
    parser.add_argument(
        "--backend", default=None, help="unified-registry backend name"
    )
    parser.add_argument(
        "--url",
        metavar="URL",
        help="apply the edit on a repro serve / cluster endpoint instead",
    )
    args = parser.parse_args(rest)
    if args.file == "-" and args.replacement == "-":
        parser.error("only one of FILE and --with may read stdin")

    expr = _read_expr(args.file)
    supply = _trace_supply([expr])
    from repro.lang.names import uniquify_binders

    replacement = uniquify_binders(_read_expr(args.replacement), supply)
    try:
        path = tuple(
            int(step)
            for step in args.path.replace(",", ".").split(".")
            if step != ""
        )
    except ValueError:
        parser.error(f"--path must be numeric indices, got {args.path!r}")

    if args.url:
        from repro.api import RemoteSession
        from repro.service.client import ServiceError

        remote = RemoteSession(args.url)
        try:
            with remote.open_stream([expr]) as stream:
                old_hash = stream.root_hashes[0]
                body = stream.edit(0, path, replacement)
        except ServiceError as exc:
            print(f"repro edit: {exc}", file=sys.stderr)
            return 1
        finally:
            remote.close()
    else:
        from repro.api import Session

        with Session(backend=args.backend or "ours") as session:
            with session.open_stream([expr]) as stream:
                old_hash = stream.root_hashes[0]
                body = stream.edit(0, path, replacement).as_dict()

    body["file"] = args.file
    body["path"] = list(path)
    body["old_root_hash"] = f"0x{old_hash:x}"
    body["root_hash"] = f"0x{body['root_hash']:x}"
    body["edit_hash"] = f"0x{body['edit_hash']:x}"
    print(json.dumps(body, sort_keys=True))
    return 0


def _run_store(rest: Sequence[str]) -> int:
    """``repro store``: intern a corpus of expression files and report
    how much the hash-consed store deduplicated and cached."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="repro store",
        description="Intern expression files into a hash-consed store "
        "modulo alpha-equivalence and report cache statistics.",
    )
    parser.add_argument(
        "files", nargs="+", help="expression files (surface syntax); - for stdin"
    )
    parser.add_argument("--bits", type=int, default=64)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--max-entries",
        type=int,
        default=None,
        help="LRU-bound the canonical table (default: eviction-free)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable stats"
    )
    args = parser.parse_args(rest)

    from repro.core.combiners import DEFAULT_SEED, HashCombiners
    from repro.store import ExprStore

    seed = DEFAULT_SEED if args.seed is None else args.seed
    store = ExprStore(
        HashCombiners(bits=args.bits, seed=seed), max_entries=args.max_entries
    )
    total_nodes = 0
    root_ids = []
    for path in args.files:
        expr = _read_expr(path)
        total_nodes += expr.size
        root_ids.append(store.intern(expr))

    report = {
        "files": len(args.files),
        "total_nodes": total_nodes,
        "unique_roots": len(set(root_ids)),
        "entries": len(store),
        "dedup_ratio": round(total_nodes / len(store), 3) if len(store) else 1.0,
        **store.stats.as_dict(),
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(
        f"{report['files']} file(s), {total_nodes} AST nodes -> "
        f"{report['entries']} canonical entries "
        f"(x{report['dedup_ratio']} dedup, "
        f"{report['unique_roots']} distinct root(s))"
    )
    print(
        f"intern hits {store.stats.hits} / misses {store.stats.misses} "
        f"(hit-rate {store.stats.intern_hit_rate:.1%}); "
        f"memo served {store.stats.memo_skipped_nodes} of "
        f"{store.stats.memo_skipped_nodes + store.stats.hashed_nodes} node visits "
        f"(hit-rate {store.stats.hit_rate:.1%}); "
        f"{store.stats.evictions} eviction(s)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
