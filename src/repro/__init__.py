"""repro: a full reproduction of "Hashing Modulo Alpha-Equivalence"
(Maziarz, Ellis, Lawrence, Fitzgibbon, Peyton Jones -- PLDI 2021).

Quickstart::

    from repro import parse, uniquify_binders, alpha_hash_all, equivalence_classes

    expr = uniquify_binders(parse(r"foo (\\x. x + 7) (\\y. y + 7)"))
    hashes = alpha_hash_all(expr)             # every subexpression hashed
    for cls in equivalence_classes(expr):     # classes of alpha-equal terms
        print(cls.count, "x", cls.representative)

Package map:

* :mod:`repro.lang` -- expression substrate (AST, parser, printer,
  alpha-equivalence, de Bruijn, evaluator);
* :mod:`repro.core` -- the paper's algorithm (e-summaries, the fast
  hashed form, incremental re-hashing, equivalence classes);
* :mod:`repro.baselines` -- Table 1 comparison algorithms;
* :mod:`repro.gen`, :mod:`repro.workloads` -- benchmark inputs;
* :mod:`repro.apps` -- CSE, structure sharing, ML graph preprocessing;
* :mod:`repro.store` -- hash-consed expression store (interning modulo
  alpha-equivalence with memoized hashing);
* :mod:`repro.analysis`, :mod:`repro.evalharness` -- measurement and
  per-table/figure regeneration harnesses.
"""

from repro.api import BACKENDS, Session, SessionConfig, get_backend
from repro.apps import cse, share_alpha, share_syntactic
from repro.baselines import ALGORITHMS, get_algorithm
from repro.core import (
    AlphaHashes,
    HashCombiners,
    IncrementalHasher,
    alpha_hash_all,
    alpha_hash_root,
    equivalence_classes,
)
from repro.store import ExprStore, StoreStats
from repro.lang import (
    App,
    Expr,
    Lam,
    Let,
    Lit,
    Var,
    alpha_equivalent,
    evaluate,
    free_vars,
    parse,
    pretty,
    uniquify_binders,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Session",
    "SessionConfig",
    "BACKENDS",
    "get_backend",
    "cse",
    "share_alpha",
    "share_syntactic",
    "ALGORITHMS",
    "get_algorithm",
    "AlphaHashes",
    "HashCombiners",
    "IncrementalHasher",
    "alpha_hash_all",
    "alpha_hash_root",
    "equivalence_classes",
    "ExprStore",
    "StoreStats",
    "App",
    "Expr",
    "Lam",
    "Let",
    "Lit",
    "Var",
    "alpha_equivalent",
    "evaluate",
    "free_vars",
    "parse",
    "pretty",
    "uniquify_binders",
]
