"""Determinism analysis: bit-identity is a *discipline*, not a test.

Every hash the repo produces must be a pure function of the corpus,
and every byte it puts on the wire must be a pure function of the
store state.  These rules flag the ways Python lets that property rot
silently:

* ``det-set-iter`` -- iterating an unordered ``set``/``frozenset`` in
  a kernel or wire module.  Set order varies run-to-run under hash
  randomization; anything derived from it (hash input, encoded bytes,
  even a tie-broken choice) diverges.  Wrap the iteration in
  ``sorted()``.
* ``det-popitem`` -- ``dict.popitem()`` pops the *last inserted* item
  only as a CPython detail; name the key you mean.
* ``det-time-random`` -- ``time.*`` / ``random.*`` anywhere in kernel
  modules (``core/``, ``store/``).  Jitter, eviction clocks and
  seeded noise belong in the service/testing layers, never where
  hashes are computed.
* ``wire-dict-order`` -- ``json.dumps`` without ``sort_keys=True`` in
  a wire module: encoded frames are checksummed and diffed across
  nodes, so their bytes must not depend on dict insertion order.
* ``broad-except`` -- ``except:`` / ``except Exception`` /
  ``except BaseException`` that neither re-raises nor carries a
  pragma.  A swallowed fault in this codebase usually means a wrong
  answer served with a 200.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.model import ModuleInfo

#: path prefixes (relative to the source root) of kernel modules:
#: hashes are computed here, nothing wall-clock or random may intrude.
KERNEL_PREFIXES = ("repro/core/", "repro/store/", "repro/lang/")

#: wire modules: bytes produced here cross process boundaries and get
#: checksummed, so encoding must be canonical.
WIRE_PREFIXES = ("repro/service/", "repro/cluster/")
WIRE_FILES = (
    "repro/lang/sexpr.py",
    "repro/store/snapshot.py",
    "repro/store/journal.py",
    "repro/api/remote.py",
)


def _is_kernel(path: str) -> bool:
    return path.startswith(KERNEL_PREFIXES)


def _is_wire(path: str) -> bool:
    return path.startswith(WIRE_PREFIXES) or path in WIRE_FILES


def _qualname_at(mod: ModuleInfo, line: int) -> str:
    best = ""
    for fn in mod.all_funcs():
        if fn.lineno <= line <= fn.end_lineno:
            best = fn.qualname
    return best


def _is_setish(expr: ast.AST, local_sets: set) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in ("set", "frozenset"):
            return True
    if isinstance(expr, ast.Name) and expr.id in local_sets:
        return True
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub)
    ):
        return _is_setish(expr.left, local_sets) or _is_setish(
            expr.right, local_sets
        )
    return False


def _local_set_vars(root: ast.AST) -> set:
    """Names assigned a set literal/comprehension/constructor."""
    out = set()
    for node in ast.walk(root):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and _is_setish(node.value, out):
                out.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            ann = node.annotation
            name = None
            if isinstance(ann, ast.Name):
                name = ann.id
            elif isinstance(ann, ast.Subscript) and isinstance(ann.value, ast.Name):
                name = ann.value.id
            if name in ("set", "frozenset"):
                out.add(node.target.id)
    return out


def check_module(mod: ModuleInfo) -> list[Finding]:
    findings: list[Finding] = []
    path = mod.path
    kernel = _is_kernel(path)
    wire = _is_wire(path)

    def add(rule: str, line: int, message: str) -> None:
        findings.append(
            Finding(
                rule=rule,
                path=path,
                line=line,
                message=message,
                context=_qualname_at(mod, line),
            )
        )

    local_sets = _local_set_vars(mod.tree)
    time_random_aliases = {
        alias
        for alias, src in mod.imported_names.items()
        if src in ("time", "random")
    }

    for node in ast.walk(mod.tree):
        # -- set iteration ---------------------------------------------------
        if (kernel or wire) and isinstance(node, ast.For):
            if _is_setish(node.iter, local_sets):
                add(
                    "det-set-iter",
                    node.iter.lineno,
                    "iteration over an unordered set; wrap in sorted()",
                )
        if (kernel or wire) and isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in node.generators:
                if _is_setish(gen.iter, local_sets):
                    add(
                        "det-set-iter",
                        gen.iter.lineno,
                        "comprehension over an unordered set; wrap in sorted()",
                    )
        # -- popitem ---------------------------------------------------------
        if (kernel or wire) and isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "popitem"
            ):
                add(
                    "det-popitem",
                    node.lineno,
                    "dict.popitem() pops in insertion order only by "
                    "implementation accident",
                )
        # -- time/random in kernels ------------------------------------------
        if kernel and isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in ("time", "random")
                and mod.imported_names.get(node.value.id) == node.value.id
            ):
                add(
                    "det-time-random",
                    node.lineno,
                    f"{node.value.id}.{node.attr} in a kernel module",
                )
        if kernel and isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in time_random_aliases
            ):
                add(
                    "det-time-random",
                    node.lineno,
                    f"{node.func.id}() (from "
                    f"{mod.imported_names[node.func.id]}) in a kernel module",
                )
        # -- wire encoding ---------------------------------------------------
        if wire and isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "dumps"
                and isinstance(func.value, ast.Name)
                and func.value.id == "json"
            ):
                sort_keys = any(
                    kw.arg == "sort_keys"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.keywords
                )
                if not sort_keys:
                    add(
                        "wire-dict-order",
                        node.lineno,
                        "json.dumps without sort_keys=True in a wire module",
                    )
        # -- broad except ----------------------------------------------------
        if isinstance(node, ast.ExceptHandler):
            broad = node.type is None
            if isinstance(node.type, ast.Name):
                broad = node.type.id in ("Exception", "BaseException")
            elif isinstance(node.type, ast.Tuple):
                broad = any(
                    isinstance(e, ast.Name)
                    and e.id in ("Exception", "BaseException")
                    for e in node.type.elts
                )
            if broad:
                reraises = any(
                    isinstance(sub, ast.Raise) and sub.exc is None
                    for sub in ast.walk(node)
                )
                if not reraises:
                    what = "bare except" if node.type is None else (
                        "except "
                        + (
                            node.type.id
                            if isinstance(node.type, ast.Name)
                            else "(...)"
                        )
                    )
                    add(
                        "broad-except",
                        node.lineno,
                        f"{what} swallows without re-raising",
                    )
    return findings
