"""Drive the analyzers over a source tree; the `repro lint` CLI.

Exit codes are CLI-conventional: 0 clean, 1 findings, 2 internal
error.  ``--json`` writes the full machine-readable report (findings,
suppressions, the lock-order graph, witness staleness) to stdout;
``--baseline`` subtracts a previously recorded set of fingerprints so
a legacy tree can be gated on *new* findings only; ``--witness``
cross-checks a runtime lock-order record produced by
``repro.testing.lockcheck`` against the static graph.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from dataclasses import dataclass, field

from repro.lint import determinism
from repro.lint.findings import RULES, Finding, fingerprint
from repro.lint.locks import LockAnalysis
from repro.lint.model import Index, ModuleInfo, collect_module

BASELINE_FORMAT = "repro-lint-baseline-v1"
WITNESS_FORMAT = "repro-lockcheck-v1"


@dataclass
class AnalysisResult:
    findings: list = field(default_factory=list)
    suppressed: list = field(default_factory=list)
    stale_edges: list = field(default_factory=list)  # [(a, b), ...]
    site_table: dict = field(default_factory=dict)  # (path, line) -> label
    edges: dict = field(default_factory=dict)  # (a, b) -> (path, line, ctx)
    modules: dict = field(default_factory=dict)  # path -> ModuleInfo
    files: int = 0

    def as_dict(self) -> dict:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "stale_edges": [list(e) for e in sorted(self.stale_edges)],
            "lock_graph": {
                "sites": {
                    f"{path}:{line}": label
                    for (path, line), label in sorted(self.site_table.items())
                },
                "edges": [
                    {"from": a, "to": b, "path": path, "line": line}
                    for (a, b), (path, line, _ctx) in sorted(self.edges.items())
                ],
            },
            "summary": {
                "files": self.files,
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "stale_edges": len(self.stale_edges),
            },
        }


def default_root() -> str:
    """The source root: the directory holding the ``repro`` package."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _iter_sources(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d not in ("__pycache__", ".git")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                yield full, rel


def _function_allow(mod: ModuleInfo, line: int, rule: str):
    """Innermost function whose def-line pragma covers (line, rule)."""
    best = None
    for fn in mod.all_funcs():
        if fn.lineno <= line <= fn.end_lineno:
            allow = fn.allows_rule(rule)
            if allow is not None and (best is None or fn.lineno > best[0]):
                best = (fn.lineno, allow)
    return best[1] if best else None


def analyze(root: str, witness: dict = None) -> AnalysisResult:
    index = Index()
    result = AnalysisResult()
    for full, rel in _iter_sources(root):
        with open(full, "r", encoding="utf-8") as handle:
            source = handle.read()
        modname = rel[:-3].replace("/", ".")
        if modname.endswith(".__init__"):
            modname = modname[: -len(".__init__")]
        mod = collect_module(rel, modname, source)
        index.add(mod)
        result.modules[rel] = mod
        result.files += 1

    locks = LockAnalysis(index)
    locks.run()
    result.site_table = locks.site_table
    result.edges = locks.edges

    raw: list[Finding] = list(locks.findings)
    for mod in index.modules.values():
        raw.extend(determinism.check_module(mod))
        for allow in mod.pragmas.all_allows:
            if not allow.reason:
                raw.append(
                    Finding(
                        rule="pragma-reason",
                        path=mod.path,
                        line=allow.line,
                        message=(
                            "allow["
                            + ",".join(sorted(allow.rules))
                            + "] pragma without a reason="
                        ),
                    )
                )

    if witness is not None:
        raw.extend(_cross_check(witness, result))

    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.rule)):
        mod = result.modules.get(finding.path)
        allow = None
        if mod is not None and finding.rule != "pragma-reason":
            for candidate in mod.pragmas.allows_at(finding.line):
                if finding.rule in candidate.rules:
                    allow = candidate
                    break
            if allow is None:
                allow = _function_allow(mod, finding.line, finding.rule)
        if allow is not None:
            allow.used = True
            result.suppressed.append(
                dataclasses.replace(
                    finding, suppressed=allow.reason or "(no reason given)"
                )
            )
        else:
            result.findings.append(finding)
    return result


def _cross_check(witness: dict, result: AnalysisResult) -> list[Finding]:
    """Observed runtime lock behaviour vs. the static graph.

    An observed acquisition at a site the static table cannot label, or
    an observed edge missing from the static graph, is an analyzer gap
    -- a hard finding.  Static edges never observed are reported as
    stale (informational: over-approximation is the analyzer's job).
    """
    findings: list[Finding] = []

    def qual_at(path: str, line: int) -> str:
        mod = result.modules.get(path)
        if mod is None:
            return ""
        best = ""
        for fn in mod.all_funcs():
            if fn.lineno <= line <= fn.end_lineno:
                best = fn.qualname
        return best

    sites = [tuple(s) for s in witness.get("sites", ())]
    for path, line in sorted(set(sites)):
        if (path, line) not in result.site_table:
            findings.append(
                Finding(
                    rule="witness-gap-site",
                    path=path,
                    line=line,
                    message=(
                        "runtime witnessed a lock acquisition here that "
                        "the static analyzer has no label for"
                    ),
                    context=qual_at(path, line),
                )
            )

    observed_label_edges = set()
    for edge in witness.get("edges", ()):
        (pa, la), (pb, lb) = (tuple(edge[0]), tuple(edge[1]))
        label_a = result.site_table.get((pa, la))
        label_b = result.site_table.get((pb, lb))
        if label_a is None or label_b is None:
            continue  # the gap-site finding above already covers it
        observed_label_edges.add((label_a, label_b))
        if (label_a, label_b) not in result.edges:
            findings.append(
                Finding(
                    rule="witness-gap-edge",
                    path=pb,
                    line=lb,
                    message=(
                        f"runtime witnessed {label_a} -> {label_b} "
                        f"(outer lock taken at {pa}:{la}); the static "
                        "lock-order graph has no such edge"
                    ),
                    context=qual_at(pb, lb),
                )
            )
    result.stale_edges = sorted(set(result.edges) - observed_label_edges)
    return findings


def _load_json(path: str, expected_format: str = None) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if expected_format and data.get("format") not in (None, expected_format):
        raise ValueError(
            f"{path}: format {data.get('format')!r}, expected {expected_format!r}"
        )
    return data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "concurrency + determinism static analysis over the repro "
            "source tree (exit 0 clean / 1 findings / 2 internal error)"
        ),
    )
    parser.add_argument(
        "--root",
        default=None,
        help="source root to analyze (default: the installed repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report on stdout"
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings whose fingerprints appear in this baseline",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--witness",
        metavar="FILE",
        help="cross-check a repro.testing.lockcheck witness record",
    )
    parser.add_argument(
        "--rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.rules:
        for rule in sorted(RULES):
            print(f"{rule}: {RULES[rule]}")
        return 0

    try:
        witness = None
        if args.witness:
            witness = _load_json(args.witness, WITNESS_FORMAT)
        root = args.root or default_root()
        result = analyze(root, witness=witness)

        findings = result.findings
        if args.baseline:
            known = set(_load_json(args.baseline).get("fingerprints", ()))
            findings = [f for f in findings if fingerprint(f) not in known]

        if args.write_baseline:
            with open(args.write_baseline, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "format": BASELINE_FORMAT,
                        "fingerprints": sorted(
                            fingerprint(f) for f in result.findings
                        ),
                    },
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")
            print(
                f"baseline: {len(result.findings)} finding(s) recorded to "
                f"{args.write_baseline}"
            )
            return 0

        if args.json:
            report = result.as_dict()
            report["findings"] = [f.as_dict() for f in findings]
            report["summary"]["findings"] = len(findings)
            json.dump(report, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        else:
            for f in findings:
                print(f.format())
            if witness is not None and result.stale_edges:
                print(
                    f"note: {len(result.stale_edges)} static lock-order "
                    "edge(s) were never observed at runtime (stale or "
                    "over-approximate; informational)"
                )
            status = "clean" if not findings else f"{len(findings)} finding(s)"
            print(
                f"repro lint: {result.files} files, {status}, "
                f"{len(result.suppressed)} suppressed by pragma"
            )
        return 1 if findings else 0
    except BrokenPipeError:  # | head
        return 0
    # repro-lint: allow[broad-except] reason=CLI exit-code contract; any internal crash prints its traceback and maps to exit 2 so CI distinguishes "lint broke" from "lint found something"
    except Exception:
        import traceback

        traceback.print_exc()
        return 2


if __name__ == "__main__":
    sys.exit(main())
